//! The embedded MQTT broker: a sharded, snapshot-routed core.
//!
//! Architecture: the broker runs **N parallel shard event loops**
//! ([`BrokerConfig::shards`]), each a readiness-driven reactor (see
//! [`crate::reactor`]): one nonblocking poll loop per shard multiplexes
//! every connection the shard owns — accept handoff, frame decode, CONNECT
//! gating, keep-alive deadlines, fault-delay timers, and vectored TCP
//! writes with per-connection write backpressure — so broker-side thread
//! count is O(shards), never O(connections). A new connection parks on a
//! provisional shard until its CONNECT arrives; the client id is hashed
//! and the connection migrates to its owner shard. A shard therefore owns
//! a disjoint partition of connections — their keep-alive deadlines,
//! offline queues, and QoS 1/2 inflight windows — and two shards never
//! share session state.
//!
//! Routing state (subscription trie, retained store, client route table)
//! lives outside the shards in a [`crate::index::SharedIndex`]:
//! subscribes, unsubscribes, connects and retained writes funnel through
//! its single writer, which publishes generation-swapped **read-only
//! snapshots**. Any shard routes a publish by loading the current snapshot
//! — no lock is held while matching — and delivers:
//!
//! * QoS 0 to a live subscriber: the frame is encoded **once** per
//!   outgoing (QoS, retain) variant and the same `Bytes` is pushed
//!   straight into every subscriber's [`FrameSender`], regardless of which
//!   shard owns the subscriber;
//! * QoS 1/2, or any delivery to an offline session: the message hops to
//!   the owner shard's mailbox (the owner must allocate the packet id
//!   against the session, or queue the message). Same-shard deliveries
//!   skip the hop and stamp packet ids into a shared pre-encoded template.
//!
//! Fan-out order is **sorted by client id** at every shard count, so
//! delivery order — and which deliveries fall inside fault-rule
//! `skip`/`take` windows — is reproducible run to run. With `shards = 1`
//! the broker degenerates to the fully deterministic single-loop mode the
//! chaos harness relies on: one thread performs every route, fault
//! evaluation, and delivery in a fixed order.
//!
//! Keep-alive expiry and fault-delay timers are deadline-driven: each
//! shard parks in its poller until the earliest keep-alive deadline or
//! timer-heap entry (or forever when none is armed) instead of polling on
//! a tick, so an idle broker sleeps completely and a stalled loop can
//! never accumulate a backlog of tick events.
//!
//! TCP connections ([`Broker::listen`]) are fully nonblocking: reads
//! accumulate into a per-connection buffer until whole frames decode, and
//! writes queue into a per-connection outbound buffer flushed with
//! vectored writes when the socket is writable. A subscriber whose
//! outbound queue exceeds the high-water mark
//! ([`BrokerConfig::tcp_write_hwm`]) is evicted as a slow consumer — an
//! ungraceful close, so its last will fires.
//!
//! Bridge connections (client ids beginning with [`BRIDGE_PREFIX`]) receive
//! special treatment: messages they publish are never echoed back to them,
//! which is the loop-prevention rule that makes acyclic broker bridging safe
//! (see [`crate::bridge`]).

use crate::codec::{self, PublishTemplate};
use crate::error::{ConnectReturnCode, MqttError, Result};
use crate::fault::{FaultPlan, FaultState, FaultVerdict, PendingDelivery};
use crate::index::{ClientKey, RetainedDelta, RouteEntry, SharedIndex};
use crate::packet::*;
use crate::persist::{recovery, PersistStore, Persistence, WalRecord};
use crate::reactor::{
    waker, PollEvent, Poller, WakeHandle, WakeReceiver, WriteScheduler, WAKE_TOKEN,
};
use crate::session::{InflightOut, QueuedMessage, Session};
use crate::stats::{BrokerCounters, BrokerStatsSnapshot};
use crate::topic::TopicName;
use crate::transport::{
    link, link_with_capacity, FrameReceiver, FrameSender, LinkEnd, TcpOutbound, TryRecv,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client-id prefix identifying bridge connections.
pub const BRIDGE_PREFIX: &str = "$bridge/";

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Human-readable broker name (used in traces and bridge ids).
    pub name: String,
    /// Cap on per-session offline message queues.
    pub max_queued_per_session: usize,
    /// Keep-alive grace multiplier (spec says 1.5).
    pub keepalive_grace: f64,
    /// Number of parallel event-loop shards. Connections are partitioned
    /// by a stable hash of the client id. `1` (the default) is the fully
    /// deterministic single-loop mode used by the chaos harness.
    pub shards: usize,
    /// Optional fault-injection plan applied to every delivery (chaos
    /// testing; see [`crate::fault`]). `None` delivers everything.
    pub fault_plan: Option<FaultPlan>,
    /// WAL + snapshot persistence (see [`crate::persist`]). The default,
    /// [`Persistence::disabled`], keeps the broker purely in-memory.
    pub persistence: Persistence,
    /// Per-TCP-connection outbound buffer high-water mark in bytes. A
    /// subscriber whose unflushed outbound queue exceeds this is evicted
    /// as a slow consumer (ungraceful close: its last will fires).
    pub tcp_write_hwm: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            name: "broker".to_owned(),
            max_queued_per_session: 1024,
            keepalive_grace: 1.5,
            shards: 1,
            fault_plan: None,
            persistence: Persistence::disabled(),
            tcp_write_hwm: 16 * 1024 * 1024,
        }
    }
}

/// Unique id of one transport connection.
pub type ConnId = u64;

/// Stable FNV-1a shard assignment for a client id. Identical ids always
/// land on the same shard, so session takeover is shard-local.
pub(crate) fn shard_of(client_id: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A routed message on its way to one subscriber. Crosses shard mailboxes
/// for QoS>0 / offline deliveries whose session lives on another shard.
#[derive(Debug, Clone)]
struct Delivery {
    key: ClientKey,
    topic: TopicName,
    payload: Bytes,
    qos: QoS,
    retain: bool,
}

enum Event {
    /// A fresh in-process link lands on its provisional home shard
    /// (`conn % shards`), which gates it until the CONNECT arrives.
    /// `target` is the shard index the link's incoming-frame hook reads;
    /// the home shard retargets it when the connection migrates.
    LinkAttach {
        conn: ConnId,
        sender: FrameSender,
        receiver: FrameReceiver,
        target: Arc<AtomicUsize>,
    },
    /// A link produced at least one frame (or hung up); the owning shard
    /// drains one frame per notify.
    LinkNotify(ConnId),
    /// A gated link saw its CONNECT; the home shard hands the connection
    /// to the owner shard (`rest` is any pipelined bytes after CONNECT).
    LinkMigrate {
        conn: ConnId,
        sender: FrameSender,
        receiver: FrameReceiver,
        connect: Box<Connect>,
        rest: Bytes,
    },
    /// The acceptor thread hands a fresh TCP socket to its provisional
    /// home shard, which registers it with the poller and gates it.
    TcpAccept {
        conn: ConnId,
        stream: TcpStream,
    },
    /// A gated TCP connection saw its CONNECT on the home shard and moves
    /// to the owner shard with its read buffer and outbound queue intact.
    TcpMigrate {
        conn: ConnId,
        stream: TcpStream,
        rbuf: Vec<u8>,
        out: Arc<TcpOutbound>,
        connect: Box<Connect>,
    },
    ConnClosed(ConnId),
    /// A migrated link connection closed at its owner; the home shard
    /// drops its forwarding entry.
    ConnGone(ConnId),
    /// Cross-shard delivery hops, coalesced per target shard (the fault
    /// plan was already evaluated by the routing shard). A routing shard
    /// drains its mailbox, buffers every hop, and sends one batch per
    /// target shard per burst instead of one event per delivery.
    Deliver(Vec<Delivery>),
    /// Release the deliveries a `Hold` fault rule buffered.
    ReleaseHeld(String),
    /// Force a compacted snapshot of this shard's persisted state; `ack`
    /// is signalled when it is on disk.
    Snapshot {
        ack: Sender<()>,
    },
    Shutdown,
}

/// Mailbox + reactor waker for one shard: sending an event also wakes the
/// shard out of its poller so the mailbox is drained promptly.
#[derive(Clone)]
struct ShardHandle {
    tx: Sender<Event>,
    wake: WakeHandle,
}

impl ShardHandle {
    fn send(&self, event: Event) -> bool {
        if self.tx.send(event).is_err() {
            return false;
        }
        self.wake.wake();
        true
    }
}

/// One armed fault-delay timer. Ordered by `(at, seq)` so simultaneous
/// deadlines fire in arming order (chaos determinism).
struct TimerEntry {
    at: Instant,
    seq: u64,
    delivery: PendingDelivery,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One TCP listener: its accept thread, bound address, and stop flag.
struct ListenerState {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    handle: JoinHandle<()>,
}

/// A running broker. Dropping the handle shuts the broker down.
pub struct Broker {
    handles: Vec<ShardHandle>,
    counters: Arc<BrokerCounters>,
    index: Arc<SharedIndex>,
    name: String,
    next_conn: Arc<AtomicU64>,
    loop_handles: Vec<JoinHandle<()>>,
    listeners: Mutex<Vec<ListenerState>>,
    persist: Option<Arc<PersistStore>>,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("name", &self.name)
            .field("shards", &self.handles.len())
            .finish()
    }
}

impl Broker {
    /// Starts a broker with the default configuration (one shard).
    pub fn start_default() -> Broker {
        Broker::start(BrokerConfig::default())
    }

    /// Starts a broker with the given configuration, spawning one event
    /// loop thread per shard.
    ///
    /// With persistence configured, startup first replays snapshot + WAL:
    /// persistent sessions (subscriptions, offline queues, QoS windows)
    /// are rebuilt on their owner shards and re-registered offline in the
    /// routing index, retained messages are re-seeded, and wills left by
    /// connections that died with the previous process are fired by each
    /// shard before it processes its first event.
    pub fn start(config: BrokerConfig) -> Broker {
        let shards = config.shards.max(1);
        let counters = Arc::new(BrokerCounters::default());
        let index = Arc::new(SharedIndex::new());
        let name = config.name.clone();

        // Fault-rule hit counters are registered once per broker (the
        // counters live in the rules and are shared by every shard).
        if let Some(plan) = &config.fault_plan {
            for rule in plan.rules() {
                counters.register_fault_rule(rule.label().to_owned(), rule.hits_handle());
            }
        }

        // Recovery: replay snapshot + WAL, then seed the routing index and
        // distribute sessions/wills to their owner shards. A store that
        // fails to open degrades to in-memory operation.
        let mut shard_sessions: Vec<HashMap<String, Session>> =
            (0..shards).map(|_| HashMap::new()).collect();
        let mut shard_wills: Vec<Vec<(String, LastWill)>> =
            (0..shards).map(|_| Vec::new()).collect();
        let mut persist = None;
        if let Some(dir) = &config.persistence.dir {
            if let Ok((store, state)) = PersistStore::open(
                dir,
                shards,
                &config.persistence,
                config.max_queued_per_session,
                Arc::clone(&counters),
            ) {
                let store = Arc::new(store);
                // Seed retained state *before* installing the WAL hook so
                // the replayed messages are not logged again.
                for (topic, (qos, payload)) in &state.retained {
                    index.apply_retained(&Publish {
                        dup: false,
                        qos: *qos,
                        retain: true,
                        topic: topic.clone(),
                        packet_id: None,
                        payload: payload.clone(),
                    });
                    BrokerCounters::bump(&counters.retained_current);
                    BrokerCounters::bump(&counters.recovered_retained);
                }
                index.set_retained_log(Arc::clone(&store));
                // Re-register every recovered session offline (routable
                // before its client reconnects) and restore subscriptions.
                for (client, session) in state.sessions {
                    let shard = shard_of(&client, shards);
                    let key = index.register_offline(&client, shard);
                    for (filter, qos) in &session.subscriptions {
                        if index.subscribe(filter, key, *qos) {
                            BrokerCounters::bump(&counters.subscriptions_current);
                        }
                    }
                    BrokerCounters::bump(&counters.sessions_current);
                    BrokerCounters::add(&counters.queued_current, session.queued.len() as u64);
                    BrokerCounters::bump(&counters.recovered_sessions);
                    shard_sessions[shard].insert(client, session);
                }
                // Wills of sessions that died with the process fire during
                // shard startup (BTreeMap order: sorted by client id).
                for (client, will) in state.wills {
                    shard_wills[shard_of(&client, shards)].push((client, will));
                }
                persist = Some(store);
            }
        }

        // Per-shard plumbing: mailbox + waker + poller + write scheduler.
        let mut handles = Vec::with_capacity(shards);
        let mut shard_ios = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded();
            let (wake, wake_rx) = waker().expect("create shard waker");
            let mut poller = Poller::new().expect("create shard poller");
            poller
                .add(wake_rx.fd(), WAKE_TOKEN, true, false)
                .expect("register shard waker");
            let write_sched = Arc::new(WriteScheduler::new(wake.clone()));
            handles.push(ShardHandle { tx, wake });
            shard_ios.push(ShardIo {
                poller,
                wake_rx,
                write_sched,
            });
            rxs.push(rx);
        }

        let mut loop_handles = Vec::with_capacity(shards);
        let mut shard_sessions = shard_sessions.into_iter();
        let mut shard_wills = shard_wills.into_iter();
        let mut shard_ios = shard_ios.into_iter();
        for (shard, rx) in rxs.into_iter().enumerate() {
            let io = shard_ios.next().expect("one io bundle per shard");
            let mut core = ShardCore::new(shard, &config, &counters, &index, handles.clone(), io);
            core.persist = persist.clone();
            core.sessions = shard_sessions.next().unwrap_or_default();
            core.pending_wills = shard_wills.next().unwrap_or_default();
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("{name}-shard-{shard}"))
                    .spawn(move || core.run(rx))
                    .expect("spawn broker shard"),
            );
        }

        Broker {
            handles,
            counters,
            index,
            name,
            next_conn: Arc::new(AtomicU64::new(1)),
            loop_handles,
            listeners: Mutex::new(Vec::new()),
            persist,
        }
    }

    /// The broker's configured name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of event-loop shards.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Current generation of the routing-index snapshot (bumps on every
    /// subscription / connection / retained mutation).
    pub fn index_generation(&self) -> u64 {
        self.index.load().generation
    }

    /// Opens a new transport connection to this broker and returns the
    /// client-side link end. The caller then speaks MQTT over it (or hands
    /// it to [`crate::client::Client`]).
    pub fn connect_transport(&self) -> Result<LinkEnd> {
        let (client_end, broker_end) = link();
        self.attach(broker_end)?;
        Ok(client_end)
    }

    /// Like [`Broker::connect_transport`], but each direction of the link
    /// buffers at most `capacity` frames. A full broker→client queue
    /// blocks the delivering shard — the in-process model of TCP flow
    /// control, used by the broker bench to measure head-of-line blocking.
    pub fn connect_transport_bounded(&self, capacity: usize) -> Result<LinkEnd> {
        let (client_end, broker_end) = link_with_capacity(Some(capacity));
        self.attach(broker_end)?;
        Ok(client_end)
    }

    /// Hands the broker side of an in-process link to its provisional
    /// home shard — no thread is spawned; the link's incoming-frame hook
    /// nudges whichever shard currently owns the connection. Fails with
    /// [`MqttError::BrokerUnavailable`] when any shard loop has exited
    /// (shutdown in progress or a crashed shard).
    fn attach(&self, end: LinkEnd) -> Result<()> {
        if self.loop_handles.iter().any(JoinHandle::is_finished) {
            return Err(MqttError::BrokerUnavailable);
        }
        let conn_id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        BrokerCounters::bump(&self.counters.connections_total);
        BrokerCounters::bump(&self.counters.connections_current);
        let home = (conn_id % self.handles.len() as u64) as usize;
        let target = Arc::new(AtomicUsize::new(home));
        // Install the notify hook *before* splitting: every frame the
        // client sends from here on nudges the shard that owns the
        // connection (the home shard retargets on migration).
        let hook_target = Arc::clone(&target);
        let hook_handles = self.handles.clone();
        end.set_incoming_notify(Arc::new(move || {
            let shard = hook_target.load(Ordering::Acquire);
            hook_handles[shard].send(Event::LinkNotify(conn_id));
        }));
        let (sender, receiver) = end.split();
        if !self.handles[home].send(Event::LinkAttach {
            conn: conn_id,
            sender,
            receiver,
            target,
        }) {
            self.counters
                .connections_current
                .fetch_sub(1, Ordering::Relaxed);
            return Err(MqttError::BrokerUnavailable);
        }
        Ok(())
    }

    /// Binds a TCP listener and starts accepting real socket connections.
    /// Returns the bound address (useful with port `0`). The accept thread
    /// is the only per-listener thread; accepted sockets are handed to the
    /// shard reactors, so broker thread count stays O(shards) no matter
    /// how many clients connect.
    pub fn listen(&self, addr: impl ToSocketAddrs) -> Result<SocketAddr> {
        let listener = TcpListener::bind(addr).map_err(|_| MqttError::BrokerUnavailable)?;
        let local = listener
            .local_addr()
            .map_err(|_| MqttError::BrokerUnavailable)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let handles = self.handles.clone();
        let counters = Arc::clone(&self.counters);
        let next_conn = Arc::clone(&self.next_conn);
        let handle = std::thread::Builder::new()
            .name(format!("{}-accept", self.name))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    BrokerCounters::bump(&counters.connections_total);
                    BrokerCounters::bump(&counters.connections_current);
                    let home = (conn % handles.len() as u64) as usize;
                    if !handles[home].send(Event::TcpAccept { conn, stream }) {
                        counters.connections_current.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
            })
            .expect("spawn acceptor");
        self.listeners
            .lock()
            .expect("listener registry lock")
            .push(ListenerState {
                stop,
                addr: local,
                handle,
            });
        Ok(local)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> BrokerStatsSnapshot {
        self.counters.snapshot()
    }

    /// Releases every delivery buffered by the `Hold` fault rule with
    /// `label` (see [`crate::fault::FaultAction::Hold`]). A no-op when no
    /// such rule exists or nothing is held. Broadcast to every shard: each
    /// shard releases the deliveries it stashed.
    pub fn release_held(&self, label: &str) {
        for h in &self.handles {
            h.send(Event::ReleaseHeld(label.to_owned()));
        }
    }

    /// Per-fault-rule hit counts, labelled. Empty without a fault plan.
    pub fn fault_hits(&self) -> Vec<(String, u64)> {
        self.counters.fault_hits()
    }

    /// Forces a compacted snapshot of every shard's persisted session
    /// state and of the retained store, blocking until all are on disk.
    /// A no-op without persistence.
    pub fn snapshot_now(&self) {
        if self.persist.is_none() {
            return;
        }
        let (ack, done) = unbounded();
        let mut sent = 0;
        for h in &self.handles {
            if h.send(Event::Snapshot { ack: ack.clone() }) {
                sent += 1;
            }
        }
        drop(ack);
        for _ in 0..sent {
            if done.recv().is_err() {
                break;
            }
        }
        if let Some(store) = &self.persist {
            store.compact_retained(&self.index.load().retained);
            // Drain barrier: the write-behind queues must be fully
            // flushed before callers may read the directory.
            store.drain();
        }
    }

    /// Requests shutdown and waits for every shard thread to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Stop acceptors first: set the flag, then poke each listener with
        // a throwaway connection so the blocking accept observes it.
        let listeners =
            std::mem::take(&mut *self.listeners.lock().expect("listener registry lock"));
        for l in &listeners {
            l.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(l.addr);
        }
        for l in listeners {
            let _ = l.handle.join();
        }
        for h in &self.handles {
            h.send(Event::Shutdown);
        }
        for h in self.loop_handles.drain(..) {
            let _ = h.join();
        }
        // Shards are gone: flush the write-behind queues and stop the
        // persistence thread so a dropped broker leaves every accepted
        // WAL record on disk (restart tests rely on this).
        if let Some(store) = &self.persist {
            store.shutdown();
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-publish encode-once frame cache: QoS 0 frames are shared `Bytes`
/// (no packet id), QoS 1/2 frames share a [`PublishTemplate`] and stamp
/// each subscriber's packet id into a copy. Keyed by the retain flag,
/// which differs only for bridge subscribers.
struct FanoutFrames {
    topic: TopicName,
    payload: Bytes,
    qos0: [Option<Bytes>; 2],
    /// `[qos1 | qos2][retain]`
    templates: [[Option<PublishTemplate>; 2]; 2],
}

impl FanoutFrames {
    fn new(topic: &TopicName, payload: &Bytes) -> FanoutFrames {
        FanoutFrames {
            topic: topic.clone(),
            payload: payload.clone(),
            qos0: [None, None],
            templates: [[None, None], [None, None]],
        }
    }

    /// True when `payload` is the original publish payload (the fault
    /// layer may substitute a rewritten one, which must not hit the cache).
    fn cacheable(&self, payload: &Bytes) -> bool {
        payload.len() == self.payload.len() && payload.as_ptr() == self.payload.as_ptr()
    }

    /// The shared QoS 0 frame for this publish, or `None` when the payload
    /// was rewritten (caller encodes a one-off frame).
    fn qos0_frame(&mut self, retain: bool, payload: &Bytes) -> Option<Bytes> {
        if !self.cacheable(payload) {
            return None;
        }
        let slot = &mut self.qos0[usize::from(retain)];
        if slot.is_none() {
            *slot = codec::encode(&Packet::Publish(Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain,
                topic: self.topic.clone(),
                packet_id: None,
                payload: self.payload.clone(),
            }))
            .ok();
        }
        slot.clone()
    }

    /// The shared QoS>0 template for this publish, or `None` when the
    /// payload was rewritten.
    fn template(&mut self, qos: QoS, retain: bool, payload: &Bytes) -> Option<&PublishTemplate> {
        if qos == QoS::AtMostOnce || !self.cacheable(payload) {
            return None;
        }
        let slot = &mut self.templates[(qos as usize) - 1][usize::from(retain)];
        if slot.is_none() {
            *slot = PublishTemplate::new(&Publish {
                dup: false,
                qos,
                retain,
                topic: self.topic.clone(),
                packet_id: None,
                payload: self.payload.clone(),
            })
            .ok();
        }
        slot.as_ref()
    }
}

struct ConnState {
    sender: FrameSender,
    client_id: String,
    key: ClientKey,
    is_bridge: bool,
    keep_alive: u16,
    last_activity: Instant,
    will: Option<LastWill>,
    graceful: bool,
    /// True while a will registration is WAL-logged for this connection;
    /// discharged (WillClear) when the will fires or is suppressed.
    will_registered: bool,
    /// In-process link receive half (`None` for TCP connections, whose
    /// reads are driven by the poller instead of notify events).
    link_rx: Option<FrameReceiver>,
}

/// A link connection parked on its home shard awaiting CONNECT.
struct PendingLink {
    sender: FrameSender,
    receiver: FrameReceiver,
    /// Shard index the link's incoming-frame hook targets; stored to the
    /// owner shard when the connection migrates.
    target: Arc<AtomicUsize>,
}

/// Reactor-side state of one TCP connection: the nonblocking socket, its
/// partial-frame read buffer, and the in-progress write queue.
struct TcpConn {
    stream: TcpStream,
    /// Accumulated unparsed bytes (partial frames survive here between
    /// readiness events).
    rbuf: Vec<u8>,
    /// Outbound queue shared with every routing shard's [`FrameSender`].
    out: Arc<TcpOutbound>,
    /// Frames drained from `out` and currently being written.
    writing: VecDeque<Bytes>,
    /// Bytes of `writing.front()` already written.
    wr_off: usize,
    /// True while the poller watches this socket for writability.
    want_write: bool,
    /// False while the connection is still CONNECT-gated.
    registered: bool,
}

/// Reactor plumbing handed to one shard: its poller, the wake-pipe
/// receive half, and the write scheduler TCP senders flush through.
struct ShardIo {
    poller: Poller,
    wake_rx: WakeReceiver,
    write_sched: Arc<WriteScheduler>,
}

/// One shard's event loop state: its partition of connections and
/// sessions, plus shared handles to the routing index, the counters, and
/// every shard's mailbox.
struct ShardCore {
    shard: usize,
    max_queued_per_session: usize,
    keepalive_grace: f64,
    tcp_write_hwm: u64,
    counters: Arc<BrokerCounters>,
    index: Arc<SharedIndex>,
    handles: Vec<ShardHandle>,
    poller: Poller,
    wake_rx: WakeReceiver,
    write_sched: Arc<WriteScheduler>,
    conns: HashMap<ConnId, ConnState>,
    /// Connections (link or TCP) parked here until their CONNECT arrives.
    pending_links: HashMap<ConnId, PendingLink>,
    /// Link connections this (home) shard migrated away: notify events
    /// that still land here are forwarded to the owner shard.
    migrated: HashMap<ConnId, usize>,
    /// TCP connections whose sockets this shard's poller owns.
    tcp: HashMap<ConnId, TcpConn>,
    /// Armed fault-delay timers, earliest first.
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    /// client id → live connection (this shard's clients only).
    by_client: HashMap<String, ConnId>,
    /// client id → session (connected and parked; this shard's only).
    sessions: HashMap<String, Session>,
    /// Fault-injection engine; per-shard runtime over shared rule state.
    faults: Option<FaultState>,
    /// Cached earliest keep-alive deadline. Never *later* than the true
    /// earliest deadline: activity only pushes deadlines back (an early
    /// wake is a cheap no-op that recomputes), registrations fold in via
    /// `min`, and closes can only remove deadlines. Avoids an O(conns)
    /// scan per event-loop iteration.
    keepalive_deadline: Option<Instant>,
    /// Durable store handle (`None` = in-memory broker).
    persist: Option<Arc<PersistStore>>,
    /// Wills recovered from the WAL for sessions that died with the
    /// previous process; fired before the first event is processed.
    pending_wills: Vec<(String, LastWill)>,
    /// Cross-shard hops buffered during the current mailbox burst, one
    /// bucket per target shard; flushed as a single `Deliver` batch per
    /// shard when the mailbox drains.
    pending_hops: Vec<Vec<Delivery>>,
}

impl ShardCore {
    fn new(
        shard: usize,
        config: &BrokerConfig,
        counters: &Arc<BrokerCounters>,
        index: &Arc<SharedIndex>,
        handles: Vec<ShardHandle>,
        io: ShardIo,
    ) -> ShardCore {
        let shards = handles.len();
        ShardCore {
            shard,
            max_queued_per_session: config.max_queued_per_session,
            keepalive_grace: config.keepalive_grace,
            tcp_write_hwm: config.tcp_write_hwm as u64,
            counters: Arc::clone(counters),
            index: Arc::clone(index),
            handles,
            poller: io.poller,
            wake_rx: io.wake_rx,
            write_sched: io.write_sched,
            conns: HashMap::new(),
            pending_links: HashMap::new(),
            migrated: HashMap::new(),
            tcp: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            by_client: HashMap::new(),
            sessions: HashMap::new(),
            faults: config
                .fault_plan
                .as_ref()
                .map(|plan| FaultState::new(plan, shard as u64)),
            keepalive_deadline: None,
            persist: None,
            pending_wills: Vec::new(),
            pending_hops: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    fn run(&mut self, rx: Receiver<Event>) {
        // Fire wills recovered for sessions that died with the previous
        // process (sorted by client id; each passes the fault plan via
        // `route`, so chaos rules apply to testament publishes too).
        for (client, will) in std::mem::take(&mut self.pending_wills) {
            let publish = Publish {
                dup: false,
                qos: will.qos,
                retain: will.retain,
                topic: will.topic,
                packet_id: None,
                payload: will.payload,
            };
            self.route(&publish, 0, false, Some(&client));
        }
        self.flush_hops();
        let mut events: Vec<PollEvent> = Vec::new();
        'outer: loop {
            // Drain whatever is queued without any deadline math on the
            // hot path — but check the cached deadline periodically so a
            // mailbox that never empties still expires keep-alives.
            let mut drained = 0u32;
            loop {
                match rx.try_recv() {
                    Ok(event) => {
                        if !self.handle(event) {
                            break 'outer;
                        }
                        drained = drained.wrapping_add(1);
                        if drained.is_multiple_of(128)
                            && self.keepalive_deadline.is_some_and(|d| d <= Instant::now())
                        {
                            self.expire_keepalives();
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break 'outer,
                }
            }
            // Mailbox drained: send the hops this burst produced, one
            // coalesced batch per target shard (events handled on the next
            // pass flush then).
            self.flush_hops();
            // Flush every TCP connection a routing shard scheduled.
            for conn in self.write_sched.take() {
                self.flush_tcp(conn);
            }
            // Fire due deadlines before parking.
            let now = Instant::now();
            if self.keepalive_deadline.is_some_and(|d| d <= now) {
                self.expire_keepalives();
                continue;
            }
            if self.fire_due_timers(now) {
                continue;
            }
            let mut deadline = self.keepalive_deadline;
            if let Some(Reverse(t)) = self.timers.peek() {
                deadline = Some(deadline.map_or(t.at, |d| d.min(t.at)));
            }
            // Park in the poller. Arm the waker first, then re-check the
            // mailbox and write queue: an event or scheduled flush that
            // raced the arming would otherwise sleep until the deadline.
            self.wake_rx.arm();
            if !rx.is_empty() || !self.write_sched.is_empty() {
                continue;
            }
            events.clear();
            let timeout = deadline.map(|d| d.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut events, timeout).is_err() {
                continue;
            }
            for ev in events.iter().copied() {
                if ev.token == WAKE_TOKEN {
                    self.wake_rx.drain();
                    continue;
                }
                if ev.readable {
                    self.tcp_readable(ev.token);
                }
                if ev.writable {
                    self.tcp_writable(ev.token);
                }
            }
        }
        // Close every connection so clients observe disconnection.
        self.conns.clear();
        self.tcp.clear();
    }

    /// Handles one event; returns false on shutdown.
    fn handle(&mut self, event: Event) -> bool {
        match event {
            Event::LinkAttach {
                conn,
                sender,
                receiver,
                target,
            } => {
                self.pending_links.insert(
                    conn,
                    PendingLink {
                        sender,
                        receiver,
                        target,
                    },
                );
                // Frames may have arrived before the attach event did.
                self.on_link_notify(conn);
            }
            Event::LinkNotify(conn) => self.on_link_notify(conn),
            Event::LinkMigrate {
                conn,
                sender,
                receiver,
                connect,
                rest,
            } => self.on_link_migrate(conn, sender, receiver, *connect, rest),
            Event::TcpAccept { conn, stream } => self.on_tcp_accept(conn, stream),
            Event::TcpMigrate {
                conn,
                stream,
                rbuf,
                out,
                connect,
            } => self.on_tcp_migrate(conn, stream, rbuf, out, *connect),
            Event::ConnClosed(conn) => self.close_transport(conn),
            Event::ConnGone(conn) => {
                self.migrated.remove(&conn);
            }
            Event::Deliver(batch) => {
                for d in batch {
                    self.on_deliver(d);
                }
            }
            Event::ReleaseHeld(label) => {
                let released = match &mut self.faults {
                    Some(state) => state.release(&label),
                    None => Vec::new(),
                };
                for d in released {
                    self.deliver_raw(&d.client, d.topic, d.payload, d.qos, d.retain);
                }
            }
            Event::Snapshot { ack } => {
                self.compact_now();
                let _ = ack.send(());
            }
            Event::Shutdown => return false,
        }
        true
    }

    /// One link frame (or hangup) is ready. Exactly one frame is popped
    /// per notify — the link fires one notify per send and one on drop, so
    /// notifies ≥ frames + 1 and the final pop observes the hangup.
    fn on_link_notify(&mut self, conn: ConnId) {
        if let Some(&owner) = self.migrated.get(&conn) {
            // Raced a migration: the hook already targets the owner for
            // new frames; forward this stale nudge along.
            self.handles[owner].send(Event::LinkNotify(conn));
            return;
        }
        if self.pending_links.contains_key(&conn) {
            self.gate_link_connect(conn);
            return;
        }
        let Some(rx) = self.conns.get(&conn).and_then(|c| c.link_rx.as_ref()) else {
            return;
        };
        match rx.try_recv_frame() {
            TryRecv::Frame(frame) => self.process_frame_packets(conn, frame),
            TryRecv::Empty => {}
            TryRecv::Closed => self.on_conn_closed(conn),
        }
    }

    /// CONNECT gate for a parked link connection: pop one frame, decode,
    /// and either register locally, migrate to the owner shard, or drop
    /// the protocol violator.
    fn gate_link_connect(&mut self, conn: ConnId) {
        let frame = {
            let Some(pend) = self.pending_links.get(&conn) else {
                return;
            };
            match pend.receiver.try_recv_frame() {
                TryRecv::Frame(frame) => frame,
                TryRecv::Empty => return,
                TryRecv::Closed => {
                    self.drop_pending_link(conn);
                    return;
                }
            }
        };
        let Ok((packet, used)) = codec::decode(&frame) else {
            self.drop_pending_link(conn);
            return;
        };
        let rest = if used < frame.len() {
            frame.slice(used..)
        } else {
            Bytes::new()
        };
        match packet {
            Packet::Connect(c) if c.client_id.is_empty() => {
                if let Some(pend) = self.pending_links.remove(&conn) {
                    let _ = pend.sender.send_packet(&Packet::Connack(Connack {
                        session_present: false,
                        code: ConnectReturnCode::IdentifierRejected,
                    }));
                }
                self.counters
                    .connections_current
                    .fetch_sub(1, Ordering::Relaxed);
            }
            Packet::Connect(c) => {
                let Some(pend) = self.pending_links.remove(&conn) else {
                    return;
                };
                let owner = shard_of(&c.client_id, self.handles.len());
                if owner == self.shard {
                    self.on_register(conn, pend.sender, c, Some(pend.receiver));
                    if !rest.is_empty() {
                        self.process_frame_packets(conn, rest);
                    }
                } else {
                    // Order matters: record the forwarding entry, hand the
                    // connection over, then retarget the notify hook. Any
                    // nudge that still lands here is forwarded.
                    self.migrated.insert(conn, owner);
                    self.handles[owner].send(Event::LinkMigrate {
                        conn,
                        sender: pend.sender,
                        receiver: pend.receiver,
                        connect: Box::new(c),
                        rest,
                    });
                    pend.target.store(owner, Ordering::Release);
                }
            }
            _ => {
                // Any packet before CONNECT is a protocol violation.
                self.drop_pending_link(conn);
            }
        }
    }

    /// Discards a still-gated link connection (hangup or violation before
    /// CONNECT): it never reached a shard's connection table, so this
    /// shard owns the counter decrement.
    fn drop_pending_link(&mut self, conn: ConnId) {
        if self.pending_links.remove(&conn).is_some() {
            self.counters
                .connections_current
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// A gated link connection arrives at its owner shard.
    fn on_link_migrate(
        &mut self,
        conn: ConnId,
        sender: FrameSender,
        receiver: FrameReceiver,
        connect: Connect,
        rest: Bytes,
    ) {
        self.on_register(conn, sender, connect, Some(receiver));
        if !rest.is_empty() {
            self.process_frame_packets(conn, rest);
        }
    }

    /// Decodes and handles every packet in one frame. Stops early when a
    /// packet closes the connection.
    fn process_frame_packets(&mut self, conn: ConnId, frame: Bytes) {
        let mut rest = frame;
        loop {
            let Ok((packet, used)) = codec::decode(&rest) else {
                self.on_conn_closed(conn);
                return;
            };
            self.on_packet(conn, packet);
            if !self.conns.contains_key(&conn) || used >= rest.len() {
                return;
            }
            rest = rest.slice(used..);
        }
    }

    /// A fresh TCP socket lands on its provisional home shard: make it
    /// nonblocking, register it with the poller, and gate on CONNECT.
    fn on_tcp_accept(&mut self, conn: ConnId, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.counters
                .connections_current
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        let out = TcpOutbound::new(conn, self.tcp_write_hwm, Arc::clone(&self.write_sched));
        if self
            .poller
            .add(stream.as_raw_fd(), conn, true, false)
            .is_err()
        {
            self.counters
                .connections_current
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.tcp.insert(
            conn,
            TcpConn {
                stream,
                rbuf: Vec::new(),
                out,
                writing: VecDeque::new(),
                wr_off: 0,
                want_write: false,
                registered: false,
            },
        );
    }

    /// A gated TCP connection arrives at its owner shard with its read
    /// buffer and outbound queue intact.
    fn on_tcp_migrate(
        &mut self,
        conn: ConnId,
        stream: TcpStream,
        rbuf: Vec<u8>,
        out: Arc<TcpOutbound>,
        connect: Connect,
    ) {
        // Retarget first: pushes that raced the handover scheduled a flush
        // on the home shard (which no longer owns the socket); from here
        // on they schedule here, and the unconditional flush below covers
        // anything already queued.
        out.retarget(Arc::clone(&self.write_sched));
        if self
            .poller
            .add(stream.as_raw_fd(), conn, true, false)
            .is_err()
        {
            self.counters
                .connections_current
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.tcp.insert(
            conn,
            TcpConn {
                stream,
                rbuf,
                out: Arc::clone(&out),
                writing: VecDeque::new(),
                wr_off: 0,
                want_write: false,
                registered: true,
            },
        );
        self.on_register(conn, FrameSender::from_tcp(out), connect, None);
        // Pipelined packets may already sit in the read buffer.
        self.drain_tcp_rbuf(conn);
        if self.tcp.contains_key(&conn) {
            self.flush_tcp(conn);
        }
    }

    /// Socket readable: pull every available byte into the read buffer,
    /// then decode whole frames. EOF or a read error closes the
    /// connection after processing what arrived.
    fn tcp_readable(&mut self, conn: ConnId) {
        let mut eof = false;
        {
            let Some(tc) = self.tcp.get_mut(&conn) else {
                return;
            };
            let mut chunk = [0u8; 16384];
            let mut total = 0usize;
            loop {
                match tc.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        tc.rbuf.extend_from_slice(&chunk[..n]);
                        total += n;
                        // Yield to other connections after 1 MiB; the
                        // level-triggered poller re-reports readiness.
                        if total >= 1 << 20 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
        }
        self.drain_tcp_rbuf(conn);
        if eof {
            self.close_transport(conn);
        }
    }

    /// Decodes every complete frame in the read buffer. TCP frames are
    /// single packets (framed by [`codec::frame_length`]).
    fn drain_tcp_rbuf(&mut self, conn: ConnId) {
        enum Step {
            Frame(Bytes, bool),
            Done,
            Bad(bool),
        }
        loop {
            let step = {
                let Some(tc) = self.tcp.get_mut(&conn) else {
                    return;
                };
                match codec::frame_length(&tc.rbuf) {
                    Ok(Some(len)) if tc.rbuf.len() >= len => {
                        let bytes: Vec<u8> = tc.rbuf.drain(..len).collect();
                        Step::Frame(Bytes::from(bytes), tc.registered)
                    }
                    Ok(_) => Step::Done,
                    Err(_) => Step::Bad(tc.registered),
                }
            };
            match step {
                Step::Frame(frame, true) => self.process_frame_packets(conn, frame),
                Step::Frame(frame, false) => self.gate_tcp_connect(conn, frame),
                Step::Done => return,
                Step::Bad(true) => {
                    self.on_conn_closed(conn);
                    return;
                }
                Step::Bad(false) => {
                    self.teardown_pre_tcp(conn);
                    return;
                }
            }
            if !self.tcp.contains_key(&conn) && !self.conns.contains_key(&conn) {
                return;
            }
        }
    }

    /// CONNECT gate for a TCP connection parked on its home shard.
    fn gate_tcp_connect(&mut self, conn: ConnId, frame: Bytes) {
        let Ok((packet, _)) = codec::decode(&frame) else {
            self.teardown_pre_tcp(conn);
            return;
        };
        match packet {
            Packet::Connect(c) if c.client_id.is_empty() => {
                if let Some(tc) = self.tcp.get(&conn) {
                    let sender = FrameSender::from_tcp(Arc::clone(&tc.out));
                    let _ = sender.send_packet(&Packet::Connack(Connack {
                        session_present: false,
                        code: ConnectReturnCode::IdentifierRejected,
                    }));
                }
                // Best-effort: push the rejection onto the wire before
                // tearing the socket down.
                self.flush_tcp(conn);
                self.teardown_pre_tcp(conn);
            }
            Packet::Connect(c) => {
                let owner = shard_of(&c.client_id, self.handles.len());
                if owner == self.shard {
                    let out = {
                        let Some(tc) = self.tcp.get_mut(&conn) else {
                            return;
                        };
                        tc.registered = true;
                        Arc::clone(&tc.out)
                    };
                    // If registration itself closed the connection, the
                    // caller's drain loop notices via its liveness check.
                    self.on_register(conn, FrameSender::from_tcp(out), c, None);
                } else {
                    let Some(tc) = self.tcp.remove(&conn) else {
                        return;
                    };
                    let _ = self.poller.remove(tc.stream.as_raw_fd());
                    self.handles[owner].send(Event::TcpMigrate {
                        conn,
                        stream: tc.stream,
                        rbuf: tc.rbuf,
                        out: tc.out,
                        connect: Box::new(c),
                    });
                }
            }
            _ => self.teardown_pre_tcp(conn),
        }
    }

    /// Closes a connection this shard transports, whether it completed
    /// CONNECT (full session teardown) or is still gated.
    fn close_transport(&mut self, conn: ConnId) {
        if self.conns.contains_key(&conn) {
            self.on_conn_closed(conn);
        } else if self.tcp.contains_key(&conn) {
            self.teardown_pre_tcp(conn);
        }
    }

    /// Tears down a TCP connection that never completed CONNECT: it is
    /// absent from every connection table, so this shard decrements the
    /// connection counter itself.
    fn teardown_pre_tcp(&mut self, conn: ConnId) {
        if self.teardown_tcp(conn) {
            self.counters
                .connections_current
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Removes a TCP connection's socket state (poller registration,
    /// outbound queue). Returns true when the connection was present.
    fn teardown_tcp(&mut self, conn: ConnId) -> bool {
        let Some(tc) = self.tcp.remove(&conn) else {
            return false;
        };
        let _ = self.poller.remove(tc.stream.as_raw_fd());
        tc.out.mark_closed();
        if tc.out.take_eviction_count() {
            BrokerCounters::bump(&self.counters.slow_consumer_evictions);
        }
        true
    }

    /// Drains the connection's outbound queue to the socket with vectored
    /// writes. On `WouldBlock` the poller starts watching writability; a
    /// high-water-mark breach evicts the slow consumer (ungraceful, so
    /// its will fires); a dead socket closes the connection.
    fn flush_tcp(&mut self, conn: ConnId) {
        let mut evict = false;
        let mut dead = false;
        {
            let Some(tc) = self.tcp.get_mut(&conn) else {
                return;
            };
            tc.out.begin_flush();
            tc.out.drain_into(&mut tc.writing);
            if tc.out.is_evicted() {
                evict = true;
            } else {
                let fd = tc.stream.as_raw_fd();
                loop {
                    if tc.writing.is_empty() {
                        break;
                    }
                    let res = {
                        let mut slices: Vec<IoSlice<'_>> =
                            Vec::with_capacity(32.min(tc.writing.len()));
                        let mut iter = tc.writing.iter();
                        if let Some(first) = iter.next() {
                            slices.push(IoSlice::new(&first[tc.wr_off..]));
                        }
                        for b in iter.take(31) {
                            slices.push(IoSlice::new(b));
                        }
                        tc.stream.write_vectored(&slices)
                    };
                    match res {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => {
                            tc.out.note_written(n as u64);
                            let mut left = n;
                            while left > 0 {
                                let front_len = tc.writing[0].len() - tc.wr_off;
                                if left >= front_len {
                                    tc.writing.pop_front();
                                    tc.wr_off = 0;
                                    left -= front_len;
                                } else {
                                    tc.wr_off += left;
                                    left = 0;
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if !tc.want_write {
                                tc.want_write = true;
                                let _ = self.poller.modify(fd, conn, true, true);
                            }
                            break;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if tc.writing.is_empty() && tc.want_write && !dead {
                    tc.want_write = false;
                    let _ = self.poller.modify(fd, conn, true, false);
                }
            }
        }
        if evict {
            if self
                .tcp
                .get(&conn)
                .is_some_and(|tc| tc.out.take_eviction_count())
            {
                BrokerCounters::bump(&self.counters.slow_consumer_evictions);
            }
            self.close_transport(conn);
        } else if dead {
            self.close_transport(conn);
        }
    }

    /// Socket writable again after backpressure: resume the flush.
    fn tcp_writable(&mut self, conn: ConnId) {
        self.flush_tcp(conn);
    }

    /// Fires every elapsed fault-delay timer (earliest first; ties in
    /// arming order). Returns true when any fired.
    fn fire_due_timers(&mut self, now: Instant) -> bool {
        let mut fired = false;
        while self.timers.peek().is_some_and(|Reverse(t)| t.at <= now) {
            let Some(Reverse(t)) = self.timers.pop() else {
                break;
            };
            let d = t.delivery;
            self.deliver_raw(&d.client, d.topic, d.payload, d.qos, d.retain);
            fired = true;
        }
        fired
    }

    /// Sends the cross-shard hops buffered during the current mailbox
    /// burst: one `Deliver` batch per target shard, preserving per-shard
    /// delivery order. No-op with one shard (nothing ever buffers).
    fn flush_hops(&mut self) {
        for shard in 0..self.pending_hops.len() {
            if self.pending_hops[shard].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.pending_hops[shard]);
            BrokerCounters::bump(&self.counters.cross_shard_batches);
            self.handles[shard].send(Event::Deliver(batch));
        }
    }

    /// Enqueues one record for this shard's WAL stream (the persistence
    /// thread does the disk I/O), compacting the stream when it outgrows
    /// the snapshot threshold. No-op without persistence.
    fn log_wal(&mut self, rec: WalRecord) {
        let Some(store) = self.persist.as_ref().map(Arc::clone) else {
            return;
        };
        if store.append_shard(self.shard, rec) {
            self.compact_now();
        }
    }

    /// Serializes this shard's persisted state — every persistent
    /// session plus the wills of live connections, in sorted client-id
    /// order — and hands it to the persistence thread, which writes the
    /// compacted snapshot off the shard hot path.
    fn compact_now(&mut self) {
        let Some(store) = self.persist.as_ref().map(Arc::clone) else {
            return;
        };
        let mut records = Vec::new();
        let mut persistent: Vec<&Session> = self.sessions.values().filter(|s| !s.clean).collect();
        persistent.sort_unstable_by(|a, b| a.client_id.cmp(&b.client_id));
        for session in persistent {
            recovery::session_records(session, &mut records);
        }
        let mut wills: Vec<(&String, &LastWill)> = self
            .conns
            .values()
            .filter(|c| c.will_registered)
            .filter_map(|c| c.will.as_ref().map(|w| (&c.client_id, w)))
            .collect();
        wills.sort_unstable_by(|a, b| a.0.cmp(b.0));
        for (client, will) in wills {
            records.push(WalRecord::WillSet {
                client: client.clone(),
                will: will.clone(),
            });
        }
        store.compact_shard(self.shard, records);
    }

    /// True when `client` owns a persistent (WAL-logged) session.
    fn is_persistent(&self, client: &str) -> bool {
        self.sessions.get(client).is_some_and(|s| !s.clean)
    }

    fn conn_deadline(&self, c: &ConnState) -> Option<Instant> {
        (c.keep_alive > 0).then(|| {
            c.last_activity
                + Duration::from_secs_f64(f64::from(c.keep_alive) * self.keepalive_grace)
        })
    }

    /// Closes every expired connection, then recomputes the cached
    /// earliest deadline with one full scan (runs only when a deadline
    /// fires — at most once per keep-alive period per connection — never
    /// on the per-event hot path).
    fn expire_keepalives(&mut self) {
        let grace = self.keepalive_grace;
        let expired: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.keep_alive > 0
                    && c.last_activity.elapsed()
                        > Duration::from_secs_f64(f64::from(c.keep_alive) * grace)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            BrokerCounters::bump(&self.counters.keepalive_timeouts);
            self.on_conn_closed(id);
        }
        self.keepalive_deadline = self
            .conns
            .values()
            .filter_map(|c| self.conn_deadline(c))
            .min();
    }

    fn on_register(
        &mut self,
        conn_id: ConnId,
        sender: FrameSender,
        c: Connect,
        link_rx: Option<FrameReceiver>,
    ) {
        // Session takeover: disconnect any live connection with this id
        // (always shard-local — same id, same shard).
        if let Some(&old) = self.by_client.get(&c.client_id) {
            if old != conn_id {
                self.on_conn_closed(old);
            }
        }

        let is_bridge = c.client_id.starts_with(BRIDGE_PREFIX);
        let key =
            self.index
                .register_conn(&c.client_id, self.shard, conn_id, sender.clone(), is_bridge);

        let session_present = if c.clean_session {
            // Fresh session: purge stored state and subscriptions.
            if let Some(old) = self.sessions.remove(&c.client_id) {
                self.counters
                    .sessions_current
                    .fetch_sub(1, Ordering::Relaxed);
                // The only sessions a clean reconnect can still find are
                // persistent ones (clean sessions die with their
                // connection): drop the persisted state too.
                if !old.clean {
                    BrokerCounters::bump(&self.counters.sessions_cleaned);
                    self.log_wal(WalRecord::SessionDestroy {
                        client: c.client_id.clone(),
                    });
                }
            }
            let removed = self.index.unsubscribe_all(key);
            self.counters
                .subscriptions_current
                .fetch_sub(removed as u64, Ordering::Relaxed);
            false
        } else {
            self.sessions.contains_key(&c.client_id)
        };

        if !self.sessions.contains_key(&c.client_id) {
            self.sessions.insert(
                c.client_id.clone(),
                Session::new(
                    c.client_id.clone(),
                    c.clean_session,
                    self.max_queued_per_session,
                ),
            );
            BrokerCounters::bump(&self.counters.sessions_current);
            if !c.clean_session {
                self.log_wal(WalRecord::SessionCreate {
                    client: c.client_id.clone(),
                });
            }
        } else if let Some(s) = self.sessions.get_mut(&c.client_id) {
            s.clean = c.clean_session;
        }

        // Last-will registration is connection-scoped (logged even for
        // clean sessions, so a will survives a process crash).
        if let Some(will) = &c.will {
            self.log_wal(WalRecord::WillSet {
                client: c.client_id.clone(),
                will: will.clone(),
            });
        }

        let state = ConnState {
            sender,
            client_id: c.client_id.clone(),
            key,
            is_bridge,
            keep_alive: c.keep_alive,
            last_activity: Instant::now(),
            will_registered: c.will.is_some(),
            will: c.will,
            graceful: false,
            link_rx,
        };
        // Fold the newcomer into the cached earliest deadline (the only
        // mutation that can move the minimum *earlier*).
        if let Some(deadline) = self.conn_deadline(&state) {
            self.keepalive_deadline = Some(match self.keepalive_deadline {
                Some(current) => current.min(deadline),
                None => deadline,
            });
        }
        self.conns.insert(conn_id, state);
        self.by_client.insert(c.client_id.clone(), conn_id);

        self.send_to_conn(
            conn_id,
            &Packet::Connack(Connack {
                session_present,
                code: ConnectReturnCode::Accepted,
            }),
        );

        // Replay: queued offline messages, then unacknowledged inflight.
        if session_present {
            self.replay_session(conn_id, &c.client_id);
        }
    }

    fn replay_session(&mut self, conn_id: ConnId, client_id: &str) {
        let Some(session) = self.sessions.get_mut(client_id) else {
            return;
        };
        let queued = session.drain_queued();
        let inflight = session.take_inflight();
        self.counters
            .queued_current
            .fetch_sub(queued.len() as u64, Ordering::Relaxed);
        if !queued.is_empty() {
            self.log_wal(WalRecord::QueueDrained {
                client: client_id.to_owned(),
            });
        }
        for msg in queued {
            // Straight to deliver_raw: these messages already passed the
            // fault plan when they were routed (and queued); evaluating
            // them again would double-apply rules and skew hit windows.
            self.deliver_raw(client_id, msg.topic, msg.payload, msg.qos, false);
        }
        for (old_id, inflight_msg) in inflight {
            // Retransmit with a fresh id and DUP=1.
            let Some(session) = self.sessions.get_mut(client_id) else {
                return;
            };
            let id = session.alloc_packet_id();
            session.inflight_out.insert(
                id,
                InflightOut {
                    topic: inflight_msg.topic.clone(),
                    payload: inflight_msg.payload.clone(),
                    qos: inflight_msg.qos,
                    retain: inflight_msg.retain,
                    released: false,
                },
            );
            // The WAL mirrors the id swap: the old window entry goes
            // away, the retransmission enters under its fresh id.
            self.log_wal(WalRecord::InflightRemove {
                client: client_id.to_owned(),
                id: old_id,
            });
            self.log_wal(WalRecord::InflightInsert {
                client: client_id.to_owned(),
                id,
                topic: inflight_msg.topic.clone(),
                qos: inflight_msg.qos,
                retain: inflight_msg.retain,
                released: false,
                payload: inflight_msg.payload.clone(),
            });
            // Count before sending: once a receiver observes the frame,
            // the counter must already reflect it.
            BrokerCounters::bump(&self.counters.publishes_out);
            self.send_to_conn(
                conn_id,
                &Packet::Publish(Publish {
                    dup: true,
                    qos: inflight_msg.qos,
                    retain: inflight_msg.retain,
                    topic: inflight_msg.topic,
                    packet_id: Some(id),
                    payload: inflight_msg.payload,
                }),
            );
        }
    }

    fn on_packet(&mut self, conn_id: ConnId, packet: Packet) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // already closed
        };
        conn.last_activity = Instant::now();
        match packet {
            Packet::Publish(p) => self.on_publish(conn_id, p),
            Packet::Puback(id) => self.on_puback(conn_id, id),
            Packet::Pubrec(id) => self.on_pubrec(conn_id, id),
            Packet::Pubrel(id) => self.on_pubrel(conn_id, id),
            Packet::Pubcomp(id) => self.on_pubcomp(conn_id, id),
            Packet::Subscribe(s) => self.on_subscribe(conn_id, s),
            Packet::Unsubscribe(u) => self.on_unsubscribe(conn_id, u),
            Packet::Pingreq => {
                self.send_to_conn(conn_id, &Packet::Pingresp);
            }
            Packet::Disconnect => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.graceful = true;
                    conn.will = None;
                }
                self.on_conn_closed(conn_id);
            }
            // A second CONNECT on a live connection, or server-to-client
            // packets arriving at the broker, are protocol violations;
            // drop the connection.
            Packet::Connect(_)
            | Packet::Connack(_)
            | Packet::Suback(_)
            | Packet::Unsuback(_)
            | Packet::Pingresp => {
                self.on_conn_closed(conn_id);
            }
        }
    }

    fn on_publish(&mut self, conn_id: ConnId, p: Publish) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        let client_id = conn.client_id.clone();
        let is_bridge = conn.is_bridge;

        BrokerCounters::bump(&self.counters.publishes_in);
        BrokerCounters::add(&self.counters.payload_bytes_in, p.payload.len() as u64);
        if is_bridge {
            BrokerCounters::bump(&self.counters.bridge_in);
        }

        match p.qos {
            QoS::AtMostOnce => self.route(&p, conn_id, is_bridge, Some(&client_id)),
            QoS::AtLeastOnce => {
                let id = p.packet_id.unwrap_or(0);
                self.route(&p, conn_id, is_bridge, Some(&client_id));
                self.send_to_conn(conn_id, &Packet::Puback(id));
            }
            QoS::ExactlyOnce => {
                let id = p.packet_id.unwrap_or(0);
                let fresh = self
                    .sessions
                    .get_mut(&client_id)
                    .map(|s| s.inbound_qos2.insert(id))
                    .unwrap_or(true);
                if fresh {
                    if self.is_persistent(&client_id) {
                        self.log_wal(WalRecord::InboundQos2Insert {
                            client: client_id.clone(),
                            id,
                        });
                    }
                    // Method A: route on first receipt, dedupe duplicates.
                    self.route(&p, conn_id, is_bridge, Some(&client_id));
                }
                self.send_to_conn(conn_id, &Packet::Pubrec(id));
            }
        }
    }

    /// Routes a publish to every matching subscriber and updates the
    /// retained store. Matching runs against the current index snapshot —
    /// no lock is held — and targets are visited in sorted client-id
    /// order, so delivery order is deterministic at every shard count.
    /// `origin_client` is the publishing client's id (used by fault-rule
    /// matching), `None` for broker-internal replays.
    fn route(
        &mut self,
        p: &Publish,
        origin: ConnId,
        origin_is_bridge: bool,
        origin_client: Option<&str>,
    ) {
        if p.retain {
            match self.index.apply_retained(p) {
                RetainedDelta::Added => {
                    BrokerCounters::bump(&self.counters.retained_current);
                }
                RetainedDelta::Removed => {
                    self.counters
                        .retained_current
                        .fetch_sub(1, Ordering::Relaxed);
                }
                RetainedDelta::Replaced | RetainedDelta::Unchanged => {}
            }
        }

        let snap = self.index.load();
        // Dedupe overlapping subscriptions per client, keeping max QoS.
        let mut matched: Vec<(ClientKey, QoS)> = snap
            .trie
            .matches(&p.topic)
            .into_iter()
            .map(|(k, q)| (*k, *q))
            .collect();
        matched.sort_unstable_by_key(|(k, _)| *k);
        matched.dedup_by(|next, keep| {
            if next.0 == keep.0 {
                keep.1 = keep.1.max(next.1);
                true
            } else {
                false
            }
        });
        // Resolve routes and order deterministically by client id.
        let mut targets: Vec<(&RouteEntry, ClientKey, QoS)> = matched
            .iter()
            .filter_map(|&(k, granted)| snap.routes.entry(k).map(|e| (e, k, granted)))
            .collect();
        targets.sort_unstable_by(|a, b| a.0.client.cmp(&b.0.client));

        let mut frames = FanoutFrames::new(&p.topic, &p.payload);
        for (entry, key, granted) in targets {
            // Loop prevention: never echo a bridge's own message back.
            if origin_is_bridge && entry.conn == Some(origin) {
                continue;
            }
            let qos = p.qos.min(granted);
            // Forwarded messages carry retain=0 for established subs, with
            // one exception: bridge connections keep the flag so retained
            // state propagates across brokers (mosquitto behaves the same).
            let retain_out = p.retain && entry.is_bridge;
            let Some((payload, duplicate, release)) = self.fault_gate(
                &entry.client,
                &p.topic,
                &p.payload,
                qos,
                retain_out,
                origin_client,
            ) else {
                continue;
            };
            let d = Delivery {
                key,
                topic: p.topic.clone(),
                payload,
                qos,
                retain: retain_out,
            };
            if duplicate {
                let copy = d.clone();
                self.dispatch(entry, d, Some(&mut frames));
                self.dispatch(entry, copy, Some(&mut frames));
            } else {
                self.dispatch(entry, d, Some(&mut frames));
            }
            for r in release {
                self.deliver_raw(&r.client, r.topic, r.payload, r.qos, r.retain);
            }
        }
    }

    /// Runs one prospective delivery through the fault plan. Returns the
    /// (possibly rewritten) payload, whether to deliver a duplicate, and
    /// any stashed deliveries to release afterwards — or `None` when the
    /// delivery was consumed (dropped, held, stashed, delayed, or turned
    /// into an ungraceful teardown of the recipient's connection).
    fn fault_gate(
        &mut self,
        client: &str,
        topic: &TopicName,
        payload: &Bytes,
        qos: QoS,
        retain: bool,
        origin: Option<&str>,
    ) -> Option<(Bytes, bool, Vec<PendingDelivery>)> {
        let Some(faults) = self.faults.as_mut() else {
            return Some((payload.clone(), false, Vec::new()));
        };
        match faults.evaluate(client, topic, payload, qos, retain, origin) {
            FaultVerdict::Deliver {
                payload,
                duplicate,
                release,
            } => Some((payload, duplicate, release)),
            FaultVerdict::Consumed => None,
            FaultVerdict::Delayed { delivery, delay } => {
                // Arm a reactor timer instead of spawning a sleeper
                // thread: the shard's park deadline accounts for the heap
                // and replays the delivery when it elapses.
                self.timer_seq += 1;
                self.timers.push(Reverse(TimerEntry {
                    at: Instant::now() + delay,
                    seq: self.timer_seq,
                    delivery,
                }));
                None
            }
            FaultVerdict::Kill => {
                // Sever the recipient's live connection through its owner
                // shard; the close is ungraceful, so on_conn_closed fires
                // the client's last-will testament.
                let snap = self.index.load();
                if let Some(entry) = snap
                    .routes
                    .key_of(client)
                    .and_then(|key| snap.routes.entry(key))
                {
                    if let Some(conn) = entry.conn {
                        self.handles[entry.shard].send(Event::ConnClosed(conn));
                    }
                }
                None
            }
        }
    }

    /// Delivers one fault-cleared message to one subscriber:
    ///
    /// * live + QoS 0 → encode-once shared frame pushed straight into the
    ///   subscriber's sender, from whichever shard is routing;
    /// * live + QoS 1/2 on this shard → packet id allocated against the
    ///   local session, frame stamped from the shared template;
    /// * anything else (other shard's session, or offline) → one hop to
    ///   the owner shard's mailbox.
    fn dispatch(&mut self, entry: &RouteEntry, d: Delivery, frames: Option<&mut FanoutFrames>) {
        match (&entry.conn, &entry.sender) {
            (Some(conn), Some(sender)) if d.qos == QoS::AtMostOnce => {
                let frame = match frames.and_then(|f| f.qos0_frame(d.retain, &d.payload)) {
                    Some(shared) => Some(shared),
                    None => codec::encode(&Packet::Publish(Publish {
                        dup: false,
                        qos: QoS::AtMostOnce,
                        retain: d.retain,
                        topic: d.topic.clone(),
                        packet_id: None,
                        payload: d.payload.clone(),
                    }))
                    .ok(),
                };
                let Some(frame) = frame else {
                    BrokerCounters::bump(&self.counters.dropped);
                    return;
                };
                // Count before sending: once a receiver observes the
                // frame, the counter must already reflect it.
                BrokerCounters::bump(&self.counters.publishes_out);
                BrokerCounters::add(&self.counters.payload_bytes_out, d.payload.len() as u64);
                if sender.send_frame(frame).is_err() {
                    // The peer vanished mid-delivery; tell the owner shard
                    // so it can tear the connection down.
                    self.handles[entry.shard].send(Event::ConnClosed(*conn));
                }
            }
            _ if entry.shard == self.shard => {
                let client = Arc::clone(&entry.client);
                self.deliver_owned(&client, d, frames);
            }
            (None, _) if d.qos == QoS::AtMostOnce => {
                // Offline subscriber, QoS 0: never queued, so don't pay a
                // cross-shard hop just to have the owner drop it.
                BrokerCounters::bump(&self.counters.dropped);
            }
            _ => {
                // Buffer the hop; `flush_hops` sends one coalesced batch
                // per target shard when the current mailbox burst ends.
                BrokerCounters::bump(&self.counters.cross_shard_hops);
                self.pending_hops[entry.shard].push(d);
            }
        }
    }

    /// Cross-shard hop arriving at the session's owner shard.
    fn on_deliver(&mut self, d: Delivery) {
        let snap = self.index.load();
        let Some(entry) = snap.routes.entry(d.key) else {
            // Session vanished while the hop was in flight.
            BrokerCounters::bump(&self.counters.dropped);
            return;
        };
        let client = Arc::clone(&entry.client);
        self.deliver_owned(&client, d, None);
    }

    /// Owner-shard delivery: consult the *local* connection table (the
    /// authoritative source for this shard's clients) and either send with
    /// a session packet id or queue for the offline session.
    fn deliver_owned(&mut self, client: &str, d: Delivery, frames: Option<&mut FanoutFrames>) {
        match self.by_client.get(client) {
            Some(&conn_id) if self.conns.contains_key(&conn_id) => {
                if d.qos == QoS::AtMostOnce {
                    // Only reachable when the snapshot lagged the local
                    // table (e.g. replay right after reconnect).
                    BrokerCounters::bump(&self.counters.publishes_out);
                    self.send_to_conn(
                        conn_id,
                        &Packet::Publish(Publish {
                            dup: false,
                            qos: d.qos,
                            retain: d.retain,
                            topic: d.topic,
                            packet_id: None,
                            payload: d.payload,
                        }),
                    );
                    return;
                }
                let Some(session) = self.sessions.get_mut(client) else {
                    BrokerCounters::bump(&self.counters.dropped);
                    return;
                };
                let id = session.alloc_packet_id();
                session.inflight_out.insert(
                    id,
                    InflightOut {
                        topic: d.topic.clone(),
                        payload: d.payload.clone(),
                        qos: d.qos,
                        retain: d.retain,
                        released: false,
                    },
                );
                let persistent = !session.clean;
                if persistent {
                    self.log_wal(WalRecord::InflightInsert {
                        client: client.to_owned(),
                        id,
                        topic: d.topic.clone(),
                        qos: d.qos,
                        retain: d.retain,
                        released: false,
                        payload: d.payload.clone(),
                    });
                }
                BrokerCounters::bump(&self.counters.publishes_out);
                let shared = frames
                    .and_then(|f| f.template(d.qos, d.retain, &d.payload))
                    .map(|t| t.with_packet_id(id));
                match shared {
                    Some(frame) => {
                        BrokerCounters::add(
                            &self.counters.payload_bytes_out,
                            d.payload.len() as u64,
                        );
                        let send_failed = self
                            .conns
                            .get(&conn_id)
                            .map(|c| c.sender.send_frame(frame).is_err())
                            .unwrap_or(false);
                        if send_failed {
                            self.on_conn_closed(conn_id);
                        }
                    }
                    None => self.send_to_conn(
                        conn_id,
                        &Packet::Publish(Publish {
                            dup: false,
                            qos: d.qos,
                            retain: d.retain,
                            topic: d.topic,
                            packet_id: Some(id),
                            payload: d.payload,
                        }),
                    ),
                }
            }
            _ => self.queue_offline(client, d),
        }
    }

    /// Queues a delivery for an offline persistent session, or drops it
    /// (QoS 0 / clean session / no session) per spec latitude.
    fn queue_offline(&mut self, client: &str, d: Delivery) {
        let Some(session) = self.sessions.get_mut(client) else {
            BrokerCounters::bump(&self.counters.dropped);
            return;
        };
        if d.qos == QoS::AtMostOnce || session.clean {
            BrokerCounters::bump(&self.counters.dropped);
        } else {
            let intact = session.queue_message(QueuedMessage {
                topic: d.topic.clone(),
                payload: d.payload.clone(),
                qos: d.qos,
            });
            // Recovery replays Enqueue through the same capped
            // `queue_message`, so an overflowing WAL converges on the
            // same post-cap queue.
            self.log_wal(WalRecord::Enqueue {
                client: client.to_owned(),
                topic: d.topic,
                qos: d.qos,
                payload: d.payload,
            });
            BrokerCounters::bump(&self.counters.queued_current);
            if !intact {
                BrokerCounters::bump(&self.counters.dropped);
                self.counters.queued_current.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Delivers one message to one client by name, bypassing the fault
    /// plan (used for replays the plan already cleared: queued messages,
    /// released holds, reordered or delayed deliveries).
    fn deliver_raw(
        &mut self,
        client: &str,
        topic: TopicName,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) {
        let snap = self.index.load();
        let Some(key) = snap.routes.key_of(client) else {
            BrokerCounters::bump(&self.counters.dropped);
            return;
        };
        let Some(entry) = snap.routes.entry(key) else {
            BrokerCounters::bump(&self.counters.dropped);
            return;
        };
        let d = Delivery {
            key,
            topic,
            payload,
            qos,
            retain,
        };
        self.dispatch(entry, d, None);
    }

    fn session_of_conn(&mut self, conn_id: ConnId) -> Option<&mut Session> {
        let client = self.conns.get(&conn_id)?.client_id.clone();
        self.sessions.get_mut(&client)
    }

    fn on_puback(&mut self, conn_id: ConnId, id: PacketId) {
        let mut log = None;
        if let Some(session) = self.session_of_conn(conn_id) {
            if session.inflight_out.remove(&id).is_some() && !session.clean {
                log = Some(WalRecord::InflightRemove {
                    client: session.client_id.clone(),
                    id,
                });
            }
        }
        if let Some(rec) = log {
            self.log_wal(rec);
        }
    }

    fn on_pubrec(&mut self, conn_id: ConnId, id: PacketId) {
        let mut log = None;
        if let Some(session) = self.session_of_conn(conn_id) {
            if let Some(inflight) = session.inflight_out.get_mut(&id) {
                inflight.released = true;
                if !session.clean {
                    log = Some(WalRecord::InflightRelease {
                        client: session.client_id.clone(),
                        id,
                    });
                }
            }
        }
        if let Some(rec) = log {
            self.log_wal(rec);
        }
        self.send_to_conn(conn_id, &Packet::Pubrel(id));
    }

    fn on_pubrel(&mut self, conn_id: ConnId, id: PacketId) {
        let mut log = None;
        if let Some(session) = self.session_of_conn(conn_id) {
            if session.inbound_qos2.remove(&id) && !session.clean {
                log = Some(WalRecord::InboundQos2Remove {
                    client: session.client_id.clone(),
                    id,
                });
            }
        }
        if let Some(rec) = log {
            self.log_wal(rec);
        }
        self.send_to_conn(conn_id, &Packet::Pubcomp(id));
    }

    fn on_pubcomp(&mut self, conn_id: ConnId, id: PacketId) {
        let mut log = None;
        if let Some(session) = self.session_of_conn(conn_id) {
            if session.inflight_out.remove(&id).is_some() && !session.clean {
                log = Some(WalRecord::InflightRemove {
                    client: session.client_id.clone(),
                    id,
                });
            }
        }
        if let Some(rec) = log {
            self.log_wal(rec);
        }
    }

    fn on_subscribe(&mut self, conn_id: ConnId, s: Subscribe) {
        let Some((client_id, key)) = self
            .conns
            .get(&conn_id)
            .map(|c| (c.client_id.clone(), c.key))
        else {
            return;
        };
        let mut codes = Vec::with_capacity(s.filters.len());
        let mut replays: Vec<(TopicName, Bytes, QoS)> = Vec::new();
        for (filter, requested) in &s.filters {
            // The embedded broker grants every valid filter at the
            // requested QoS (codec already validated syntax).
            let granted = *requested;
            let new = self.index.subscribe(filter, key, granted);
            if new {
                BrokerCounters::bump(&self.counters.subscriptions_current);
            }
            let persistent = match self.sessions.get_mut(&client_id) {
                Some(session) => {
                    session.subscriptions.insert(filter.clone(), granted);
                    !session.clean
                }
                None => false,
            };
            if persistent {
                self.log_wal(WalRecord::Subscribe {
                    client: client_id.clone(),
                    filter: filter.clone(),
                    qos: granted,
                });
            }
            codes.push(SubackCode::Granted(granted));
            let snap = self.index.load();
            let mut matching = snap.retained.matching(filter);
            matching.sort_by(|(a, _), (b, _)| a.cmp(b));
            for (topic, retained) in matching {
                replays.push((topic, retained.payload, retained.qos.min(granted)));
            }
        }
        self.send_to_conn(
            conn_id,
            &Packet::Suback(Suback {
                packet_id: s.packet_id,
                return_codes: codes,
            }),
        );
        for (topic, payload, qos) in replays {
            // Retained replays carry retain=1 and pass the fault plan.
            if let Some((payload, duplicate, release)) =
                self.fault_gate(&client_id, &topic, &payload, qos, true, None)
            {
                self.deliver_raw(&client_id, topic.clone(), payload.clone(), qos, true);
                if duplicate {
                    self.deliver_raw(&client_id, topic, payload, qos, true);
                }
                for r in release {
                    self.deliver_raw(&r.client, r.topic, r.payload, r.qos, r.retain);
                }
            }
        }
    }

    fn on_unsubscribe(&mut self, conn_id: ConnId, u: Unsubscribe) {
        let Some((client_id, key)) = self
            .conns
            .get(&conn_id)
            .map(|c| (c.client_id.clone(), c.key))
        else {
            return;
        };
        for filter in &u.filters {
            if self.index.unsubscribe(filter, key) {
                self.counters
                    .subscriptions_current
                    .fetch_sub(1, Ordering::Relaxed);
            }
            let removed_persistent = match self.sessions.get_mut(&client_id) {
                Some(session) => session.subscriptions.remove(filter).is_some() && !session.clean,
                None => false,
            };
            if removed_persistent {
                self.log_wal(WalRecord::Unsubscribe {
                    client: client_id.clone(),
                    filter: filter.clone(),
                });
            }
        }
        self.send_to_conn(conn_id, &Packet::Unsuback(u.packet_id));
    }

    fn on_conn_closed(&mut self, conn_id: ConnId) {
        let Some(conn) = self.conns.remove(&conn_id) else {
            return;
        };
        self.counters
            .connections_current
            .fetch_sub(1, Ordering::Relaxed);
        // Tear down the transport: a TCP socket leaves the poller; a link
        // that migrated here tells its home shard to drop the forwarding
        // entry.
        self.teardown_tcp(conn_id);
        if conn.link_rx.is_some() {
            let home = (conn_id % self.handles.len() as u64) as usize;
            if home != self.shard {
                self.handles[home].send(Event::ConnGone(conn_id));
            }
        }

        let will = if conn.graceful {
            None
        } else {
            conn.will.clone()
        };
        // Discharge the persisted will registration: whether it fires now
        // (ungraceful close) or was suppressed (clean DISCONNECT), it must
        // not fire again after a broker restart.
        if conn.will_registered {
            self.log_wal(WalRecord::WillClear {
                client: conn.client_id.clone(),
            });
        }

        if self.by_client.get(&conn.client_id) == Some(&conn_id) {
            self.by_client.remove(&conn.client_id);
            let clean = self
                .sessions
                .get(&conn.client_id)
                .map(|s| s.clean)
                .unwrap_or(true);
            if clean {
                if self.sessions.remove(&conn.client_id).is_some() {
                    self.counters
                        .sessions_current
                        .fetch_sub(1, Ordering::Relaxed);
                }
                let removed = self.index.remove_client(conn.key);
                self.counters
                    .subscriptions_current
                    .fetch_sub(removed as u64, Ordering::Relaxed);
            } else {
                // Parked persistent session: keep routes so queued
                // deliveries still find the owner shard.
                self.index.deregister_conn(conn.key, conn_id);
            }
        }

        if let Some(will) = will {
            let publish = Publish {
                dup: false,
                qos: will.qos,
                retain: will.retain,
                topic: will.topic,
                packet_id: None,
                payload: will.payload,
            };
            // conn_id is gone, so origin-echo suppression is a no-op here.
            self.route(&publish, conn_id, false, Some(&conn.client_id));
        }
    }

    fn send_to_conn(&mut self, conn_id: ConnId, packet: &Packet) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        if let Packet::Publish(p) = packet {
            BrokerCounters::add(&self.counters.payload_bytes_out, p.payload.len() as u64);
        }
        if conn.sender.send_packet(packet).is_err() {
            self.on_conn_closed(conn_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;
    use crate::topic::TopicFilter;
    use std::time::Duration;

    /// Minimal raw-packet client for exercising the broker without the
    /// full `Client` machinery.
    struct RawClient {
        link: LinkEnd,
    }

    impl RawClient {
        fn connect(broker: &Broker, id: &str, clean: bool) -> RawClient {
            Self::connect_full(broker, id, clean, 0, None)
        }

        fn connect_full(
            broker: &Broker,
            id: &str,
            clean: bool,
            keep_alive: u16,
            will: Option<LastWill>,
        ) -> RawClient {
            let link = broker.connect_transport().unwrap();
            link.send_packet(&Packet::Connect(Connect {
                client_id: id.to_owned(),
                clean_session: clean,
                keep_alive,
                will,
            }))
            .unwrap();
            // Generous timeout: the full workspace test run executes many
            // binaries in parallel and can starve this thread for seconds.
            match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                Packet::Connack(c) => assert_eq!(c.code, ConnectReturnCode::Accepted),
                other => panic!("expected connack, got {other:?}"),
            }
            RawClient { link }
        }

        fn subscribe(&self, filter: &str, qos: QoS) {
            self.link
                .send_packet(&Packet::Subscribe(Subscribe {
                    packet_id: 1,
                    filters: vec![(TopicFilter::new(filter).unwrap(), qos)],
                }))
                .unwrap();
            match self.recv() {
                Packet::Suback(_) => {}
                other => panic!("expected suback, got {other:?}"),
            }
        }

        fn publish(&self, topic: &str, payload: &[u8], qos: QoS, retain: bool) {
            let packet_id = if qos == QoS::AtMostOnce {
                None
            } else {
                Some(9)
            };
            self.link
                .send_packet(&Packet::Publish(Publish {
                    dup: false,
                    qos,
                    retain,
                    topic: TopicName::new(topic).unwrap(),
                    packet_id,
                    payload: Bytes::from(payload.to_vec()),
                }))
                .unwrap();
        }

        fn recv(&self) -> Packet {
            self.link
                .recv_packet_timeout(Duration::from_secs(30))
                .unwrap()
        }

        fn expect_publish(&self) -> Publish {
            loop {
                match self.recv() {
                    Packet::Publish(p) => return p,
                    Packet::Puback(_) | Packet::Pubrec(_) | Packet::Pubcomp(_) => continue,
                    other => panic!("expected publish, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn qos0_pubsub_roundtrip() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("a/b", QoS::AtMostOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("a/b", b"hi", QoS::AtMostOnce, false);
        let got = sub.expect_publish();
        assert_eq!(got.topic.as_str(), "a/b");
        assert_eq!(got.payload, Bytes::from_static(b"hi"));
        assert_eq!(got.qos, QoS::AtMostOnce);
    }

    #[test]
    fn qos1_gets_puback_and_delivery() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::AtLeastOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"x", QoS::AtLeastOnce, false);
        match publ.recv() {
            Packet::Puback(9) => {}
            other => panic!("expected puback(9), got {other:?}"),
        }
        let got = sub.expect_publish();
        assert_eq!(got.qos, QoS::AtLeastOnce);
        assert!(got.packet_id.is_some());
    }

    #[test]
    fn qos2_full_handshake_no_duplicates() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::ExactlyOnce);
        let publ = RawClient::connect(&broker, "pub", true);

        publ.publish("t", b"x", QoS::ExactlyOnce, false);
        match publ.recv() {
            Packet::Pubrec(9) => {}
            other => panic!("expected pubrec, got {other:?}"),
        }
        // Duplicate publish with the same id must not be re-routed.
        publ.publish("t", b"x", QoS::ExactlyOnce, false);
        match publ.recv() {
            Packet::Pubrec(9) => {}
            other => panic!("expected pubrec, got {other:?}"),
        }
        publ.link.send_packet(&Packet::Pubrel(9)).unwrap();
        match publ.recv() {
            Packet::Pubcomp(9) => {}
            other => panic!("expected pubcomp, got {other:?}"),
        }

        let got = sub.expect_publish();
        assert_eq!(got.qos, QoS::ExactlyOnce);
        // Complete the subscriber-side handshake.
        let id = got.packet_id.unwrap();
        sub.link.send_packet(&Packet::Pubrec(id)).unwrap();
        match sub.recv() {
            Packet::Pubrel(got_id) => assert_eq!(got_id, id),
            other => panic!("expected pubrel, got {other:?}"),
        }
        sub.link.send_packet(&Packet::Pubcomp(id)).unwrap();

        // Exactly one delivery.
        assert_eq!(broker.stats().publishes_out, 1);
    }

    #[test]
    fn qos_downgrade_to_subscription_grant() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::AtMostOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"x", QoS::AtLeastOnce, false);
        let got = sub.expect_publish();
        assert_eq!(got.qos, QoS::AtMostOnce, "delivery QoS = min(pub, sub)");
    }

    #[test]
    fn retained_message_replayed_on_subscribe() {
        let broker = Broker::start_default();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("cfg/x", b"v1", QoS::AtMostOnce, true);
        std::thread::sleep(Duration::from_millis(50));
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("cfg/#", QoS::AtMostOnce);
        let got = sub.expect_publish();
        assert!(got.retain, "retained replay sets the retain flag");
        assert_eq!(got.payload, Bytes::from_static(b"v1"));
    }

    #[test]
    fn empty_retained_clears() {
        let broker = Broker::start_default();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("cfg/x", b"v1", QoS::AtMostOnce, true);
        publ.publish("cfg/x", b"", QoS::AtMostOnce, true);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().retained_current, 0);
    }

    #[test]
    fn persistent_session_queues_while_offline() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", false);
        sub.subscribe("t", QoS::AtLeastOnce);
        drop(sub); // goes offline; session persists
        std::thread::sleep(Duration::from_millis(50));

        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"while-away", QoS::AtLeastOnce, false);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().queued_current, 1);

        // Reconnect without clean: message is replayed.
        let link = broker.connect_transport().unwrap();
        link.send_packet(&Packet::Connect(Connect {
            client_id: "sub".into(),
            clean_session: false,
            keep_alive: 0,
            will: None,
        }))
        .unwrap();
        match link.recv_packet_timeout(Duration::from_secs(2)).unwrap() {
            Packet::Connack(c) => assert!(c.session_present),
            other => panic!("expected connack, got {other:?}"),
        }
        match link.recv_packet_timeout(Duration::from_secs(2)).unwrap() {
            Packet::Publish(p) => assert_eq!(p.payload, Bytes::from_static(b"while-away")),
            other => panic!("expected publish, got {other:?}"),
        }
    }

    #[test]
    fn clean_session_discards_state() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", false);
        sub.subscribe("t", QoS::AtLeastOnce);
        drop(sub);
        std::thread::sleep(Duration::from_millis(50));

        // Reconnect with clean=true: no session, no subscriptions.
        let link = broker.connect_transport().unwrap();
        link.send_packet(&Packet::Connect(Connect {
            client_id: "sub".into(),
            clean_session: true,
            keep_alive: 0,
            will: None,
        }))
        .unwrap();
        match link.recv_packet_timeout(Duration::from_secs(2)).unwrap() {
            Packet::Connack(c) => assert!(!c.session_present),
            other => panic!("expected connack, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().subscriptions_current, 0);
    }

    #[test]
    fn last_will_published_on_ungraceful_drop() {
        let broker = Broker::start_default();
        let watcher = RawClient::connect(&broker, "watcher", true);
        watcher.subscribe("status/+", QoS::AtMostOnce);
        let doomed = RawClient::connect_full(
            &broker,
            "doomed",
            true,
            0,
            Some(LastWill {
                topic: TopicName::new("status/doomed").unwrap(),
                payload: Bytes::from_static(b"offline"),
                qos: QoS::AtMostOnce,
                retain: false,
            }),
        );
        drop(doomed); // ungraceful: no DISCONNECT sent
        let got = watcher.expect_publish();
        assert_eq!(got.topic.as_str(), "status/doomed");
        assert_eq!(got.payload, Bytes::from_static(b"offline"));
    }

    #[test]
    fn graceful_disconnect_suppresses_will() {
        let broker = Broker::start_default();
        let watcher = RawClient::connect(&broker, "watcher", true);
        watcher.subscribe("status/+", QoS::AtMostOnce);
        let polite = RawClient::connect_full(
            &broker,
            "polite",
            true,
            0,
            Some(LastWill {
                topic: TopicName::new("status/polite").unwrap(),
                payload: Bytes::from_static(b"offline"),
                qos: QoS::AtMostOnce,
                retain: false,
            }),
        );
        polite.link.send_packet(&Packet::Disconnect).unwrap();
        drop(polite);
        // No will should arrive.
        assert!(watcher
            .link
            .recv_packet_timeout(Duration::from_millis(200))
            .is_err());
    }

    #[test]
    fn kill_connection_fault_fires_will() {
        // A KillConnection rule assassinates the recipient instead of
        // delivering — the broker sees an ungraceful close and publishes
        // the victim's testament.
        let plan = FaultPlan::seeded(3).rule(
            FaultRule::kill_connection("assassin")
                .on_topic("trigger")
                .to_client("victim")
                .take(1),
        );
        let broker = Broker::start(BrokerConfig {
            fault_plan: Some(plan),
            ..BrokerConfig::default()
        });
        let watcher = RawClient::connect(&broker, "watcher", true);
        watcher.subscribe("status/+", QoS::AtMostOnce);
        let victim = RawClient::connect_full(
            &broker,
            "victim",
            true,
            0,
            Some(LastWill {
                topic: TopicName::new("status/victim").unwrap(),
                payload: Bytes::from_static(b"assassinated"),
                qos: QoS::AtMostOnce,
                retain: false,
            }),
        );
        victim.subscribe("trigger", QoS::AtMostOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("trigger", b"bang", QoS::AtMostOnce, false);
        // The trigger message is consumed, the testament arrives instead.
        let got = watcher.expect_publish();
        assert_eq!(got.topic.as_str(), "status/victim");
        assert_eq!(got.payload, Bytes::from_static(b"assassinated"));
        // The victim's link is dead and it never saw the trigger.
        let r = victim.link.recv_packet_timeout(Duration::from_millis(500));
        assert!(r.is_err(), "victim link should be severed, got {r:?}");
        assert_eq!(broker.fault_hits(), vec![("assassin".to_owned(), 1)]);
    }

    #[test]
    fn session_takeover_disconnects_old() {
        let broker = Broker::start_default();
        let first = RawClient::connect(&broker, "dup", true);
        let _second = RawClient::connect(&broker, "dup", true);
        std::thread::sleep(Duration::from_millis(50));
        // The first connection's link is now closed by the broker.
        assert_eq!(broker.stats().connections_current, 1);
        // Receiving on the first link eventually errors (channel closed).
        let r = first.link.recv_packet_timeout(Duration::from_millis(200));
        assert!(r.is_err());
    }

    #[test]
    fn keepalive_expiry_drops_connection() {
        // Keep-alive checks are deadline-driven (no tick): the shard
        // sleeps until exactly keep_alive * grace and expires then.
        let broker = Broker::start_default();
        let _quiet = RawClient::connect_full(&broker, "quiet", true, 1, None);
        // 1s keepalive * 1.5 grace = 1.5s until expiry.
        std::thread::sleep(Duration::from_millis(1700));
        assert_eq!(broker.stats().connections_current, 0);
        assert_eq!(broker.stats().keepalive_timeouts, 1);
    }

    #[test]
    fn pingreq_keeps_connection_alive() {
        let broker = Broker::start_default();
        let client = RawClient::connect_full(&broker, "alive", true, 1, None);
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(500));
            client.link.send_packet(&Packet::Pingreq).unwrap();
            match client.recv() {
                Packet::Pingresp => {}
                other => panic!("expected pingresp, got {other:?}"),
            }
        }
        assert_eq!(broker.stats().connections_current, 1);
    }

    #[test]
    fn fanout_to_many_subscribers() {
        let broker = Broker::start_default();
        let subs: Vec<RawClient> = (0..10)
            .map(|i| {
                let c = RawClient::connect(&broker, &format!("sub{i}"), true);
                c.subscribe("fan/+", QoS::AtMostOnce);
                c
            })
            .collect();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("fan/1", b"data", QoS::AtMostOnce, false);
        for sub in &subs {
            assert_eq!(sub.expect_publish().payload, Bytes::from_static(b"data"));
        }
        let stats = broker.stats();
        assert_eq!(stats.publishes_in, 1);
        assert_eq!(stats.publishes_out, 10);
        assert!((stats.fanout_ratio() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn publish_before_connect_drops_connection() {
        let broker = Broker::start_default();
        let link = broker.connect_transport().unwrap();
        link.send_packet(&Packet::Publish(Publish::simple(
            TopicName::new("t").unwrap(),
            b"x".to_vec(),
        )))
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().connections_current, 0);
    }

    #[test]
    fn second_connect_drops_connection() {
        let broker = Broker::start_default();
        let client = RawClient::connect(&broker, "twice", true);
        client
            .link
            .send_packet(&Packet::Connect(Connect {
                client_id: "twice".into(),
                clean_session: true,
                keep_alive: 0,
                will: None,
            }))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().connections_current, 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::AtMostOnce);
        sub.link
            .send_packet(&Packet::Unsubscribe(Unsubscribe {
                packet_id: 2,
                filters: vec![TopicFilter::new("t").unwrap()],
            }))
            .unwrap();
        match sub.recv() {
            Packet::Unsuback(2) => {}
            other => panic!("expected unsuback, got {other:?}"),
        }
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"x", QoS::AtMostOnce, false);
        assert!(sub
            .link
            .recv_packet_timeout(Duration::from_millis(200))
            .is_err());
    }

    // ------------------------------------------------------------------
    // Sharded-core tests
    // ------------------------------------------------------------------

    fn sharded(shards: usize) -> Broker {
        Broker::start(BrokerConfig {
            name: format!("sharded{shards}"),
            shards,
            ..BrokerConfig::default()
        })
    }

    #[test]
    fn sharded_fanout_reaches_every_shard() {
        let broker = sharded(4);
        assert_eq!(broker.shards(), 4);
        let subs: Vec<RawClient> = (0..16)
            .map(|i| {
                let c = RawClient::connect(&broker, &format!("s{i:02}"), true);
                c.subscribe("fan/#", QoS::AtMostOnce);
                c
            })
            .collect();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("fan/x", b"blast", QoS::AtMostOnce, false);
        for sub in &subs {
            assert_eq!(sub.expect_publish().payload, Bytes::from_static(b"blast"));
        }
        assert_eq!(broker.stats().publishes_out, 16);
    }

    #[test]
    fn sharded_qos1_crosses_shards_with_session_ids() {
        let broker = sharded(4);
        // 16 ids cover all 4 shards with overwhelming probability.
        let subs: Vec<RawClient> = (0..16)
            .map(|i| {
                let c = RawClient::connect(&broker, &format!("q{i:02}"), true);
                c.subscribe("t", QoS::AtLeastOnce);
                c
            })
            .collect();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"ack-me", QoS::AtLeastOnce, false);
        for sub in &subs {
            let p = sub.expect_publish();
            assert_eq!(p.qos, QoS::AtLeastOnce);
            let id = p.packet_id.expect("QoS1 delivery carries a packet id");
            sub.link.send_packet(&Packet::Puback(id)).unwrap();
        }
        // The publisher's shard routed; other shards' sessions were
        // reached via mailbox hops.
        assert!(
            broker.stats().cross_shard_hops > 0,
            "expected cross-shard hops"
        );
    }

    #[test]
    fn sharded_persistent_queue_and_replay() {
        let broker = sharded(4);
        let sub = RawClient::connect(&broker, "parked", false);
        sub.subscribe("t", QoS::AtLeastOnce);
        drop(sub);
        std::thread::sleep(Duration::from_millis(50));
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"held", QoS::AtLeastOnce, false);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(broker.stats().queued_current, 1);
        let sub = RawClient::connect(&broker, "parked", false);
        let got = sub.expect_publish();
        assert_eq!(got.payload, Bytes::from_static(b"held"));
    }

    #[test]
    fn fanout_order_is_sorted_by_client_id() {
        // A take(1) drop rule consumes exactly the FIRST delivery of the
        // fan-out. With sorted fan-out the victim is always the
        // lexicographically smallest subscriber, run after run —
        // previously HashMap iteration order picked a random victim.
        for _ in 0..3 {
            let plan = FaultPlan::seeded(7).rule(FaultRule::drop_matching("first").take(1));
            let broker = Broker::start(BrokerConfig {
                fault_plan: Some(plan),
                ..BrokerConfig::default()
            });
            // Connect in non-sorted order to rule out join-order effects.
            let names = ["m2", "m0", "m1"];
            let subs: Vec<RawClient> = names
                .iter()
                .map(|n| {
                    let c = RawClient::connect(&broker, n, true);
                    c.subscribe("t", QoS::AtMostOnce);
                    c
                })
                .collect();
            let publ = RawClient::connect(&broker, "pub", true);
            publ.publish("t", b"x", QoS::AtMostOnce, false);
            // m0 (sorted-first) is always the victim; m1 and m2 receive.
            assert_eq!(subs[2].expect_publish().payload, Bytes::from_static(b"x")); // m1
            assert_eq!(subs[0].expect_publish().payload, Bytes::from_static(b"x")); // m2
            assert!(
                subs[1] // m0
                    .link
                    .recv_packet_timeout(Duration::from_millis(150))
                    .is_err(),
                "sorted-first subscriber m0 must be the dropped one"
            );
        }
    }

    #[test]
    fn qos0_fanout_shares_one_encoded_frame() {
        // Encode-once: all QoS0 subscribers of one publish receive the
        // exact same frame bytes (shared `Bytes`), and payload counters
        // reflect every delivery.
        let broker = Broker::start_default();
        let subs: Vec<RawClient> = (0..5)
            .map(|i| {
                let c = RawClient::connect(&broker, &format!("e{i}"), true);
                c.subscribe("enc", QoS::AtMostOnce);
                c
            })
            .collect();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("enc", b"shared-bytes", QoS::AtMostOnce, false);
        let frames: Vec<Bytes> = subs
            .iter()
            .map(|s| {
                s.link
                    .recv_frame_timeout(Duration::from_secs(5))
                    .expect("frame")
            })
            .collect();
        for f in &frames[1..] {
            assert_eq!(&f[..], &frames[0][..]);
            // The shim's Bytes shares one allocation across clones.
            assert_eq!(f.as_ptr(), frames[0].as_ptr(), "frame allocation is shared");
        }
        assert_eq!(
            broker.stats().payload_bytes_out,
            5 * b"shared-bytes".len() as u64
        );
    }
}
