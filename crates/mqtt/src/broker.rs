//! The embedded MQTT broker.
//!
//! Architecture: one event-loop thread owns *all* broker state (sessions,
//! subscription trie, retained store) and consumes a single MPSC event
//! channel. Each accepted connection gets a lightweight reader thread that
//! decodes frames off its link and forwards them as events. This is the
//! message-passing design the concurrency guides recommend: no shared
//! mutable state, no lock ordering, and the loop is trivially deterministic
//! with respect to its event order.
//!
//! Bridge connections (client ids beginning with [`BRIDGE_PREFIX`]) receive
//! special treatment: messages they publish are never echoed back to them,
//! which is the loop-prevention rule that makes acyclic broker bridging safe
//! (see [`crate::bridge`]).

use crate::codec;
use crate::error::{ConnectReturnCode, MqttError, Result};
use crate::fault::{FaultPlan, FaultState, FaultVerdict, PendingDelivery};
use crate::packet::*;
use crate::retained::RetainedStore;
use crate::session::{InflightOut, QueuedMessage, Session};
use crate::stats::{BrokerCounters, BrokerStatsSnapshot};
use crate::topic::TopicName;
use crate::transport::{link, FrameSender, LinkEnd};
use crate::trie::SubscriptionTrie;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client-id prefix identifying bridge connections.
pub const BRIDGE_PREFIX: &str = "$bridge/";

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Human-readable broker name (used in traces and bridge ids).
    pub name: String,
    /// Cap on per-session offline message queues.
    pub max_queued_per_session: usize,
    /// Keep-alive grace multiplier (spec says 1.5).
    pub keepalive_grace: f64,
    /// How often the loop checks keep-alive expiry.
    pub tick_interval: Duration,
    /// Optional fault-injection plan applied to every delivery (chaos
    /// testing; see [`crate::fault`]). `None` delivers everything.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            name: "broker".to_owned(),
            max_queued_per_session: 1024,
            keepalive_grace: 1.5,
            tick_interval: Duration::from_millis(100),
            fault_plan: None,
        }
    }
}

/// Unique id of one transport connection.
pub type ConnId = u64;

enum Event {
    NewConnection(LinkEnd),
    Incoming(ConnId, Packet),
    ConnClosed(ConnId),
    Tick,
    /// Replay a delivery the fault layer deferred (delayed message).
    Inject(PendingDelivery),
    /// Release the deliveries a `Hold` fault rule buffered.
    ReleaseHeld(String),
    Shutdown,
}

/// A running broker. Dropping the handle shuts the broker down.
pub struct Broker {
    tx: Sender<Event>,
    counters: Arc<BrokerCounters>,
    name: String,
    loop_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker").field("name", &self.name).finish()
    }
}

impl Broker {
    /// Starts a broker with the default configuration.
    pub fn start_default() -> Broker {
        Broker::start(BrokerConfig::default())
    }

    /// Starts a broker thread with the given configuration.
    pub fn start(config: BrokerConfig) -> Broker {
        let (tx, rx) = unbounded();
        let counters = Arc::new(BrokerCounters::default());
        let name = config.name.clone();

        // Ticker thread: drives keep-alive expiry. Exits when the loop drops
        // its receiver.
        let tick_tx = tx.clone();
        let tick_interval = config.tick_interval;
        std::thread::Builder::new()
            .name(format!("{name}-ticker"))
            .spawn(move || {
                while tick_tx.send(Event::Tick).is_ok() {
                    std::thread::sleep(tick_interval);
                }
            })
            .expect("spawn ticker");

        let loop_counters = Arc::clone(&counters);
        let loop_tx = tx.clone();
        let loop_handle = std::thread::Builder::new()
            .name(format!("{name}-loop"))
            .spawn(move || {
                let mut core = BrokerCore::new(config, loop_counters, loop_tx);
                core.run(rx);
            })
            .expect("spawn broker loop");

        Broker {
            tx,
            counters,
            name,
            loop_handle: Some(loop_handle),
        }
    }

    /// The broker's configured name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Opens a new transport connection to this broker and returns the
    /// client-side link end. The caller then speaks MQTT over it (or hands
    /// it to [`crate::client::Client`]).
    pub fn connect_transport(&self) -> Result<LinkEnd> {
        let (client_end, broker_end) = link();
        self.tx
            .send(Event::NewConnection(broker_end))
            .map_err(|_| MqttError::BrokerUnavailable)?;
        Ok(client_end)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> BrokerStatsSnapshot {
        self.counters.snapshot()
    }

    /// Releases every delivery buffered by the `Hold` fault rule with
    /// `label` (see [`crate::fault::FaultAction::Hold`]). A no-op when no
    /// such rule exists or nothing is held.
    pub fn release_held(&self, label: &str) {
        let _ = self.tx.send(Event::ReleaseHeld(label.to_owned()));
    }

    /// Per-fault-rule hit counts, labelled. Empty without a fault plan.
    pub fn fault_hits(&self) -> Vec<(String, u64)> {
        self.counters.fault_hits()
    }

    /// Requests shutdown and waits for the loop thread to finish.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Event::Shutdown);
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        let _ = self.tx.send(Event::Shutdown);
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
    }
}

struct ConnState {
    link: FrameSender,
    client_id: Option<String>,
    is_bridge: bool,
    keep_alive: u16,
    last_activity: Instant,
    will: Option<LastWill>,
    graceful: bool,
}

struct BrokerCore {
    config: BrokerConfig,
    counters: Arc<BrokerCounters>,
    event_tx: Sender<Event>,
    next_conn_id: ConnId,
    conns: HashMap<ConnId, ConnState>,
    /// client id → live connection.
    by_client: HashMap<String, ConnId>,
    /// client id → session (present for connected and parked sessions).
    sessions: HashMap<String, Session>,
    /// Subscriptions keyed by client id; payload is the granted QoS.
    trie: SubscriptionTrie<String, QoS>,
    retained: RetainedStore,
    /// Fault-injection engine, present when the config carries a plan.
    faults: Option<FaultState>,
}

impl BrokerCore {
    fn new(config: BrokerConfig, counters: Arc<BrokerCounters>, event_tx: Sender<Event>) -> Self {
        let faults = config.fault_plan.as_ref().map(FaultState::new);
        if let Some(state) = &faults {
            for (label, hits) in state.labels() {
                counters.register_fault_rule(label, hits);
            }
        }
        BrokerCore {
            config,
            counters,
            event_tx,
            next_conn_id: 1,
            conns: HashMap::new(),
            by_client: HashMap::new(),
            sessions: HashMap::new(),
            trie: SubscriptionTrie::new(),
            retained: RetainedStore::new(),
            faults,
        }
    }

    fn run(&mut self, rx: Receiver<Event>) {
        while let Ok(event) = rx.recv() {
            match event {
                Event::NewConnection(end) => self.on_new_connection(end),
                Event::Incoming(conn, packet) => self.on_packet(conn, packet),
                Event::ConnClosed(conn) => self.on_conn_closed(conn),
                Event::Tick => self.on_tick(),
                Event::Inject(d) => self.deliver_raw(d.client, d.topic, d.payload, d.qos, d.retain),
                Event::ReleaseHeld(label) => {
                    let released = match &mut self.faults {
                        Some(state) => state.release(&label),
                        None => Vec::new(),
                    };
                    for d in released {
                        self.deliver_raw(d.client, d.topic, d.payload, d.qos, d.retain);
                    }
                }
                Event::Shutdown => break,
            }
        }
        // Close every link so clients observe disconnection.
        self.conns.clear();
    }

    fn on_new_connection(&mut self, end: LinkEnd) {
        let conn_id = self.next_conn_id;
        self.next_conn_id += 1;
        let (sender_half, reader_end) = end.split();
        let event_tx = self.event_tx.clone();
        std::thread::Builder::new()
            .name(format!("{}-reader-{conn_id}", self.config.name))
            .spawn(move || {
                loop {
                    match reader_end.recv_frame() {
                        Ok(frame) => {
                            let mut rest: Bytes = frame;
                            // A frame may carry several back-to-back packets.
                            loop {
                                match codec::decode(&rest) {
                                    Ok((packet, used)) => {
                                        if event_tx.send(Event::Incoming(conn_id, packet)).is_err()
                                        {
                                            return;
                                        }
                                        if used >= rest.len() {
                                            break;
                                        }
                                        rest = rest.slice(used..);
                                    }
                                    Err(_) => {
                                        let _ = event_tx.send(Event::ConnClosed(conn_id));
                                        return;
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            let _ = event_tx.send(Event::ConnClosed(conn_id));
                            return;
                        }
                    }
                }
            })
            .expect("spawn reader");
        self.conns.insert(
            conn_id,
            ConnState {
                link: sender_half,
                client_id: None,
                is_bridge: false,
                keep_alive: 0,
                last_activity: Instant::now(),
                will: None,
                graceful: false,
            },
        );
        BrokerCounters::bump(&self.counters.connections_total);
        BrokerCounters::bump(&self.counters.connections_current);
    }

    fn on_packet(&mut self, conn_id: ConnId, packet: Packet) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // already closed
        };
        conn.last_activity = Instant::now();
        match packet {
            Packet::Connect(c) => self.on_connect(conn_id, c),
            Packet::Publish(p) => self.on_publish(conn_id, p),
            Packet::Puback(id) => self.on_puback(conn_id, id),
            Packet::Pubrec(id) => self.on_pubrec(conn_id, id),
            Packet::Pubrel(id) => self.on_pubrel(conn_id, id),
            Packet::Pubcomp(id) => self.on_pubcomp(conn_id, id),
            Packet::Subscribe(s) => self.on_subscribe(conn_id, s),
            Packet::Unsubscribe(u) => self.on_unsubscribe(conn_id, u),
            Packet::Pingreq => {
                self.send_to_conn(conn_id, &Packet::Pingresp);
            }
            Packet::Disconnect => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.graceful = true;
                    conn.will = None;
                }
                self.on_conn_closed(conn_id);
            }
            // Server-to-client packets arriving at the broker are protocol
            // violations; drop the connection.
            Packet::Connack(_) | Packet::Suback(_) | Packet::Unsuback(_) | Packet::Pingresp => {
                self.on_conn_closed(conn_id);
            }
        }
    }

    fn on_connect(&mut self, conn_id: ConnId, c: Connect) {
        if c.client_id.is_empty() {
            self.send_to_conn(
                conn_id,
                &Packet::Connack(Connack {
                    session_present: false,
                    code: ConnectReturnCode::IdentifierRejected,
                }),
            );
            self.on_conn_closed(conn_id);
            return;
        }

        // Session takeover: disconnect any live connection with this id.
        if let Some(&old) = self.by_client.get(&c.client_id) {
            if old != conn_id {
                self.on_conn_closed(old);
            }
        }

        let session_present = if c.clean_session {
            // Fresh session: purge stored state and subscriptions.
            if self.sessions.remove(&c.client_id).is_some() {
                self.counters
                    .sessions_current
                    .fetch_sub(1, Ordering::Relaxed);
            }
            let removed = self.trie.unsubscribe_all(&c.client_id);
            self.counters
                .subscriptions_current
                .fetch_sub(removed as u64, Ordering::Relaxed);
            false
        } else {
            self.sessions.contains_key(&c.client_id)
        };

        if !self.sessions.contains_key(&c.client_id) {
            self.sessions.insert(
                c.client_id.clone(),
                Session::new(
                    c.client_id.clone(),
                    c.clean_session,
                    self.config.max_queued_per_session,
                ),
            );
            BrokerCounters::bump(&self.counters.sessions_current);
        } else if let Some(s) = self.sessions.get_mut(&c.client_id) {
            s.clean = c.clean_session;
        }

        let is_bridge = c.client_id.starts_with(BRIDGE_PREFIX);
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.client_id = Some(c.client_id.clone());
            conn.is_bridge = is_bridge;
            conn.keep_alive = c.keep_alive;
            conn.will = c.will;
        }
        self.by_client.insert(c.client_id.clone(), conn_id);

        self.send_to_conn(
            conn_id,
            &Packet::Connack(Connack {
                session_present,
                code: ConnectReturnCode::Accepted,
            }),
        );

        // Replay: queued offline messages, then unacknowledged inflight.
        if session_present {
            self.replay_session(conn_id, &c.client_id);
        }
    }

    fn replay_session(&mut self, conn_id: ConnId, client_id: &str) {
        let Some(session) = self.sessions.get_mut(client_id) else {
            return;
        };
        let queued = session.drain_queued();
        let inflight = session.take_inflight();
        self.counters
            .queued_current
            .fetch_sub(queued.len() as u64, Ordering::Relaxed);
        for msg in queued {
            // Straight to deliver_raw: these messages already passed the
            // fault plan when they were routed (and queued); evaluating
            // them again would double-apply rules and skew hit windows.
            self.deliver_raw(client_id.to_owned(), msg.topic, msg.payload, msg.qos, false);
        }
        for (_, inflight_msg) in inflight {
            // Retransmit with a fresh id and DUP=1.
            let Some(session) = self.sessions.get_mut(client_id) else {
                return;
            };
            let id = session.alloc_packet_id();
            session.inflight_out.insert(
                id,
                InflightOut {
                    topic: inflight_msg.topic.clone(),
                    payload: inflight_msg.payload.clone(),
                    qos: inflight_msg.qos,
                    retain: inflight_msg.retain,
                    released: false,
                },
            );
            // Count before sending: once a receiver observes the frame,
            // the counter must already reflect it.
            BrokerCounters::bump(&self.counters.publishes_out);
            self.send_to_conn(
                conn_id,
                &Packet::Publish(Publish {
                    dup: true,
                    qos: inflight_msg.qos,
                    retain: inflight_msg.retain,
                    topic: inflight_msg.topic,
                    packet_id: Some(id),
                    payload: inflight_msg.payload,
                }),
            );
        }
    }

    fn on_publish(&mut self, conn_id: ConnId, p: Publish) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        if conn.client_id.is_none() {
            // PUBLISH before CONNECT: protocol violation.
            self.on_conn_closed(conn_id);
            return;
        }
        let client_id = conn.client_id.clone().unwrap();
        let is_bridge = conn.is_bridge;

        BrokerCounters::bump(&self.counters.publishes_in);
        BrokerCounters::add(&self.counters.payload_bytes_in, p.payload.len() as u64);
        if is_bridge {
            BrokerCounters::bump(&self.counters.bridge_in);
        }

        match p.qos {
            QoS::AtMostOnce => self.route(&p, conn_id, is_bridge, Some(&client_id)),
            QoS::AtLeastOnce => {
                let id = p.packet_id.unwrap_or(0);
                self.route(&p, conn_id, is_bridge, Some(&client_id));
                self.send_to_conn(conn_id, &Packet::Puback(id));
            }
            QoS::ExactlyOnce => {
                let id = p.packet_id.unwrap_or(0);
                let fresh = self
                    .sessions
                    .get_mut(&client_id)
                    .map(|s| s.inbound_qos2.insert(id))
                    .unwrap_or(true);
                if fresh {
                    // Method A: route on first receipt, dedupe duplicates.
                    self.route(&p, conn_id, is_bridge, Some(&client_id));
                }
                self.send_to_conn(conn_id, &Packet::Pubrec(id));
            }
        }
    }

    /// Routes a publish to every matching subscriber and updates the
    /// retained store. `origin_client` is the publishing client's id (used
    /// by fault-rule matching), `None` for broker-internal replays.
    fn route(
        &mut self,
        p: &Publish,
        origin: ConnId,
        origin_is_bridge: bool,
        origin_client: Option<&str>,
    ) {
        if p.retain {
            let had = self.retained.len();
            self.retained.apply(p);
            let now = self.retained.len();
            match now.cmp(&had) {
                std::cmp::Ordering::Greater => {
                    BrokerCounters::bump(&self.counters.retained_current);
                }
                std::cmp::Ordering::Less => {
                    self.counters
                        .retained_current
                        .fetch_sub(1, Ordering::Relaxed);
                }
                std::cmp::Ordering::Equal => {}
            }
        }

        // Dedupe overlapping subscriptions per client, keeping max QoS.
        let mut targets: HashMap<String, QoS> = HashMap::new();
        for (client, granted) in self.trie.matches(&p.topic) {
            targets
                .entry(client.clone())
                .and_modify(|q| *q = (*q).max(*granted))
                .or_insert(*granted);
        }

        for (client, granted) in targets {
            // Loop prevention: never echo a bridge's own message back.
            if origin_is_bridge {
                if let Some(&target_conn) = self.by_client.get(&client) {
                    if target_conn == origin {
                        continue;
                    }
                }
            }
            let qos = p.qos.min(granted);
            // Forwarded messages carry retain=0 for established subs, with
            // one exception: bridge connections keep the flag so retained
            // state propagates across brokers (mosquitto behaves the same).
            let retain_out = p.retain && client.starts_with(BRIDGE_PREFIX);
            self.deliver(
                client,
                p.topic.clone(),
                p.payload.clone(),
                qos,
                retain_out,
                origin_client,
            );
        }
    }

    /// Delivers one message to one client, first consulting the fault
    /// plan (if any): a matching rule may drop, corrupt, duplicate,
    /// reorder, hold, or delay the delivery. Deliveries the fault layer
    /// re-injects go straight to [`BrokerCore::deliver_raw`] so rules
    /// cannot cascade on their own output.
    fn deliver(
        &mut self,
        client: String,
        topic: TopicName,
        payload: Bytes,
        qos: QoS,
        retain: bool,
        origin: Option<&str>,
    ) {
        let Some(faults) = self.faults.as_mut() else {
            self.deliver_raw(client, topic, payload, qos, retain);
            return;
        };
        match faults.evaluate(&client, &topic, &payload, qos, retain, origin) {
            FaultVerdict::Deliver {
                payload,
                duplicate,
                release,
            } => {
                self.deliver_raw(client.clone(), topic.clone(), payload.clone(), qos, retain);
                if duplicate {
                    self.deliver_raw(client, topic, payload, qos, retain);
                }
                for d in release {
                    self.deliver_raw(d.client, d.topic, d.payload, d.qos, d.retain);
                }
            }
            FaultVerdict::Consumed => {}
            FaultVerdict::Delayed { delivery, delay } => {
                let tx = self.event_tx.clone();
                std::thread::Builder::new()
                    .name(format!("{}-fault-delay", self.config.name))
                    .spawn(move || {
                        std::thread::sleep(delay);
                        let _ = tx.send(Event::Inject(delivery));
                    })
                    .expect("spawn fault delay timer");
            }
        }
    }

    /// Delivers one message to one client (live) or queues it (parked
    /// persistent session).
    fn deliver_raw(
        &mut self,
        client: String,
        topic: TopicName,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) {
        match self.by_client.get(&client) {
            Some(&conn_id) if self.conns.contains_key(&conn_id) => {
                let packet_id = if qos == QoS::AtMostOnce {
                    None
                } else {
                    let Some(session) = self.sessions.get_mut(&client) else {
                        return;
                    };
                    let id = session.alloc_packet_id();
                    session.inflight_out.insert(
                        id,
                        InflightOut {
                            topic: topic.clone(),
                            payload: payload.clone(),
                            qos,
                            retain,
                            released: false,
                        },
                    );
                    Some(id)
                };
                // Count before sending: once a receiver observes the
                // frame, the counter must already reflect it.
                BrokerCounters::bump(&self.counters.publishes_out);
                self.send_to_conn(
                    conn_id,
                    &Packet::Publish(Publish {
                        dup: false,
                        qos,
                        retain,
                        topic,
                        packet_id,
                        payload,
                    }),
                );
            }
            _ => {
                // Parked session: queue QoS>0; drop QoS 0 per spec latitude.
                let Some(session) = self.sessions.get_mut(&client) else {
                    BrokerCounters::bump(&self.counters.dropped);
                    return;
                };
                if qos == QoS::AtMostOnce || session.clean {
                    BrokerCounters::bump(&self.counters.dropped);
                } else {
                    let intact = session.queue_message(QueuedMessage {
                        topic,
                        payload,
                        qos,
                    });
                    BrokerCounters::bump(&self.counters.queued_current);
                    if !intact {
                        BrokerCounters::bump(&self.counters.dropped);
                        self.counters.queued_current.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn session_of_conn(&mut self, conn_id: ConnId) -> Option<&mut Session> {
        let client = self.conns.get(&conn_id)?.client_id.clone()?;
        self.sessions.get_mut(&client)
    }

    fn on_puback(&mut self, conn_id: ConnId, id: PacketId) {
        if let Some(session) = self.session_of_conn(conn_id) {
            session.inflight_out.remove(&id);
        }
    }

    fn on_pubrec(&mut self, conn_id: ConnId, id: PacketId) {
        if let Some(session) = self.session_of_conn(conn_id) {
            if let Some(inflight) = session.inflight_out.get_mut(&id) {
                inflight.released = true;
            }
        }
        self.send_to_conn(conn_id, &Packet::Pubrel(id));
    }

    fn on_pubrel(&mut self, conn_id: ConnId, id: PacketId) {
        if let Some(session) = self.session_of_conn(conn_id) {
            session.inbound_qos2.remove(&id);
        }
        self.send_to_conn(conn_id, &Packet::Pubcomp(id));
    }

    fn on_pubcomp(&mut self, conn_id: ConnId, id: PacketId) {
        if let Some(session) = self.session_of_conn(conn_id) {
            session.inflight_out.remove(&id);
        }
    }

    fn on_subscribe(&mut self, conn_id: ConnId, s: Subscribe) {
        let Some(client_id) = self.conns.get(&conn_id).and_then(|c| c.client_id.clone()) else {
            self.on_conn_closed(conn_id);
            return;
        };
        let mut codes = Vec::with_capacity(s.filters.len());
        let mut replays: Vec<(TopicName, Bytes, QoS)> = Vec::new();
        for (filter, requested) in &s.filters {
            // The embedded broker grants every valid filter at the
            // requested QoS (codec already validated syntax).
            let granted = *requested;
            let new = self.trie.subscribe(filter, client_id.clone(), granted);
            if new {
                BrokerCounters::bump(&self.counters.subscriptions_current);
            }
            if let Some(session) = self.sessions.get_mut(&client_id) {
                session.subscriptions.insert(filter.clone(), granted);
            }
            codes.push(SubackCode::Granted(granted));
            for (topic, retained) in self.retained.matching(filter) {
                replays.push((topic, retained.payload, retained.qos.min(granted)));
            }
        }
        self.send_to_conn(
            conn_id,
            &Packet::Suback(Suback {
                packet_id: s.packet_id,
                return_codes: codes,
            }),
        );
        for (topic, payload, qos) in replays {
            // Retained replays carry retain=1.
            self.deliver(client_id.clone(), topic, payload, qos, true, None);
        }
    }

    fn on_unsubscribe(&mut self, conn_id: ConnId, u: Unsubscribe) {
        let Some(client_id) = self.conns.get(&conn_id).and_then(|c| c.client_id.clone()) else {
            self.on_conn_closed(conn_id);
            return;
        };
        for filter in &u.filters {
            if self.trie.unsubscribe(filter, &client_id) {
                self.counters
                    .subscriptions_current
                    .fetch_sub(1, Ordering::Relaxed);
            }
            if let Some(session) = self.sessions.get_mut(&client_id) {
                session.subscriptions.remove(filter);
            }
        }
        self.send_to_conn(conn_id, &Packet::Unsuback(u.packet_id));
    }

    fn on_conn_closed(&mut self, conn_id: ConnId) {
        let Some(conn) = self.conns.remove(&conn_id) else {
            return;
        };
        self.counters
            .connections_current
            .fetch_sub(1, Ordering::Relaxed);

        let will = if conn.graceful {
            None
        } else {
            conn.will.clone()
        };
        let origin_client = conn.client_id.clone();

        if let Some(client_id) = conn.client_id {
            if self.by_client.get(&client_id) == Some(&conn_id) {
                self.by_client.remove(&client_id);
            }
            let clean = self
                .sessions
                .get(&client_id)
                .map(|s| s.clean)
                .unwrap_or(true);
            if clean {
                if self.sessions.remove(&client_id).is_some() {
                    self.counters
                        .sessions_current
                        .fetch_sub(1, Ordering::Relaxed);
                }
                let removed = self.trie.unsubscribe_all(&client_id);
                self.counters
                    .subscriptions_current
                    .fetch_sub(removed as u64, Ordering::Relaxed);
            }
        }

        if let Some(will) = will {
            let publish = Publish {
                dup: false,
                qos: will.qos,
                retain: will.retain,
                topic: will.topic,
                packet_id: None,
                payload: will.payload,
            };
            // conn_id is gone, so origin-echo suppression is a no-op here.
            self.route(&publish, conn_id, false, origin_client.as_deref());
        }
    }

    fn on_tick(&mut self) {
        if self.conns.is_empty() {
            return;
        }
        let grace = self.config.keepalive_grace;
        let expired: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.keep_alive > 0
                    && c.last_activity.elapsed()
                        > Duration::from_secs_f64(c.keep_alive as f64 * grace)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            BrokerCounters::bump(&self.counters.keepalive_timeouts);
            self.on_conn_closed(id);
        }
    }

    fn send_to_conn(&mut self, conn_id: ConnId, packet: &Packet) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        if let Packet::Publish(p) = packet {
            BrokerCounters::add(&self.counters.payload_bytes_out, p.payload.len() as u64);
        }
        if conn.link.send_packet(packet).is_err() {
            self.on_conn_closed(conn_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicFilter;
    use std::time::Duration;

    /// Minimal raw-packet client for exercising the broker without the
    /// full `Client` machinery.
    struct RawClient {
        link: LinkEnd,
    }

    impl RawClient {
        fn connect(broker: &Broker, id: &str, clean: bool) -> RawClient {
            Self::connect_full(broker, id, clean, 0, None)
        }

        fn connect_full(
            broker: &Broker,
            id: &str,
            clean: bool,
            keep_alive: u16,
            will: Option<LastWill>,
        ) -> RawClient {
            let link = broker.connect_transport().unwrap();
            link.send_packet(&Packet::Connect(Connect {
                client_id: id.to_owned(),
                clean_session: clean,
                keep_alive,
                will,
            }))
            .unwrap();
            // Generous timeout: the full workspace test run executes many
            // binaries in parallel and can starve this thread for seconds.
            match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                Packet::Connack(c) => assert_eq!(c.code, ConnectReturnCode::Accepted),
                other => panic!("expected connack, got {other:?}"),
            }
            RawClient { link }
        }

        fn subscribe(&self, filter: &str, qos: QoS) {
            self.link
                .send_packet(&Packet::Subscribe(Subscribe {
                    packet_id: 1,
                    filters: vec![(TopicFilter::new(filter).unwrap(), qos)],
                }))
                .unwrap();
            match self.recv() {
                Packet::Suback(_) => {}
                other => panic!("expected suback, got {other:?}"),
            }
        }

        fn publish(&self, topic: &str, payload: &[u8], qos: QoS, retain: bool) {
            let packet_id = if qos == QoS::AtMostOnce {
                None
            } else {
                Some(9)
            };
            self.link
                .send_packet(&Packet::Publish(Publish {
                    dup: false,
                    qos,
                    retain,
                    topic: TopicName::new(topic).unwrap(),
                    packet_id,
                    payload: Bytes::from(payload.to_vec()),
                }))
                .unwrap();
        }

        fn recv(&self) -> Packet {
            self.link
                .recv_packet_timeout(Duration::from_secs(30))
                .unwrap()
        }

        fn expect_publish(&self) -> Publish {
            loop {
                match self.recv() {
                    Packet::Publish(p) => return p,
                    Packet::Puback(_) | Packet::Pubrec(_) | Packet::Pubcomp(_) => continue,
                    other => panic!("expected publish, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn qos0_pubsub_roundtrip() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("a/b", QoS::AtMostOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("a/b", b"hi", QoS::AtMostOnce, false);
        let got = sub.expect_publish();
        assert_eq!(got.topic.as_str(), "a/b");
        assert_eq!(got.payload, Bytes::from_static(b"hi"));
        assert_eq!(got.qos, QoS::AtMostOnce);
    }

    #[test]
    fn qos1_gets_puback_and_delivery() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::AtLeastOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"x", QoS::AtLeastOnce, false);
        match publ.recv() {
            Packet::Puback(9) => {}
            other => panic!("expected puback(9), got {other:?}"),
        }
        let got = sub.expect_publish();
        assert_eq!(got.qos, QoS::AtLeastOnce);
        assert!(got.packet_id.is_some());
    }

    #[test]
    fn qos2_full_handshake_no_duplicates() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::ExactlyOnce);
        let publ = RawClient::connect(&broker, "pub", true);

        publ.publish("t", b"x", QoS::ExactlyOnce, false);
        match publ.recv() {
            Packet::Pubrec(9) => {}
            other => panic!("expected pubrec, got {other:?}"),
        }
        // Duplicate publish with the same id must not be re-routed.
        publ.publish("t", b"x", QoS::ExactlyOnce, false);
        match publ.recv() {
            Packet::Pubrec(9) => {}
            other => panic!("expected pubrec, got {other:?}"),
        }
        publ.link.send_packet(&Packet::Pubrel(9)).unwrap();
        match publ.recv() {
            Packet::Pubcomp(9) => {}
            other => panic!("expected pubcomp, got {other:?}"),
        }

        let got = sub.expect_publish();
        assert_eq!(got.qos, QoS::ExactlyOnce);
        // Complete the subscriber-side handshake.
        let id = got.packet_id.unwrap();
        sub.link.send_packet(&Packet::Pubrec(id)).unwrap();
        match sub.recv() {
            Packet::Pubrel(got_id) => assert_eq!(got_id, id),
            other => panic!("expected pubrel, got {other:?}"),
        }
        sub.link.send_packet(&Packet::Pubcomp(id)).unwrap();

        // Exactly one delivery.
        assert_eq!(broker.stats().publishes_out, 1);
    }

    #[test]
    fn qos_downgrade_to_subscription_grant() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::AtMostOnce);
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"x", QoS::AtLeastOnce, false);
        let got = sub.expect_publish();
        assert_eq!(got.qos, QoS::AtMostOnce, "delivery QoS = min(pub, sub)");
    }

    #[test]
    fn retained_message_replayed_on_subscribe() {
        let broker = Broker::start_default();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("cfg/x", b"v1", QoS::AtMostOnce, true);
        std::thread::sleep(Duration::from_millis(50));
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("cfg/#", QoS::AtMostOnce);
        let got = sub.expect_publish();
        assert!(got.retain, "retained replay sets the retain flag");
        assert_eq!(got.payload, Bytes::from_static(b"v1"));
    }

    #[test]
    fn empty_retained_clears() {
        let broker = Broker::start_default();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("cfg/x", b"v1", QoS::AtMostOnce, true);
        publ.publish("cfg/x", b"", QoS::AtMostOnce, true);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().retained_current, 0);
    }

    #[test]
    fn persistent_session_queues_while_offline() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", false);
        sub.subscribe("t", QoS::AtLeastOnce);
        drop(sub); // goes offline; session persists
        std::thread::sleep(Duration::from_millis(50));

        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"while-away", QoS::AtLeastOnce, false);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().queued_current, 1);

        // Reconnect without clean: message is replayed.
        let link = broker.connect_transport().unwrap();
        link.send_packet(&Packet::Connect(Connect {
            client_id: "sub".into(),
            clean_session: false,
            keep_alive: 0,
            will: None,
        }))
        .unwrap();
        match link.recv_packet_timeout(Duration::from_secs(2)).unwrap() {
            Packet::Connack(c) => assert!(c.session_present),
            other => panic!("expected connack, got {other:?}"),
        }
        match link.recv_packet_timeout(Duration::from_secs(2)).unwrap() {
            Packet::Publish(p) => assert_eq!(p.payload, Bytes::from_static(b"while-away")),
            other => panic!("expected publish, got {other:?}"),
        }
    }

    #[test]
    fn clean_session_discards_state() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", false);
        sub.subscribe("t", QoS::AtLeastOnce);
        drop(sub);
        std::thread::sleep(Duration::from_millis(50));

        // Reconnect with clean=true: no session, no subscriptions.
        let link = broker.connect_transport().unwrap();
        link.send_packet(&Packet::Connect(Connect {
            client_id: "sub".into(),
            clean_session: true,
            keep_alive: 0,
            will: None,
        }))
        .unwrap();
        match link.recv_packet_timeout(Duration::from_secs(2)).unwrap() {
            Packet::Connack(c) => assert!(!c.session_present),
            other => panic!("expected connack, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().subscriptions_current, 0);
    }

    #[test]
    fn last_will_published_on_ungraceful_drop() {
        let broker = Broker::start_default();
        let watcher = RawClient::connect(&broker, "watcher", true);
        watcher.subscribe("status/+", QoS::AtMostOnce);
        let doomed = RawClient::connect_full(
            &broker,
            "doomed",
            true,
            0,
            Some(LastWill {
                topic: TopicName::new("status/doomed").unwrap(),
                payload: Bytes::from_static(b"offline"),
                qos: QoS::AtMostOnce,
                retain: false,
            }),
        );
        drop(doomed); // ungraceful: no DISCONNECT sent
        let got = watcher.expect_publish();
        assert_eq!(got.topic.as_str(), "status/doomed");
        assert_eq!(got.payload, Bytes::from_static(b"offline"));
    }

    #[test]
    fn graceful_disconnect_suppresses_will() {
        let broker = Broker::start_default();
        let watcher = RawClient::connect(&broker, "watcher", true);
        watcher.subscribe("status/+", QoS::AtMostOnce);
        let polite = RawClient::connect_full(
            &broker,
            "polite",
            true,
            0,
            Some(LastWill {
                topic: TopicName::new("status/polite").unwrap(),
                payload: Bytes::from_static(b"offline"),
                qos: QoS::AtMostOnce,
                retain: false,
            }),
        );
        polite.link.send_packet(&Packet::Disconnect).unwrap();
        drop(polite);
        // No will should arrive.
        assert!(watcher
            .link
            .recv_packet_timeout(Duration::from_millis(200))
            .is_err());
    }

    #[test]
    fn session_takeover_disconnects_old() {
        let broker = Broker::start_default();
        let first = RawClient::connect(&broker, "dup", true);
        let _second = RawClient::connect(&broker, "dup", true);
        std::thread::sleep(Duration::from_millis(50));
        // The first connection's link is now closed by the broker.
        assert_eq!(broker.stats().connections_current, 1);
        // Receiving on the first link eventually errors (channel closed).
        let r = first.link.recv_packet_timeout(Duration::from_millis(200));
        assert!(r.is_err());
    }

    #[test]
    fn keepalive_expiry_drops_connection() {
        let broker = Broker::start(BrokerConfig {
            tick_interval: Duration::from_millis(20),
            ..BrokerConfig::default()
        });
        let _quiet = RawClient::connect_full(&broker, "quiet", true, 1, None);
        // 1s keepalive * 1.5 grace = 1.5s until expiry.
        std::thread::sleep(Duration::from_millis(1700));
        assert_eq!(broker.stats().connections_current, 0);
        assert_eq!(broker.stats().keepalive_timeouts, 1);
    }

    #[test]
    fn pingreq_keeps_connection_alive() {
        let broker = Broker::start(BrokerConfig {
            tick_interval: Duration::from_millis(20),
            ..BrokerConfig::default()
        });
        let client = RawClient::connect_full(&broker, "alive", true, 1, None);
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(500));
            client.link.send_packet(&Packet::Pingreq).unwrap();
            match client.recv() {
                Packet::Pingresp => {}
                other => panic!("expected pingresp, got {other:?}"),
            }
        }
        assert_eq!(broker.stats().connections_current, 1);
    }

    #[test]
    fn fanout_to_many_subscribers() {
        let broker = Broker::start_default();
        let subs: Vec<RawClient> = (0..10)
            .map(|i| {
                let c = RawClient::connect(&broker, &format!("sub{i}"), true);
                c.subscribe("fan/+", QoS::AtMostOnce);
                c
            })
            .collect();
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("fan/1", b"data", QoS::AtMostOnce, false);
        for sub in &subs {
            assert_eq!(sub.expect_publish().payload, Bytes::from_static(b"data"));
        }
        let stats = broker.stats();
        assert_eq!(stats.publishes_in, 1);
        assert_eq!(stats.publishes_out, 10);
        assert!((stats.fanout_ratio() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn publish_before_connect_drops_connection() {
        let broker = Broker::start_default();
        let link = broker.connect_transport().unwrap();
        link.send_packet(&Packet::Publish(Publish::simple(
            TopicName::new("t").unwrap(),
            b"x".to_vec(),
        )))
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(broker.stats().connections_current, 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::start_default();
        let sub = RawClient::connect(&broker, "sub", true);
        sub.subscribe("t", QoS::AtMostOnce);
        sub.link
            .send_packet(&Packet::Unsubscribe(Unsubscribe {
                packet_id: 2,
                filters: vec![TopicFilter::new("t").unwrap()],
            }))
            .unwrap();
        match sub.recv() {
            Packet::Unsuback(2) => {}
            other => panic!("expected unsuback, got {other:?}"),
        }
        let publ = RawClient::connect(&broker, "pub", true);
        publ.publish("t", b"x", QoS::AtMostOnce, false);
        assert!(sub
            .link
            .recv_packet_timeout(Duration::from_millis(200))
            .is_err());
    }
}
