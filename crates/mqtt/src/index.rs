//! Snapshot-routed broker index: the single-writer, many-reader home of
//! the subscription trie, the retained store, and the client route table.
//!
//! The sharded broker (see [`crate::broker`]) runs one event loop per
//! shard, and any shard must be able to route a publish without touching
//! another shard's state. All routing state therefore lives here as
//! **generation-swapped read-only snapshots**:
//!
//! * mutations (subscribe / unsubscribe / connect / disconnect / retained
//!   writes) funnel through the index writer — a mutex over the master
//!   copies — which applies the change and publishes a fresh
//!   [`IndexSnapshot`] with a bumped generation;
//! * readers (`route` on every shard) load the current `Arc<IndexSnapshot>`
//!   and match against it without taking any exclusive lock. A snapshot is
//!   internally immutable, so a route decision is atomic with respect to
//!   concurrent mutations: either it sees the whole mutation or none of it.
//!
//! Subscriber keys in the trie are **interned** `u64` client keys
//! ([`ClientKey`]) instead of cloned `String`s: the hot matching path
//! compares and copies machine words, and the route table maps the key
//! back to the client name, owning shard, and live [`FrameSender`] when a
//! delivery needs them.
//!
//! Copy-on-write granularity is per-structure: a subscribe clones only the
//! trie, a retained publish clones only the retained map, a connect clones
//! only the route table. The parts that did not change are shared between
//! consecutive snapshots via `Arc`.

use crate::broker::ConnId;
use crate::packet::{Publish, QoS};
use crate::persist::PersistStore;
use crate::retained::RetainedStore;
use crate::topic::TopicFilter;
use crate::transport::FrameSender;
use crate::trie::SubscriptionTrie;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Interned client key: a small integer standing in for a client id
/// `String` in the subscription trie and route table.
pub type ClientKey = u64;

/// Routing facts for one known client (a client is "known" while the
/// broker holds a session for it, live or parked).
#[derive(Debug, Clone)]
pub struct RouteEntry {
    /// The client identifier this entry routes for.
    pub client: Arc<str>,
    /// Shard that owns the client's session state.
    pub shard: usize,
    /// Live connection id, if the client is currently connected.
    pub conn: Option<ConnId>,
    /// Live link sender, if the client is currently connected. QoS 0
    /// deliveries go straight through this from any shard.
    pub sender: Option<FrameSender>,
    /// True for bridge connections (loop-prevention + retain forwarding).
    pub is_bridge: bool,
}

/// The client route table: key → entry, plus the name → key interner view.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    by_key: HashMap<ClientKey, RouteEntry>,
    by_name: HashMap<Arc<str>, ClientKey>,
}

impl RouteTable {
    /// Looks up the route entry for an interned key.
    pub fn entry(&self, key: ClientKey) -> Option<&RouteEntry> {
        self.by_key.get(&key)
    }

    /// Resolves a client name to its interned key.
    pub fn key_of(&self, client: &str) -> Option<ClientKey> {
        self.by_name.get(client).copied()
    }

    /// Number of known clients.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no clients are known.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

/// One immutable, internally consistent view of the broker's routing
/// state. Shards load it once per publish and route against it lock-free.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    /// Monotonic snapshot generation (bumps on every published mutation).
    pub generation: u64,
    /// Subscription trie keyed by interned client keys.
    pub trie: Arc<SubscriptionTrie<ClientKey, QoS>>,
    /// Retained message store.
    pub retained: Arc<RetainedStore>,
    /// Client route table.
    pub routes: Arc<RouteTable>,
}

/// Master (writer-side) state behind the mutex.
struct IndexMaster {
    generation: u64,
    trie: SubscriptionTrie<ClientKey, QoS>,
    retained: RetainedStore,
    routes: RouteTable,
    next_key: ClientKey,
    /// Persistence hook: retained writes are WAL-logged *under the writer
    /// lock*, so the retained stream's record order matches index order
    /// exactly. `None` when persistence is off.
    retained_log: Option<Arc<PersistStore>>,
}

/// Outcome of a retained-store write, for the broker's gauge counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainedDelta {
    /// A new retained topic was stored.
    Added,
    /// An existing retained topic was replaced.
    Replaced,
    /// A retained topic was cleared.
    Removed,
    /// The write changed nothing (clear of an absent topic).
    Unchanged,
}

/// The shared index: one writer (mutex-funneled), any number of snapshot
/// readers.
pub struct SharedIndex {
    master: Mutex<IndexMaster>,
    snap: RwLock<Arc<IndexSnapshot>>,
}

impl std::fmt::Debug for SharedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedIndex")
            .field("generation", &self.load().generation)
            .finish()
    }
}

impl Default for SharedIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedIndex {
    /// Creates an empty index at generation 0.
    pub fn new() -> SharedIndex {
        let snapshot = Arc::new(IndexSnapshot {
            generation: 0,
            trie: Arc::new(SubscriptionTrie::new()),
            retained: Arc::new(RetainedStore::new()),
            routes: Arc::new(RouteTable::default()),
        });
        SharedIndex {
            master: Mutex::new(IndexMaster {
                generation: 0,
                trie: SubscriptionTrie::new(),
                retained: RetainedStore::new(),
                routes: RouteTable::default(),
                next_key: 1,
                retained_log: None,
            }),
            snap: RwLock::new(snapshot),
        }
    }

    /// Loads the current snapshot (cheap: one shared lock + `Arc` clone).
    pub fn load(&self) -> Arc<IndexSnapshot> {
        self.snap.read().clone()
    }

    /// Runs `f` against the live (master) trie — test and introspection
    /// hook for the snapshot-vs-live equivalence property.
    pub fn with_live_trie<R>(&self, f: impl FnOnce(&SubscriptionTrie<ClientKey, QoS>) -> R) -> R {
        f(&self.master.lock().trie)
    }

    /// Interns `client` (idempotent) and upserts its route entry with a
    /// live connection. Returns the client's key.
    pub fn register_conn(
        &self,
        client: &str,
        shard: usize,
        conn: ConnId,
        sender: FrameSender,
        is_bridge: bool,
    ) -> ClientKey {
        let mut master = self.master.lock();
        let key = Self::intern(&mut master, client);
        let name: Arc<str> = master.routes.by_key.get(&key).map_or_else(
            || Arc::from(client),
            |existing| Arc::clone(&existing.client),
        );
        master.routes.by_key.insert(
            key,
            RouteEntry {
                client: name,
                shard,
                conn: Some(conn),
                sender: Some(sender),
                is_bridge,
            },
        );
        self.publish(master, Changed::ROUTES);
        key
    }

    /// Interns `client` and inserts an *offline* route entry (no live
    /// connection) if none exists, so recovered persistent sessions are
    /// routable before their clients reconnect. Returns the client's key.
    pub fn register_offline(&self, client: &str, shard: usize) -> ClientKey {
        let mut master = self.master.lock();
        let key = Self::intern(&mut master, client);
        master
            .routes
            .by_key
            .entry(key)
            .or_insert_with(|| RouteEntry {
                client: Arc::from(client),
                shard,
                conn: None,
                sender: None,
                is_bridge: false,
            });
        self.publish(master, Changed::ROUTES);
        key
    }

    /// Installs the persistence hook for retained writes. Must be called
    /// *after* recovered retained state has been seeded (seeding goes
    /// through [`SharedIndex::apply_retained`] and must not be re-logged).
    pub fn set_retained_log(&self, store: Arc<PersistStore>) {
        self.master.lock().retained_log = Some(store);
    }

    /// Marks the client offline (parked session): clears the live
    /// connection but keeps the entry so queued deliveries keep routing
    /// to the owner shard. A no-op if a newer connection took over.
    pub fn deregister_conn(&self, key: ClientKey, conn: ConnId) {
        let mut master = self.master.lock();
        let Some(entry) = master.routes.by_key.get_mut(&key) else {
            return;
        };
        if entry.conn != Some(conn) {
            return; // session takeover already re-registered
        }
        entry.conn = None;
        entry.sender = None;
        self.publish(master, Changed::ROUTES);
    }

    /// Forgets the client entirely (clean-session disconnect): removes
    /// its route entry and purges its subscriptions. Returns the number
    /// of subscriptions removed.
    pub fn remove_client(&self, key: ClientKey) -> usize {
        let mut master = self.master.lock();
        let removed = master.trie.unsubscribe_all(&key);
        if let Some(entry) = master.routes.by_key.remove(&key) {
            master.routes.by_name.remove(&entry.client);
        }
        self.publish(master, Changed::TRIE.and(Changed::ROUTES));
        removed
    }

    /// Adds or replaces the subscription `(key, filter)`. Returns true if
    /// the entry is new.
    pub fn subscribe(&self, filter: &TopicFilter, key: ClientKey, granted: QoS) -> bool {
        let mut master = self.master.lock();
        let new = master.trie.subscribe(filter, key, granted);
        self.publish(master, Changed::TRIE);
        new
    }

    /// Removes the subscription `(key, filter)`. Returns true if it
    /// existed.
    pub fn unsubscribe(&self, filter: &TopicFilter, key: ClientKey) -> bool {
        let mut master = self.master.lock();
        let removed = master.trie.unsubscribe(filter, &key);
        self.publish(master, Changed::TRIE);
        removed
    }

    /// Removes every subscription held by `key` (clean CONNECT over an
    /// existing session). Returns the number removed.
    pub fn unsubscribe_all(&self, key: ClientKey) -> usize {
        let mut master = self.master.lock();
        let removed = master.trie.unsubscribe_all(&key);
        self.publish(master, Changed::TRIE);
        removed
    }

    /// Applies a retained publish to the store and reports what changed.
    pub fn apply_retained(&self, publish: &Publish) -> RetainedDelta {
        let mut master = self.master.lock();
        let delta = if publish.payload.is_empty() {
            if master.retained.apply(publish) {
                RetainedDelta::Removed
            } else {
                RetainedDelta::Unchanged
            }
        } else {
            let had = master.retained.get(&publish.topic).is_some();
            master.retained.apply(publish);
            if had {
                RetainedDelta::Replaced
            } else {
                RetainedDelta::Added
            }
        };
        if delta != RetainedDelta::Unchanged {
            if let Some(log) = master.retained_log.as_ref().map(Arc::clone) {
                // Under the writer lock: record order matches index order.
                log.append_retained(
                    &publish.topic,
                    publish.qos,
                    &publish.payload,
                    &master.retained,
                );
            }
            self.publish(master, Changed::RETAINED);
        }
        delta
    }

    fn intern(master: &mut IndexMaster, client: &str) -> ClientKey {
        if let Some(&key) = master.routes.by_name.get(client) {
            return key;
        }
        let key = master.next_key;
        master.next_key += 1;
        let name: Arc<str> = Arc::from(client);
        master.routes.by_name.insert(name, key);
        key
    }

    /// Publishes a snapshot rebuilding exactly the structures `changed`
    /// names from the master copies; everything else is `Arc`-shared with
    /// the previous generation (the copy-on-write granularity).
    fn publish(&self, mut master: parking_lot::MutexGuard<'_, IndexMaster>, changed: Changed) {
        master.generation += 1;
        let current = self.snap.read().clone();
        let snapshot = Arc::new(IndexSnapshot {
            generation: master.generation,
            trie: if changed.trie {
                Arc::new(master.trie.clone())
            } else {
                Arc::clone(&current.trie)
            },
            retained: if changed.retained {
                Arc::new(master.retained.clone())
            } else {
                Arc::clone(&current.retained)
            },
            routes: if changed.routes {
                Arc::new(master.routes.clone())
            } else {
                Arc::clone(&current.routes)
            },
        });
        *self.snap.write() = snapshot;
    }
}

/// Which master structures a mutation touched (selects the parts the next
/// snapshot must re-clone).
#[derive(Debug, Clone, Copy, Default)]
struct Changed {
    trie: bool,
    retained: bool,
    routes: bool,
}

impl Changed {
    const TRIE: Changed = Changed {
        trie: true,
        retained: false,
        routes: false,
    };
    const RETAINED: Changed = Changed {
        trie: false,
        retained: true,
        routes: false,
    };
    const ROUTES: Changed = Changed {
        trie: false,
        retained: false,
        routes: true,
    };

    const fn and(self, other: Changed) -> Changed {
        Changed {
            trie: self.trie || other.trie,
            retained: self.retained || other.retained,
            routes: self.routes || other.routes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicName;
    use crate::transport::link;
    use bytes::Bytes;

    fn f(s: &str) -> TopicFilter {
        TopicFilter::new(s).unwrap()
    }
    fn t(s: &str) -> TopicName {
        TopicName::new(s).unwrap()
    }

    fn sender() -> FrameSender {
        let (a, _b) = link();
        // Leak the peer so the sender stays "connected" for the test's
        // lifetime; tests only inspect routing metadata.
        std::mem::forget(_b);
        a.split().0
    }

    #[test]
    fn interning_is_stable_across_reconnects() {
        let index = SharedIndex::new();
        let k1 = index.register_conn("alice", 0, 1, sender(), false);
        index.deregister_conn(k1, 1);
        let k2 = index.register_conn("alice", 0, 2, sender(), false);
        assert_eq!(k1, k2, "parked session keeps its key");
        let k3 = index.register_conn("bob", 1, 3, sender(), false);
        assert_ne!(k1, k3);
    }

    #[test]
    fn snapshot_is_immutable_while_master_moves() {
        let index = SharedIndex::new();
        let key = index.register_conn("c", 0, 1, sender(), false);
        index.subscribe(&f("a/#"), key, QoS::AtMostOnce);
        let old = index.load();
        index.subscribe(&f("b/#"), key, QoS::AtMostOnce);
        let new = index.load();
        assert_eq!(old.trie.matches(&t("b/x")).len(), 0, "old snapshot frozen");
        assert_eq!(new.trie.matches(&t("b/x")).len(), 1);
        assert!(new.generation > old.generation);
    }

    #[test]
    fn unchanged_parts_are_shared_between_generations() {
        let index = SharedIndex::new();
        let key = index.register_conn("c", 0, 1, sender(), false);
        index.subscribe(&f("a/#"), key, QoS::AtMostOnce);
        let before = index.load();
        index.apply_retained(&Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: true,
            topic: t("a/b"),
            packet_id: None,
            payload: Bytes::from_static(b"v"),
        });
        let after = index.load();
        assert!(
            Arc::ptr_eq(&before.trie, &after.trie),
            "retained write must not clone the trie"
        );
        assert!(!Arc::ptr_eq(&before.retained, &after.retained));
    }

    #[test]
    fn stale_deregister_is_ignored_after_takeover() {
        let index = SharedIndex::new();
        let key = index.register_conn("c", 0, 1, sender(), false);
        // Takeover: a new connection re-registers before the old closes.
        index.register_conn("c", 0, 2, sender(), false);
        index.deregister_conn(key, 1); // stale close
        let snap = index.load();
        assert_eq!(snap.routes.entry(key).unwrap().conn, Some(2));
    }

    #[test]
    fn remove_client_purges_routes_and_subscriptions() {
        let index = SharedIndex::new();
        let key = index.register_conn("c", 0, 1, sender(), false);
        index.subscribe(&f("a/#"), key, QoS::AtMostOnce);
        index.subscribe(&f("b"), key, QoS::AtMostOnce);
        assert_eq!(index.remove_client(key), 2);
        let snap = index.load();
        assert!(snap.routes.is_empty());
        assert!(snap.trie.is_empty());
        assert_eq!(snap.routes.key_of("c"), None);
    }

    #[test]
    fn retained_delta_reports_transitions() {
        let index = SharedIndex::new();
        let publ = |payload: &'static [u8]| Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: true,
            topic: t("cfg/x"),
            packet_id: None,
            payload: Bytes::from_static(payload),
        };
        assert_eq!(index.apply_retained(&publ(b"v1")), RetainedDelta::Added);
        assert_eq!(index.apply_retained(&publ(b"v2")), RetainedDelta::Replaced);
        assert_eq!(index.apply_retained(&publ(b"")), RetainedDelta::Removed);
        assert_eq!(index.apply_retained(&publ(b"")), RetainedDelta::Unchanged);
    }
}
