//! Subscription trie: maps topic names to the set of subscribers whose
//! filters match, in time proportional to the topic depth rather than the
//! number of subscriptions.
//!
//! Each node corresponds to one topic level. Children are stored in a
//! `HashMap<String, Node>`; the wildcard children `+` and `#` are kept in
//! dedicated slots so that matching never scans sibling maps. Subscriber
//! entries at a node carry an opaque `S` payload (the broker stores the
//! connection id and granted QoS).

use crate::topic::{TopicFilter, TopicName};
use std::collections::HashMap;

/// A trie from topic filters to subscriber payloads.
///
/// `S` is the per-subscription payload; `K` is the subscriber key used for
/// deduplication and removal (the broker uses an interned client key).
///
/// The trie is `Clone` (when `K` and `S` are) so the broker's index writer
/// can publish read-only copy-on-write snapshots of it (see
/// [`crate::index`]).
#[derive(Debug, Clone)]
pub struct SubscriptionTrie<K, S> {
    root: Node<K, S>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<K, S> {
    children: HashMap<String, Node<K, S>>,
    plus: Option<Box<Node<K, S>>>,
    hash: Option<Box<Node<K, S>>>,
    subscribers: Vec<(K, S)>,
}

impl<K, S> Default for Node<K, S> {
    fn default() -> Self {
        Node {
            children: HashMap::new(),
            plus: None,
            hash: None,
            subscribers: Vec::new(),
        }
    }
}

impl<K, S> Node<K, S> {
    fn is_empty(&self) -> bool {
        self.children.is_empty()
            && self.plus.is_none()
            && self.hash.is_none()
            && self.subscribers.is_empty()
    }
}

impl<K: Eq + Clone, S> Default for SubscriptionTrie<K, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Clone, S> SubscriptionTrie<K, S> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        SubscriptionTrie {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of (subscriber, filter) entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no subscriptions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces the subscription `(key, filter)`.
    ///
    /// If the same key already subscribes to the same filter, its payload is
    /// replaced (matching MQTT re-subscription semantics) and `false` is
    /// returned; otherwise a new entry is created and `true` is returned.
    pub fn subscribe(&mut self, filter: &TopicFilter, key: K, payload: S) -> bool {
        let mut node = &mut self.root;
        for level in filter.levels() {
            node = match level {
                "+" => node.plus.get_or_insert_with(Default::default),
                "#" => node.hash.get_or_insert_with(Default::default),
                other => node.children.entry(other.to_owned()).or_default(),
            };
        }
        if let Some(slot) = node.subscribers.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = payload;
            false
        } else {
            node.subscribers.push((key, payload));
            self.len += 1;
            true
        }
    }

    /// Removes the subscription `(key, filter)`. Returns true if it existed.
    pub fn unsubscribe(&mut self, filter: &TopicFilter, key: &K) -> bool {
        let levels: Vec<&str> = filter.levels().collect();
        let removed = Self::remove_rec(&mut self.root, &levels, key);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node<K, S>, levels: &[&str], key: &K) -> bool {
        if levels.is_empty() {
            let before = node.subscribers.len();
            node.subscribers.retain(|(k, _)| k != key);
            return node.subscribers.len() != before;
        }
        let (head, rest) = (levels[0], &levels[1..]);
        let removed = match head {
            "+" => match node.plus.as_deref_mut() {
                Some(child) => {
                    let r = Self::remove_rec(child, rest, key);
                    if child.is_empty() {
                        node.plus = None;
                    }
                    r
                }
                None => false,
            },
            "#" => match node.hash.as_deref_mut() {
                Some(child) => {
                    let r = Self::remove_rec(child, rest, key);
                    if child.is_empty() {
                        node.hash = None;
                    }
                    r
                }
                None => false,
            },
            other => match node.children.get_mut(other) {
                Some(child) => {
                    let r = Self::remove_rec(child, rest, key);
                    if child.is_empty() {
                        node.children.remove(other);
                    }
                    r
                }
                None => false,
            },
        };
        removed
    }

    /// Removes every subscription held by `key` (used on disconnect).
    /// Returns the number of entries removed.
    pub fn unsubscribe_all(&mut self, key: &K) -> usize {
        let removed = Self::purge_rec(&mut self.root, key);
        self.len -= removed;
        removed
    }

    fn purge_rec(node: &mut Node<K, S>, key: &K) -> usize {
        let before = node.subscribers.len();
        node.subscribers.retain(|(k, _)| k != key);
        let mut removed = before - node.subscribers.len();
        node.children.retain(|_, child| {
            removed += Self::purge_rec(child, key);
            !child.is_empty()
        });
        if let Some(child) = node.plus.as_deref_mut() {
            removed += Self::purge_rec(child, key);
            if child.is_empty() {
                node.plus = None;
            }
        }
        if let Some(child) = node.hash.as_deref_mut() {
            removed += Self::purge_rec(child, key);
            if child.is_empty() {
                node.hash = None;
            }
        }
        removed
    }

    /// Collects all subscriber payloads whose filters match `topic`.
    ///
    /// The same subscriber may appear several times if several of its
    /// filters match; the broker deduplicates by connection, keeping the
    /// maximum granted QoS, as required by overlapping-subscription rules.
    pub fn matches<'a>(&'a self, topic: &TopicName) -> Vec<(&'a K, &'a S)> {
        let levels: Vec<&str> = topic.levels().collect();
        let mut out = Vec::new();
        let system = topic.is_system();
        Self::match_rec(&self.root, &levels, true, system, &mut out);
        out
    }

    fn match_rec<'a>(
        node: &'a Node<K, S>,
        levels: &[&str],
        first_level: bool,
        system: bool,
        out: &mut Vec<(&'a K, &'a S)>,
    ) {
        // A `#` child at this point matches the remaining levels (including
        // none), except that a leading wildcard must not match $-topics.
        if let Some(hash) = node.hash.as_deref() {
            if !(first_level && system) {
                out.extend(hash.subscribers.iter().map(|(k, s)| (k, s)));
            }
        }
        let Some((head, rest)) = levels.split_first() else {
            out.extend(node.subscribers.iter().map(|(k, s)| (k, s)));
            return;
        };
        if let Some(plus) = node.plus.as_deref() {
            if !(first_level && system) {
                Self::match_rec(plus, rest, false, system, out);
            }
        }
        if let Some(child) = node.children.get(*head) {
            Self::match_rec(child, rest, false, system, out);
        }
    }

    /// Visits every stored (filter, key, payload) triple. Filters are
    /// reconstructed from the path; used by broker bridging to mirror the
    /// subscription table.
    pub fn for_each<F: FnMut(&str, &K, &S)>(&self, mut f: F) {
        let mut path = String::new();
        Self::walk(&self.root, &mut path, &mut f);
    }

    fn walk<F: FnMut(&str, &K, &S)>(node: &Node<K, S>, path: &mut String, f: &mut F) {
        for (k, s) in &node.subscribers {
            f(path, k, s);
        }
        let base = path.len();
        for (level, child) in &node.children {
            if base > 0 {
                path.push('/');
            }
            path.push_str(level);
            Self::walk(child, path, f);
            path.truncate(base);
        }
        if let Some(child) = node.plus.as_deref() {
            if base > 0 {
                path.push('/');
            }
            path.push('+');
            Self::walk(child, path, f);
            path.truncate(base);
        }
        if let Some(child) = node.hash.as_deref() {
            if base > 0 {
                path.push('/');
            }
            path.push('#');
            Self::walk(child, path, f);
            path.truncate(base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> TopicName {
        TopicName::new(s).unwrap()
    }
    fn f(s: &str) -> TopicFilter {
        TopicFilter::new(s).unwrap()
    }

    fn keys(trie: &SubscriptionTrie<u32, u8>, topic: &str) -> Vec<u32> {
        let mut v: Vec<u32> = trie
            .matches(&t(topic))
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn exact_and_wildcard_matching() {
        let mut trie = SubscriptionTrie::new();
        trie.subscribe(&f("a/b"), 1u32, 0u8);
        trie.subscribe(&f("a/+"), 2, 0);
        trie.subscribe(&f("a/#"), 3, 0);
        trie.subscribe(&f("#"), 4, 0);
        trie.subscribe(&f("b/c"), 5, 0);

        assert_eq!(keys(&trie, "a/b"), vec![1, 2, 3, 4]);
        assert_eq!(keys(&trie, "a/c"), vec![2, 3, 4]);
        assert_eq!(keys(&trie, "a/b/c"), vec![3, 4]);
        assert_eq!(keys(&trie, "b/c"), vec![4, 5]);
        assert_eq!(keys(&trie, "a"), vec![3, 4]);
    }

    #[test]
    fn resubscription_replaces_payload() {
        let mut trie = SubscriptionTrie::new();
        assert!(trie.subscribe(&f("x"), 1u32, 0u8));
        assert!(!trie.subscribe(&f("x"), 1, 2));
        assert_eq!(trie.len(), 1);
        let m = trie.matches(&t("x"));
        assert_eq!(m.len(), 1);
        assert_eq!(*m[0].1, 2);
    }

    #[test]
    fn unsubscribe_prunes_empty_branches() {
        let mut trie = SubscriptionTrie::new();
        trie.subscribe(&f("a/b/c/d"), 1u32, 0u8);
        assert!(trie.unsubscribe(&f("a/b/c/d"), &1));
        assert!(!trie.unsubscribe(&f("a/b/c/d"), &1));
        assert!(trie.is_empty());
        assert!(trie.root.is_empty());
    }

    #[test]
    fn unsubscribe_all_on_disconnect() {
        let mut trie = SubscriptionTrie::new();
        trie.subscribe(&f("a/b"), 1u32, 0u8);
        trie.subscribe(&f("a/+"), 1, 0);
        trie.subscribe(&f("c/#"), 1, 0);
        trie.subscribe(&f("a/b"), 2, 0);
        assert_eq!(trie.unsubscribe_all(&1), 3);
        assert_eq!(trie.len(), 1);
        assert_eq!(keys(&trie, "a/b"), vec![2]);
    }

    #[test]
    fn system_topics_invisible_to_leading_wildcards() {
        let mut trie = SubscriptionTrie::new();
        trie.subscribe(&f("#"), 1u32, 0u8);
        trie.subscribe(&f("+/x"), 2, 0);
        trie.subscribe(&f("$SYS/#"), 3, 0);
        assert_eq!(keys(&trie, "$SYS/x"), vec![3]);
        assert_eq!(keys(&trie, "normal/x"), vec![1, 2]);
    }

    #[test]
    fn for_each_reconstructs_filters() {
        let mut trie = SubscriptionTrie::new();
        trie.subscribe(&f("a/b"), 1u32, 0u8);
        trie.subscribe(&f("a/+/c"), 2, 0);
        trie.subscribe(&f("#"), 3, 0);
        let mut seen = Vec::new();
        trie.for_each(|filter, k, _| seen.push((filter.to_owned(), *k)));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                ("#".to_owned(), 3),
                ("a/+/c".to_owned(), 2),
                ("a/b".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn trie_agrees_with_linear_matcher() {
        // Cross-check the trie against TopicFilter::matches on a fixed corpus.
        let filters = [
            "a/b/c", "a/+/c", "a/#", "+/b/#", "#", "+/+/+", "a/b/+", "$SYS/#", "+",
        ];
        let topics = ["a/b/c", "a/x/c", "a", "b", "$SYS/load", "a/b/c/d", "x/b/z"];
        let mut trie = SubscriptionTrie::new();
        for (i, fs) in filters.iter().enumerate() {
            trie.subscribe(&f(fs), i as u32, 0u8);
        }
        for ts in topics {
            let topic = t(ts);
            let mut expect: Vec<u32> = filters
                .iter()
                .enumerate()
                .filter(|(_, fs)| f(fs).matches(&topic))
                .map(|(i, _)| i as u32)
                .collect();
            expect.sort_unstable();
            assert_eq!(keys(&trie, ts), expect, "topic {ts}");
        }
    }
}
