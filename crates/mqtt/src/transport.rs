//! Transport links: in-process frame pipes and TCP-backed senders.
//!
//! A [`LinkEnd`] pair is a bidirectional, ordered, reliable byte-frame
//! pipe built from two crossbeam channels — the in-process stand-in for a
//! TCP connection. Every frame that crosses a link is a complete MQTT
//! packet encoded by [`crate::codec`], so the wire format is exercised
//! end-to-end even though no sockets are involved.
//!
//! Since the reactor refactor the broker no longer spawns a reader thread
//! per connection, so a link carries an optional **incoming-notify hook**
//! per direction: when the broker attaches an end, it installs a hook on
//! the client→broker direction that enqueues a `LinkNotify` mailbox event
//! (and wakes the owner shard) after every send — and when the client's
//! last send handle drops, so closure is observed too. The frames
//! themselves stay in the channel, which keeps bounded links blocking on
//! a full queue (the in-process model of TCP flow control) and keeps the
//! one-frame-per-notify pop order deterministic.
//!
//! [`FrameSender`] abstracts over the two broker-side send paths: an
//! in-process channel half, or a [`TcpOutbound`] write queue flushed by
//! the owner shard's reactor with vectored writes (see
//! [`crate::reactor`]). Routing code treats both identically.

use crate::codec;
use crate::error::{MqttError, Result};
use crate::packet::Packet;
use crate::reactor::WriteScheduler;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Traffic counters shared by both ends of a link.
///
/// Counters use `Relaxed` ordering: they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Frames sent from the A side to the B side.
    pub a_to_b_frames: AtomicU64,
    /// Bytes sent from the A side to the B side.
    pub a_to_b_bytes: AtomicU64,
    /// Frames sent from the B side to the A side.
    pub b_to_a_frames: AtomicU64,
    /// Bytes sent from the B side to the A side.
    pub b_to_a_bytes: AtomicU64,
}

impl LinkStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.a_to_b_bytes.load(Ordering::Relaxed) + self.b_to_a_bytes.load(Ordering::Relaxed)
    }

    /// Total frames in both directions.
    pub fn total_frames(&self) -> u64 {
        self.a_to_b_frames.load(Ordering::Relaxed) + self.b_to_a_frames.load(Ordering::Relaxed)
    }

    fn record(&self, a_side: bool, len: usize) {
        if a_side {
            self.a_to_b_frames.fetch_add(1, Ordering::Relaxed);
            self.a_to_b_bytes.fetch_add(len as u64, Ordering::Relaxed);
        } else {
            self.b_to_a_frames.fetch_add(1, Ordering::Relaxed);
            self.b_to_a_bytes.fetch_add(len as u64, Ordering::Relaxed);
        }
    }
}

/// Callback fired after a frame is sent toward (or the last send handle
/// for a direction is dropped on) the subscribing end.
pub(crate) type NotifyFn = Arc<dyn Fn() + Send + Sync>;

/// One direction's notify hook slot, shared by both ends of the link.
#[derive(Default)]
pub(crate) struct NotifySlot(RwLock<Option<NotifyFn>>);

impl NotifySlot {
    fn fire(&self) {
        if let Ok(guard) = self.0.read() {
            if let Some(f) = guard.as_ref() {
                f();
            }
        }
    }

    fn install(&self, f: NotifyFn) {
        if let Ok(mut guard) = self.0.write() {
            *guard = Some(f);
        }
    }
}

/// A send-side handle to a notify slot that also fires the slot when
/// dropped, so the receiving end observes the sender going away.
pub(crate) struct DropNotify(Arc<NotifySlot>);

impl Clone for DropNotify {
    fn clone(&self) -> DropNotify {
        DropNotify(Arc::clone(&self.0))
    }
}

impl Drop for DropNotify {
    fn drop(&mut self) {
        self.0.fire();
    }
}

/// One end of a bidirectional frame pipe.
///
/// Cloning a `LinkEnd` yields another handle to the *same* end (crossbeam
/// channels are MPMC), which lets a client keep the send half while a
/// reader thread owns the receive loop.
#[derive(Clone)]
pub struct LinkEnd {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    stats: Arc<LinkStats>,
    /// True for the A side (used to attribute stats direction).
    a_side: bool,
    /// Fired after every send on this end and when this end's last send
    /// handle drops; the broker installs its mailbox hook on the peer's
    /// view of this slot.
    tx_notify: DropNotify,
    /// The slot the peer fires toward this end (hook installation point).
    rx_notify: Arc<NotifySlot>,
}

impl std::fmt::Debug for LinkEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkEnd")
            .field("a_side", &self.a_side)
            .finish_non_exhaustive()
    }
}

/// Creates a connected pair of link ends with unbounded buffering.
pub fn link() -> (LinkEnd, LinkEnd) {
    link_with_capacity(None)
}

/// Creates a connected pair of link ends.
///
/// `capacity` bounds each direction's in-flight frame queue; `None` means
/// unbounded. A bounded link applies backpressure: sends block when full,
/// which mimics TCP flow control.
pub fn link_with_capacity(capacity: Option<usize>) -> (LinkEnd, LinkEnd) {
    let (a_tx, b_rx) = match capacity {
        Some(c) => bounded(c),
        None => unbounded(),
    };
    let (b_tx, a_rx) = match capacity {
        Some(c) => bounded(c),
        None => unbounded(),
    };
    let stats = Arc::new(LinkStats::default());
    let a_to_b = Arc::new(NotifySlot::default());
    let b_to_a = Arc::new(NotifySlot::default());
    (
        LinkEnd {
            tx: a_tx,
            rx: a_rx,
            stats: Arc::clone(&stats),
            a_side: true,
            tx_notify: DropNotify(Arc::clone(&a_to_b)),
            rx_notify: Arc::clone(&b_to_a),
        },
        LinkEnd {
            tx: b_tx,
            rx: b_rx,
            stats,
            a_side: false,
            tx_notify: DropNotify(b_to_a),
            rx_notify: a_to_b,
        },
    )
}

impl LinkEnd {
    /// Sends a raw frame. Blocks if the link is bounded and full.
    pub fn send_frame(&self, frame: Bytes) -> Result<()> {
        self.record_sent(frame.len());
        self.tx.send(frame).map_err(|_| MqttError::Disconnected)?;
        self.tx_notify.0.fire();
        Ok(())
    }

    /// Attempts to send without blocking; returns the frame on a full queue.
    pub fn try_send_frame(&self, frame: Bytes) -> std::result::Result<(), TrySendError<Bytes>> {
        let len = frame.len();
        self.tx.try_send(frame).inspect(|_| {
            self.record_sent(len);
            self.tx_notify.0.fire();
        })
    }

    /// Encodes and sends one packet.
    pub fn send_packet(&self, packet: &Packet) -> Result<()> {
        self.send_frame(codec::encode(packet)?)
    }

    /// Receives one raw frame, blocking until available or the peer is gone.
    pub fn recv_frame(&self) -> Result<Bytes> {
        self.rx.recv().map_err(|_| MqttError::Disconnected)
    }

    /// Receives one raw frame with a timeout.
    pub fn recv_frame_timeout(&self, timeout: Duration) -> Result<Bytes> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => MqttError::Timeout,
            RecvTimeoutError::Disconnected => MqttError::Disconnected,
        })
    }

    /// Receives and decodes one packet, blocking.
    pub fn recv_packet(&self) -> Result<Packet> {
        let frame = self.recv_frame()?;
        let (packet, _) = codec::decode(&frame)?;
        Ok(packet)
    }

    /// Receives and decodes one packet with a timeout.
    pub fn recv_packet_timeout(&self, timeout: Duration) -> Result<Packet> {
        let frame = self.recv_frame_timeout(timeout)?;
        let (packet, _) = codec::decode(&frame)?;
        Ok(packet)
    }

    /// Shared traffic counters for this link.
    pub fn stats(&self) -> &Arc<LinkStats> {
        &self.stats
    }

    /// True if the peer end has been dropped.
    pub fn is_closed(&self) -> bool {
        // A send to a channel with no receiver fails; probe cheaply via the
        // receiver side (closed when the sender half is dropped *and* empty).
        self.tx.is_full() && self.tx.capacity() == Some(0)
    }

    /// Installs the hook fired whenever the *peer* sends toward this end
    /// (and when the peer's last send handle drops). The broker's reactor
    /// uses this to turn link activity into shard mailbox events.
    pub(crate) fn set_incoming_notify(&self, f: NotifyFn) {
        self.rx_notify.install(f);
    }

    fn record_sent(&self, len: usize) {
        self.stats.record(self.a_side, len);
    }

    /// Splits the end into independent send and receive halves.
    ///
    /// This matters for closure detection: when every [`FrameSender`] for a
    /// direction is dropped, the peer's receive calls return
    /// [`MqttError::Disconnected`]. Keeping a whole `LinkEnd` clone alive in
    /// a reader thread would pin the send half and mask closures.
    pub fn split(self) -> (FrameSender, FrameReceiver) {
        let LinkEnd {
            tx,
            rx,
            stats,
            a_side,
            tx_notify,
            rx_notify: _,
        } = self;
        (
            FrameSender {
                inner: SenderInner::Link {
                    tx,
                    stats,
                    a_side,
                    notify: tx_notify,
                },
            },
            FrameReceiver { rx },
        )
    }
}

enum SenderInner {
    /// In-process channel half.
    Link {
        tx: Sender<Bytes>,
        stats: Arc<LinkStats>,
        a_side: bool,
        notify: DropNotify,
    },
    /// TCP write queue flushed by the owner shard's reactor.
    Tcp(Arc<TcpOutbound>),
}

impl Clone for SenderInner {
    fn clone(&self) -> SenderInner {
        match self {
            SenderInner::Link {
                tx,
                stats,
                a_side,
                notify,
            } => SenderInner::Link {
                tx: tx.clone(),
                stats: Arc::clone(stats),
                a_side: *a_side,
                notify: notify.clone(),
            },
            SenderInner::Tcp(out) => SenderInner::Tcp(Arc::clone(out)),
        }
    }
}

/// Send-only half of a broker↔client connection: an in-process channel
/// half or a TCP write queue. Cheap to clone; routing code holds one per
/// live subscriber.
#[derive(Clone)]
pub struct FrameSender {
    inner: SenderInner,
}

impl std::fmt::Debug for FrameSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            SenderInner::Link { a_side, .. } => f
                .debug_struct("FrameSender")
                .field("a_side", a_side)
                .finish_non_exhaustive(),
            SenderInner::Tcp(out) => f
                .debug_struct("FrameSender")
                .field("tcp_conn", &out.conn)
                .finish_non_exhaustive(),
        }
    }
}

impl FrameSender {
    /// Wraps a TCP connection's write queue.
    pub(crate) fn from_tcp(out: Arc<TcpOutbound>) -> FrameSender {
        FrameSender {
            inner: SenderInner::Tcp(out),
        }
    }

    /// Sends a raw frame.
    pub fn send_frame(&self, frame: Bytes) -> Result<()> {
        match &self.inner {
            SenderInner::Link {
                tx,
                stats,
                a_side,
                notify,
                ..
            } => {
                stats.record(*a_side, frame.len());
                tx.send(frame).map_err(|_| MqttError::Disconnected)?;
                notify.0.fire();
                Ok(())
            }
            SenderInner::Tcp(out) => out.push(frame),
        }
    }

    /// Encodes and sends one packet.
    pub fn send_packet(&self, packet: &Packet) -> Result<()> {
        self.send_frame(codec::encode(packet)?)
    }

    /// Shared traffic counters for this connection.
    pub fn stats(&self) -> &Arc<LinkStats> {
        match &self.inner {
            SenderInner::Link { stats, .. } => stats,
            SenderInner::Tcp(out) => &out.stats,
        }
    }
}

/// Receive-only half of a link end.
pub struct FrameReceiver {
    rx: Receiver<Bytes>,
}

/// Outcome of a non-blocking frame pop.
pub(crate) enum TryRecv {
    /// One frame was popped.
    Frame(Bytes),
    /// Nothing queued right now.
    Empty,
    /// Every peer send handle is gone and the queue is drained.
    Closed,
}

impl FrameReceiver {
    /// Receives one raw frame, blocking until available or the peer's send
    /// half is fully dropped.
    pub fn recv_frame(&self) -> Result<Bytes> {
        self.rx.recv().map_err(|_| MqttError::Disconnected)
    }

    /// Receives one raw frame with a timeout.
    pub fn recv_frame_timeout(&self, timeout: Duration) -> Result<Bytes> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => MqttError::Timeout,
            RecvTimeoutError::Disconnected => MqttError::Disconnected,
        })
    }

    /// Pops one frame without blocking (the reactor's per-notify pop).
    pub(crate) fn try_recv_frame(&self) -> TryRecv {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(frame) => TryRecv::Frame(frame),
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Closed,
        }
    }
}

// ---------------------------------------------------------------------
// TCP write queue
// ---------------------------------------------------------------------

/// Shared outbound state of one TCP connection.
///
/// Any shard may push encoded frames (routing fan-out crosses shards);
/// only the owner shard pops, writing with `writev` when its reactor says
/// the socket is writable. Pushes never block — the queue is unbounded —
/// but a queue that outgrows `hwm` bytes marks the connection **evicted**
/// (slow consumer): subsequent pushes fail, and the owner shard tears the
/// connection down ungracefully, which fires the client's last will.
pub(crate) struct TcpOutbound {
    /// Connection id (doubles as the reactor token).
    conn: u64,
    q: Mutex<VecDeque<Bytes>>,
    /// Bytes pushed but not yet written to the socket.
    queued_bytes: AtomicU64,
    /// Slow-consumer eviction watermark (bytes).
    hwm: u64,
    evicted: AtomicBool,
    eviction_counted: AtomicBool,
    closed: AtomicBool,
    /// Deduplicates flush scheduling: set by the first push after a
    /// flush, cleared by the owner shard at the start of each flush pass.
    flush_armed: AtomicBool,
    /// The owner shard's flush queue; retargeted once if the connection
    /// migrates from its home shard to its owner at CONNECT time.
    sched: Mutex<Arc<WriteScheduler>>,
    stats: Arc<LinkStats>,
}

impl TcpOutbound {
    pub(crate) fn new(conn: u64, hwm: u64, sched: Arc<WriteScheduler>) -> Arc<TcpOutbound> {
        Arc::new(TcpOutbound {
            conn,
            q: Mutex::new(VecDeque::new()),
            queued_bytes: AtomicU64::new(0),
            hwm,
            evicted: AtomicBool::new(false),
            eviction_counted: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            flush_armed: AtomicBool::new(false),
            sched: Mutex::new(sched),
            stats: Arc::new(LinkStats::default()),
        })
    }

    /// Queues one frame and schedules a flush with the owner shard.
    fn push(&self, frame: Bytes) -> Result<()> {
        if self.closed.load(Ordering::Acquire) || self.evicted.load(Ordering::Acquire) {
            return Err(MqttError::Disconnected);
        }
        let len = frame.len() as u64;
        self.stats.record(false, frame.len());
        let total = {
            let mut q = self.q.lock().expect("tcp outbound lock");
            q.push_back(frame);
            self.queued_bytes.fetch_add(len, Ordering::Relaxed) + len
        };
        if total > self.hwm {
            self.evicted.store(true, Ordering::Release);
        }
        if !self.flush_armed.swap(true, Ordering::AcqRel) {
            let sched = Arc::clone(&self.sched.lock().expect("tcp sched lock"));
            sched.schedule(self.conn);
        }
        Ok(())
    }

    /// Moves all queued frames into the owner shard's write buffer.
    pub(crate) fn drain_into(&self, out: &mut VecDeque<Bytes>) {
        let mut q = self.q.lock().expect("tcp outbound lock");
        out.extend(q.drain(..));
    }

    /// Accounts `n` bytes as written to the socket.
    pub(crate) fn note_written(&self, n: u64) {
        self.queued_bytes.fetch_sub(n, Ordering::Relaxed);
    }

    /// Clears the flush-scheduling flag; called by the owner shard right
    /// before draining so a concurrent push re-schedules.
    pub(crate) fn begin_flush(&self) {
        self.flush_armed.store(false, Ordering::Release);
    }

    /// Redirects future flush scheduling at the owner shard (CONNECT-time
    /// migration from the connection's home shard).
    pub(crate) fn retarget(&self, sched: Arc<WriteScheduler>) {
        *self.sched.lock().expect("tcp sched lock") = sched;
    }

    /// True once the write queue crossed the eviction watermark.
    pub(crate) fn is_evicted(&self) -> bool {
        self.evicted.load(Ordering::Acquire)
    }

    /// Returns true exactly once for an evicted connection (counter gate).
    pub(crate) fn take_eviction_count(&self) -> bool {
        self.is_evicted() && !self.eviction_counted.swap(true, Ordering::AcqRel)
    }

    /// Marks the connection closed: future pushes fail fast.
    pub(crate) fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Client-side TCP link pump
// ---------------------------------------------------------------------

/// Dials a broker's TCP listener and adapts the socket into a [`LinkEnd`],
/// so the threaded [`crate::client::Client`] (and any [`LinkEnd`]-based
/// code) can speak to a remote broker unchanged. Two pump threads carry
/// frames between the socket and the link; they exit when either side
/// closes. This is the *client*-side convenience — the broker side stays
/// thread-free per connection (see [`crate::reactor`]).
pub fn tcp_link(addr: impl ToSocketAddrs) -> Result<LinkEnd> {
    let stream = TcpStream::connect(addr).map_err(|_| MqttError::Disconnected)?;
    let _ = stream.set_nodelay(true);
    let (app_end, pump_end) = link();
    let (pump_tx, pump_rx) = pump_end.split();
    let reader = stream.try_clone().map_err(|_| MqttError::Disconnected)?;

    std::thread::Builder::new()
        .name("tcp-link-rx".to_owned())
        .spawn(move || {
            let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
            let mut chunk = [0u8; 16384];
            let mut reader = reader;
            'read: loop {
                match reader.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                }
                loop {
                    match codec::frame_length(&rbuf) {
                        Ok(Some(len)) if rbuf.len() >= len => {
                            let frame: Vec<u8> = rbuf.drain(..len).collect();
                            if pump_tx.send_frame(Bytes::from(frame)).is_err() {
                                break 'read;
                            }
                        }
                        Ok(_) => break,
                        Err(_) => break 'read,
                    }
                }
            }
            let _ = reader.shutdown(std::net::Shutdown::Both);
            // pump_tx drops here: the app end observes Disconnected.
        })
        .map_err(|_| MqttError::Disconnected)?;

    std::thread::Builder::new()
        .name("tcp-link-tx".to_owned())
        .spawn(move || {
            let mut stream = stream;
            while let Ok(frame) = pump_rx.recv_frame() {
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
            let _ = stream.shutdown(std::net::Shutdown::Both);
        })
        .map_err(|_| MqttError::Disconnected)?;

    Ok(app_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Publish};
    use crate::topic::TopicName;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn frames_flow_both_directions() {
        let (a, b) = link();
        a.send_frame(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(b.recv_frame().unwrap(), Bytes::from_static(b"hello"));
        b.send_frame(Bytes::from_static(b"world")).unwrap();
        assert_eq!(a.recv_frame().unwrap(), Bytes::from_static(b"world"));
    }

    #[test]
    fn packets_roundtrip_over_link() {
        let (a, b) = link();
        let p = Packet::Publish(Publish::simple(
            TopicName::new("x/y").unwrap(),
            b"payload".to_vec(),
        ));
        a.send_packet(&p).unwrap();
        assert_eq!(b.recv_packet().unwrap(), p);
    }

    #[test]
    fn recv_timeout_fires() {
        let (a, _b) = link();
        let err = a.recv_frame_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, MqttError::Timeout);
    }

    #[test]
    fn dropped_peer_disconnects() {
        let (a, b) = link();
        drop(b);
        assert_eq!(
            a.send_frame(Bytes::from_static(b"x")).unwrap_err(),
            MqttError::Disconnected
        );
        assert_eq!(a.recv_frame().unwrap_err(), MqttError::Disconnected);
    }

    #[test]
    fn stats_attribute_directions() {
        let (a, b) = link();
        a.send_frame(Bytes::from_static(b"12345")).unwrap();
        a.send_frame(Bytes::from_static(b"1")).unwrap();
        b.send_frame(Bytes::from_static(b"22")).unwrap();
        let stats = a.stats();
        assert_eq!(stats.a_to_b_frames.load(Ordering::Relaxed), 2);
        assert_eq!(stats.a_to_b_bytes.load(Ordering::Relaxed), 6);
        assert_eq!(stats.b_to_a_frames.load(Ordering::Relaxed), 1);
        assert_eq!(stats.b_to_a_bytes.load(Ordering::Relaxed), 2);
        assert_eq!(stats.total_bytes(), 8);
        assert_eq!(stats.total_frames(), 3);
    }

    #[test]
    fn threaded_pingpong() {
        let (a, b) = link();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                let f = b.recv_frame().unwrap();
                b.send_frame(f).unwrap();
            }
        });
        for i in 0..100u32 {
            let msg = Bytes::from(i.to_be_bytes().to_vec());
            a.send_frame(msg.clone()).unwrap();
            assert_eq!(a.recv_frame().unwrap(), msg);
        }
        t.join().unwrap();
    }

    #[test]
    fn incoming_notify_fires_per_send_and_on_drop() {
        let (client, broker) = link();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        broker.set_incoming_notify(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        client.send_frame(Bytes::from_static(b"a")).unwrap();
        client.send_frame(Bytes::from_static(b"b")).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        drop(client);
        // The drop of the client's send handle fires the hook once more,
        // so the broker probes the (now disconnected) channel.
        assert!(hits.load(Ordering::SeqCst) >= 3);
        let (_tx, rx) = broker.split();
        assert!(matches!(rx.try_recv_frame(), TryRecv::Frame(_)));
        assert!(matches!(rx.try_recv_frame(), TryRecv::Frame(_)));
        assert!(matches!(rx.try_recv_frame(), TryRecv::Closed));
    }

    #[test]
    fn split_sender_still_fires_notify() {
        let (client, broker) = link();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        broker.set_incoming_notify(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let (tx, _rx) = client.split();
        tx.send_frame(Bytes::from_static(b"x")).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        drop(tx);
        assert!(hits.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn tcp_outbound_evicts_past_watermark() {
        let (wake, _recv) = crate::reactor::waker().unwrap();
        let sched = Arc::new(WriteScheduler::new(wake));
        let out = TcpOutbound::new(1, 10, Arc::clone(&sched));
        let tx = FrameSender::from_tcp(Arc::clone(&out));
        tx.send_frame(Bytes::from_static(b"123456")).unwrap();
        assert!(!out.is_evicted());
        // Crossing the 10-byte watermark marks the slow consumer.
        tx.send_frame(Bytes::from_static(b"789abc")).unwrap();
        assert!(out.is_evicted());
        assert_eq!(
            tx.send_frame(Bytes::from_static(b"x")).unwrap_err(),
            MqttError::Disconnected
        );
        assert!(out.take_eviction_count());
        assert!(!out.take_eviction_count(), "counted exactly once");
        // Both frames were scheduled as one flush pass.
        assert_eq!(sched.take(), vec![1]);
    }
}
