//! In-process transport links.
//!
//! A [`Link`] is a bidirectional, ordered, reliable byte-frame pipe built
//! from two crossbeam channels — the in-process stand-in for a TCP
//! connection. Every frame that crosses a link is a complete MQTT packet
//! encoded by [`crate::codec`], so the wire format is exercised end-to-end
//! even though no sockets are involved.
//!
//! Links can optionally carry a [`LinkShaper`] that models per-link latency
//! and bandwidth by *recording* the bytes sent; the virtual-time experiment
//! harness (crate `sdflmq-sim`) uses these counters to compute transfer
//! delays without real sleeps.

use crate::codec;
use crate::error::{MqttError, Result};
use crate::packet::Packet;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Traffic counters shared by both ends of a link.
///
/// Counters use `Relaxed` ordering: they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Frames sent from the A side to the B side.
    pub a_to_b_frames: AtomicU64,
    /// Bytes sent from the A side to the B side.
    pub a_to_b_bytes: AtomicU64,
    /// Frames sent from the B side to the A side.
    pub b_to_a_frames: AtomicU64,
    /// Bytes sent from the B side to the A side.
    pub b_to_a_bytes: AtomicU64,
}

impl LinkStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.a_to_b_bytes.load(Ordering::Relaxed) + self.b_to_a_bytes.load(Ordering::Relaxed)
    }

    /// Total frames in both directions.
    pub fn total_frames(&self) -> u64 {
        self.a_to_b_frames.load(Ordering::Relaxed) + self.b_to_a_frames.load(Ordering::Relaxed)
    }
}

/// One end of a bidirectional frame pipe.
///
/// Cloning a `LinkEnd` yields another handle to the *same* end (crossbeam
/// channels are MPMC), which lets a broker keep the send half while a reader
/// thread owns the receive loop.
#[derive(Clone)]
pub struct LinkEnd {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    stats: Arc<LinkStats>,
    /// True for the A side (used to attribute stats direction).
    a_side: bool,
}

impl std::fmt::Debug for LinkEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkEnd")
            .field("a_side", &self.a_side)
            .finish_non_exhaustive()
    }
}

/// Creates a connected pair of link ends with unbounded buffering.
pub fn link() -> (LinkEnd, LinkEnd) {
    link_with_capacity(None)
}

/// Creates a connected pair of link ends.
///
/// `capacity` bounds each direction's in-flight frame queue; `None` means
/// unbounded. A bounded link applies backpressure: sends block when full,
/// which mimics TCP flow control.
pub fn link_with_capacity(capacity: Option<usize>) -> (LinkEnd, LinkEnd) {
    let (a_tx, b_rx) = match capacity {
        Some(c) => bounded(c),
        None => unbounded(),
    };
    let (b_tx, a_rx) = match capacity {
        Some(c) => bounded(c),
        None => unbounded(),
    };
    let stats = Arc::new(LinkStats::default());
    (
        LinkEnd {
            tx: a_tx,
            rx: a_rx,
            stats: Arc::clone(&stats),
            a_side: true,
        },
        LinkEnd {
            tx: b_tx,
            rx: b_rx,
            stats,
            a_side: false,
        },
    )
}

impl LinkEnd {
    /// Sends a raw frame. Blocks if the link is bounded and full.
    pub fn send_frame(&self, frame: Bytes) -> Result<()> {
        self.record_sent(frame.len());
        self.tx.send(frame).map_err(|_| MqttError::Disconnected)
    }

    /// Attempts to send without blocking; returns the frame on a full queue.
    pub fn try_send_frame(&self, frame: Bytes) -> std::result::Result<(), TrySendError<Bytes>> {
        let len = frame.len();
        self.tx.try_send(frame).inspect(|_| self.record_sent(len))
    }

    /// Encodes and sends one packet.
    pub fn send_packet(&self, packet: &Packet) -> Result<()> {
        self.send_frame(codec::encode(packet)?)
    }

    /// Receives one raw frame, blocking until available or the peer is gone.
    pub fn recv_frame(&self) -> Result<Bytes> {
        self.rx.recv().map_err(|_| MqttError::Disconnected)
    }

    /// Receives one raw frame with a timeout.
    pub fn recv_frame_timeout(&self, timeout: Duration) -> Result<Bytes> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => MqttError::Timeout,
            RecvTimeoutError::Disconnected => MqttError::Disconnected,
        })
    }

    /// Receives and decodes one packet, blocking.
    pub fn recv_packet(&self) -> Result<Packet> {
        let frame = self.recv_frame()?;
        let (packet, _) = codec::decode(&frame)?;
        Ok(packet)
    }

    /// Receives and decodes one packet with a timeout.
    pub fn recv_packet_timeout(&self, timeout: Duration) -> Result<Packet> {
        let frame = self.recv_frame_timeout(timeout)?;
        let (packet, _) = codec::decode(&frame)?;
        Ok(packet)
    }

    /// Shared traffic counters for this link.
    pub fn stats(&self) -> &Arc<LinkStats> {
        &self.stats
    }

    /// True if the peer end has been dropped.
    pub fn is_closed(&self) -> bool {
        // A send to a channel with no receiver fails; probe cheaply via the
        // receiver side (closed when the sender half is dropped *and* empty).
        self.tx.is_full() && self.tx.capacity() == Some(0)
    }

    fn record_sent(&self, len: usize) {
        if self.a_side {
            self.stats.a_to_b_frames.fetch_add(1, Ordering::Relaxed);
            self.stats
                .a_to_b_bytes
                .fetch_add(len as u64, Ordering::Relaxed);
        } else {
            self.stats.b_to_a_frames.fetch_add(1, Ordering::Relaxed);
            self.stats
                .b_to_a_bytes
                .fetch_add(len as u64, Ordering::Relaxed);
        }
    }

    /// Splits the end into independent send and receive halves.
    ///
    /// This matters for closure detection: when every [`FrameSender`] for a
    /// direction is dropped, the peer's receive calls return
    /// [`MqttError::Disconnected`]. Keeping a whole `LinkEnd` clone alive in
    /// a reader thread would pin the send half and mask closures.
    pub fn split(self) -> (FrameSender, FrameReceiver) {
        (
            FrameSender {
                tx: self.tx,
                stats: self.stats,
                a_side: self.a_side,
            },
            FrameReceiver { rx: self.rx },
        )
    }
}

/// Send-only half of a link end.
#[derive(Clone)]
pub struct FrameSender {
    tx: Sender<Bytes>,
    stats: Arc<LinkStats>,
    a_side: bool,
}

impl std::fmt::Debug for FrameSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameSender")
            .field("a_side", &self.a_side)
            .finish_non_exhaustive()
    }
}

impl FrameSender {
    /// Sends a raw frame.
    pub fn send_frame(&self, frame: Bytes) -> Result<()> {
        if self.a_side {
            self.stats.a_to_b_frames.fetch_add(1, Ordering::Relaxed);
            self.stats
                .a_to_b_bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        } else {
            self.stats.b_to_a_frames.fetch_add(1, Ordering::Relaxed);
            self.stats
                .b_to_a_bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
        self.tx.send(frame).map_err(|_| MqttError::Disconnected)
    }

    /// Encodes and sends one packet.
    pub fn send_packet(&self, packet: &Packet) -> Result<()> {
        self.send_frame(codec::encode(packet)?)
    }

    /// Shared traffic counters for this link.
    pub fn stats(&self) -> &Arc<LinkStats> {
        &self.stats
    }
}

/// Receive-only half of a link end.
pub struct FrameReceiver {
    rx: Receiver<Bytes>,
}

impl FrameReceiver {
    /// Receives one raw frame, blocking until available or the peer's send
    /// half is fully dropped.
    pub fn recv_frame(&self) -> Result<Bytes> {
        self.rx.recv().map_err(|_| MqttError::Disconnected)
    }

    /// Receives one raw frame with a timeout.
    pub fn recv_frame_timeout(&self, timeout: Duration) -> Result<Bytes> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => MqttError::Timeout,
            RecvTimeoutError::Disconnected => MqttError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Publish};
    use crate::topic::TopicName;

    #[test]
    fn frames_flow_both_directions() {
        let (a, b) = link();
        a.send_frame(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(b.recv_frame().unwrap(), Bytes::from_static(b"hello"));
        b.send_frame(Bytes::from_static(b"world")).unwrap();
        assert_eq!(a.recv_frame().unwrap(), Bytes::from_static(b"world"));
    }

    #[test]
    fn packets_roundtrip_over_link() {
        let (a, b) = link();
        let p = Packet::Publish(Publish::simple(
            TopicName::new("x/y").unwrap(),
            b"payload".to_vec(),
        ));
        a.send_packet(&p).unwrap();
        assert_eq!(b.recv_packet().unwrap(), p);
    }

    #[test]
    fn recv_timeout_fires() {
        let (a, _b) = link();
        let err = a.recv_frame_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, MqttError::Timeout);
    }

    #[test]
    fn dropped_peer_disconnects() {
        let (a, b) = link();
        drop(b);
        assert_eq!(
            a.send_frame(Bytes::from_static(b"x")).unwrap_err(),
            MqttError::Disconnected
        );
        assert_eq!(a.recv_frame().unwrap_err(), MqttError::Disconnected);
    }

    #[test]
    fn stats_attribute_directions() {
        let (a, b) = link();
        a.send_frame(Bytes::from_static(b"12345")).unwrap();
        a.send_frame(Bytes::from_static(b"1")).unwrap();
        b.send_frame(Bytes::from_static(b"22")).unwrap();
        let stats = a.stats();
        assert_eq!(stats.a_to_b_frames.load(Ordering::Relaxed), 2);
        assert_eq!(stats.a_to_b_bytes.load(Ordering::Relaxed), 6);
        assert_eq!(stats.b_to_a_frames.load(Ordering::Relaxed), 1);
        assert_eq!(stats.b_to_a_bytes.load(Ordering::Relaxed), 2);
        assert_eq!(stats.total_bytes(), 8);
        assert_eq!(stats.total_frames(), 3);
    }

    #[test]
    fn threaded_pingpong() {
        let (a, b) = link();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                let f = b.recv_frame().unwrap();
                b.send_frame(f).unwrap();
            }
        });
        for i in 0..100u32 {
            let msg = Bytes::from(i.to_be_bytes().to_vec());
            a.send_frame(msg.clone()).unwrap();
            assert_eq!(a.recv_frame().unwrap(), msg);
        }
        t.join().unwrap();
    }
}
