//! High-level MQTT client.
//!
//! The client owns three threads:
//!
//! * a **reader** that decodes frames, answers protocol handshakes
//!   (PUBACK/PUBREC/PUBREL/PUBCOMP), resolves pending operation waiters, and
//!   forwards application messages to the dispatcher;
//! * a **dispatcher** that runs registered topic handlers — kept off the
//!   reader thread so a handler may itself publish (even QoS 1/2) without
//!   deadlocking the acknowledgement path;
//! * an optional **pinger** that emits PINGREQ at half the keep-alive
//!   interval.
//!
//! Messages that match no registered handler land in a default inbox
//! readable via [`Client::recv_timeout`].
//!
//! When a [`Dialer`] is configured the reader thread additionally owns
//! **reconnection**: on transport loss it redials the broker, replays the
//! CONNECT handshake, and — if the broker reports no stored session —
//! re-issues every tracked subscription, so a broker restart is invisible
//! to application code beyond a window of failed or timed-out calls.

use crate::broker::Broker;
use crate::codec;
use crate::error::{ConnectReturnCode, MqttError, Result};
use crate::packet::*;
use crate::topic::{TopicFilter, TopicName};
use crate::transport::{FrameReceiver, FrameSender, LinkEnd};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handler invoked for each message matching a subscription filter.
pub type MessageHandler = Arc<dyn Fn(&Publish) + Send + Sync>;

/// Factory producing a fresh transport link to the broker.
///
/// Installed via [`ClientOptions::dialer`], it turns the client into an
/// auto-reconnecting one: the reader thread calls the dialer after a
/// transport loss until it yields a link whose CONNECT handshake is
/// accepted. Returning an error means "broker unavailable right now";
/// the client retries after a short backoff.
pub type Dialer = Arc<dyn Fn() -> Result<LinkEnd> + Send + Sync>;

/// Client configuration.
#[derive(Clone)]
pub struct ClientOptions {
    /// Unique client identifier.
    pub client_id: String,
    /// Discard session state on connect/disconnect.
    pub clean_session: bool,
    /// Keep-alive interval in seconds (0 disables pinging).
    pub keep_alive: u16,
    /// Optional last-will registration.
    pub will: Option<LastWill>,
    /// How long blocking operations wait for broker acknowledgements.
    pub response_timeout: Duration,
    /// Optional redial factory enabling automatic reconnection.
    pub dialer: Option<Dialer>,
}

impl ClientOptions {
    /// Sensible defaults for an id: clean session, no keep-alive, 5 s acks.
    pub fn new(client_id: impl Into<String>) -> Self {
        ClientOptions {
            client_id: client_id.into(),
            clean_session: true,
            keep_alive: 0,
            will: None,
            response_timeout: Duration::from_secs(5),
            dialer: None,
        }
    }

    /// Installs a redial factory: the client reconnects (and re-subscribes
    /// when the broker lost the session) after transport failures.
    pub fn with_dialer(mut self, dialer: Dialer) -> Self {
        self.dialer = Some(dialer);
        self
    }
}

/// A [`Dialer`] that opens a real TCP connection to `addr` on every dial
/// (pair with [`crate::broker::Broker::listen`]).
pub fn tcp_dialer(addr: std::net::SocketAddr) -> Dialer {
    Arc::new(move || crate::transport::tcp_link(addr))
}

struct Pending {
    tx: Sender<Packet>,
}

struct Inner {
    /// Current transport send half; swapped wholesale on reconnect.
    sender: RwLock<FrameSender>,
    client_id: String,
    connected: AtomicBool,
    /// Set by [`Client::disconnect`]: suppresses redialing for good.
    closed: AtomicBool,
    response_timeout: Duration,
    /// CONNECT parameters replayed on every redial.
    clean_session: bool,
    keep_alive: u16,
    will: Option<LastWill>,
    dialer: Option<Dialer>,
    /// Waiters for QoS publish acks, keyed by packet id.
    pending_pub: Mutex<HashMap<PacketId, Pending>>,
    /// Waiters for SUBACK/UNSUBACK, keyed by packet id.
    pending_sub: Mutex<HashMap<PacketId, Pending>>,
    /// Inbound QoS 2 messages held until PUBREL.
    inbound_qos2: Mutex<HashMap<PacketId, Publish>>,
    /// Registered (filter, handler) pairs, scanned per delivery.
    handlers: RwLock<Vec<(TopicFilter, MessageHandler)>>,
    /// Granted subscriptions, replayed when a redialed broker reports no
    /// stored session (`session_present == false`).
    subs: Mutex<HashMap<TopicFilter, QoS>>,
    /// Default inbox for messages with no matching handler.
    inbox_tx: Sender<Publish>,
    /// Packet id allocator.
    next_id: Mutex<PacketId>,
    /// Dispatch queue feeding the handler thread.
    dispatch_tx: Sender<Publish>,
}

impl Inner {
    fn alloc_id(&self) -> PacketId {
        let mut next = self.next_id.lock();
        let pending = self.pending_pub.lock();
        for _ in 0..=u16::MAX {
            let id = *next;
            *next = next.wrapping_add(1);
            if *next == 0 {
                *next = 1;
            }
            if id != 0 && !pending.contains_key(&id) {
                return id;
            }
        }
        1
    }

    fn send(&self, packet: &Packet) -> Result<()> {
        self.sender.read().send_packet(packet)
    }
}

/// A connected MQTT client. Clone-cheap (`Arc` inside).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
    inbox_rx: Receiver<Publish>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("client_id", &self.inner.client_id)
            .finish()
    }
}

impl Client {
    /// Connects to a broker and completes the CONNECT/CONNACK handshake.
    pub fn connect(broker: &Broker, options: ClientOptions) -> Result<Client> {
        let link = broker.connect_transport()?;
        Client::connect_link(link, options)
    }

    /// Connects over an already-established transport link (used by bridges
    /// and tests that interpose on the transport).
    pub fn connect_link(link: LinkEnd, options: ClientOptions) -> Result<Client> {
        if options.client_id.is_empty() {
            return Err(MqttError::InvalidClientId(options.client_id));
        }
        let (sender, receiver) = link.split();
        sender.send_packet(&Packet::Connect(Connect {
            client_id: options.client_id.clone(),
            clean_session: options.clean_session,
            keep_alive: options.keep_alive,
            will: options.will.clone(),
        }))?;
        // Handshake runs synchronously before the reader thread exists.
        let connack = loop {
            let frame = receiver.recv_frame_timeout(options.response_timeout)?;
            let (packet, _) = codec::decode(&frame)?;
            match packet {
                Packet::Connack(c) => break c,
                _ => continue,
            }
        };
        if connack.code != ConnectReturnCode::Accepted {
            return Err(MqttError::ConnectionRefused(connack.code));
        }

        let (inbox_tx, inbox_rx) = unbounded();
        let (dispatch_tx, dispatch_rx) = unbounded::<Publish>();
        let inner = Arc::new(Inner {
            sender: RwLock::new(sender),
            client_id: options.client_id.clone(),
            connected: AtomicBool::new(true),
            closed: AtomicBool::new(false),
            response_timeout: options.response_timeout,
            clean_session: options.clean_session,
            keep_alive: options.keep_alive,
            will: options.will.clone(),
            dialer: options.dialer.clone(),
            pending_pub: Mutex::new(HashMap::new()),
            pending_sub: Mutex::new(HashMap::new()),
            inbound_qos2: Mutex::new(HashMap::new()),
            handlers: RwLock::new(Vec::new()),
            subs: Mutex::new(HashMap::new()),
            inbox_tx,
            next_id: Mutex::new(1),
            dispatch_tx,
        });

        // Dispatcher thread: runs handlers off the reader thread.
        let dispatch_inner = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name(format!("{}-dispatch", options.client_id))
            .spawn(move || {
                while let Ok(publish) = dispatch_rx.recv() {
                    let Some(inner) = dispatch_inner.upgrade() else {
                        return;
                    };
                    // Snapshot matching handlers, then release the lock
                    // before invoking them: a handler may itself subscribe
                    // (taking the write lock) without deadlocking.
                    let matching: Vec<MessageHandler> = {
                        let handlers = inner.handlers.read();
                        handlers
                            .iter()
                            .filter(|(filter, _)| filter.matches(&publish.topic))
                            .map(|(_, handler)| Arc::clone(handler))
                            .collect()
                    };
                    if matching.is_empty() {
                        let _ = inner.inbox_tx.send(publish);
                    } else {
                        for handler in matching {
                            handler(&publish);
                        }
                    }
                }
            })
            .expect("spawn dispatcher");

        // Reader thread: protocol handling plus (with a dialer) reconnection.
        let reader_inner = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name(format!("{}-reader", options.client_id))
            .spawn(move || {
                let mut receiver = receiver;
                loop {
                    let frame = match receiver.recv_frame() {
                        Ok(f) => f,
                        Err(_) => {
                            let Some(inner) = reader_inner.upgrade() else {
                                return;
                            };
                            inner.connected.store(false, Ordering::Release);
                            drop(inner);
                            match Self::redial(&reader_inner) {
                                Some(r) => {
                                    receiver = r;
                                    continue;
                                }
                                None => return,
                            }
                        }
                    };
                    let Some(inner) = reader_inner.upgrade() else {
                        return;
                    };
                    let mut rest: Bytes = frame;
                    while let Ok((packet, used)) = codec::decode(&rest) {
                        Self::handle_packet(&inner, packet);
                        if used >= rest.len() {
                            break;
                        }
                        rest = rest.slice(used..);
                    }
                }
            })
            .expect("spawn reader");

        // Pinger thread. With a dialer it outlives individual connections:
        // send failures mark the client disconnected and pinging resumes
        // once the reader re-establishes the transport.
        if options.keep_alive > 0 {
            let ping_inner = Arc::downgrade(&inner);
            let redials = options.dialer.is_some();
            let interval = Duration::from_secs_f64((options.keep_alive as f64 / 2.0).max(0.1));
            std::thread::Builder::new()
                .name(format!("{}-pinger", options.client_id))
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    let Some(inner) = ping_inner.upgrade() else {
                        return;
                    };
                    if inner.closed.load(Ordering::Acquire) {
                        return;
                    }
                    if !inner.connected.load(Ordering::Acquire) {
                        if redials {
                            continue;
                        }
                        return;
                    }
                    if inner.send(&Packet::Pingreq).is_err() {
                        inner.connected.store(false, Ordering::Release);
                        if !redials {
                            return;
                        }
                    }
                })
                .expect("spawn pinger");
        }

        Ok(Client { inner, inbox_rx })
    }

    /// Redial loop run by the reader thread after a transport loss.
    ///
    /// Returns the receive half of the fresh link, or `None` when the
    /// client should stop for good (no dialer configured, explicit
    /// [`Client::disconnect`], or every `Client` handle dropped).
    fn redial(weak: &std::sync::Weak<Inner>) -> Option<FrameReceiver> {
        loop {
            let inner = weak.upgrade()?;
            if inner.closed.load(Ordering::Acquire) {
                return None;
            }
            let dialer = inner.dialer.clone()?;
            let attempt = (|| -> Result<FrameReceiver> {
                let link = dialer()?;
                let (sender, receiver) = link.split();
                sender.send_packet(&Packet::Connect(Connect {
                    client_id: inner.client_id.clone(),
                    clean_session: inner.clean_session,
                    keep_alive: inner.keep_alive,
                    will: inner.will.clone(),
                }))?;
                let connack = loop {
                    let frame = receiver.recv_frame_timeout(inner.response_timeout)?;
                    let (packet, _) = codec::decode(&frame)?;
                    match packet {
                        Packet::Connack(c) => break c,
                        _ => continue,
                    }
                };
                if connack.code != ConnectReturnCode::Accepted {
                    return Err(MqttError::ConnectionRefused(connack.code));
                }
                *inner.sender.write() = sender;
                if !connack.session_present {
                    // The broker has no session for us (clean connect or
                    // state lost): replay every granted subscription.
                    // Fire-and-forget — the SUBACKs arrive once this
                    // receiver is handed back to the read loop, and
                    // unclaimed acks are ignored by `handle_packet`.
                    let mut subs: Vec<(TopicFilter, QoS)> = inner
                        .subs
                        .lock()
                        .iter()
                        .map(|(f, q)| (f.clone(), *q))
                        .collect();
                    subs.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
                    for (filter, qos) in subs {
                        let id = inner.alloc_id();
                        inner.send(&Packet::Subscribe(Subscribe {
                            packet_id: id,
                            filters: vec![(filter, qos)],
                        }))?;
                    }
                }
                inner.connected.store(true, Ordering::Release);
                Ok(receiver)
            })();
            drop(inner);
            match attempt {
                Ok(receiver) => return Some(receiver),
                // Broker still down (or mid-restart); back off briefly.
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    fn handle_packet(inner: &Arc<Inner>, packet: Packet) {
        match packet {
            Packet::Publish(p) => match p.qos {
                QoS::AtMostOnce => {
                    let _ = inner.dispatch_tx.send(p);
                }
                QoS::AtLeastOnce => {
                    let id = p.packet_id.unwrap_or(0);
                    let _ = inner.dispatch_tx.send(p);
                    let _ = inner.send(&Packet::Puback(id));
                }
                QoS::ExactlyOnce => {
                    let id = p.packet_id.unwrap_or(0);
                    // Hold until PUBREL; replacing an existing entry
                    // implements duplicate suppression.
                    inner.inbound_qos2.lock().insert(id, p);
                    let _ = inner.send(&Packet::Pubrec(id));
                }
            },
            Packet::Pubrel(id) => {
                if let Some(p) = inner.inbound_qos2.lock().remove(&id) {
                    let _ = inner.dispatch_tx.send(p);
                }
                let _ = inner.send(&Packet::Pubcomp(id));
            }
            Packet::Puback(id) | Packet::Pubcomp(id) => {
                let waiter = inner.pending_pub.lock().remove(&id);
                if let Some(w) = waiter {
                    let _ = w.tx.send(if matches!(packet, Packet::Puback(_)) {
                        Packet::Puback(id)
                    } else {
                        Packet::Pubcomp(id)
                    });
                }
            }
            Packet::Pubrec(id) => {
                // Forward the intermediate ack to the waiter but keep the
                // entry: PUBCOMP arrives later.
                let guard = inner.pending_pub.lock();
                if let Some(w) = guard.get(&id) {
                    let _ = w.tx.send(Packet::Pubrec(id));
                }
                drop(guard);
                let _ = inner.send(&Packet::Pubrel(id));
            }
            Packet::Suback(s) => {
                let waiter = inner.pending_sub.lock().remove(&s.packet_id);
                if let Some(w) = waiter {
                    let _ = w.tx.send(Packet::Suback(s));
                }
            }
            Packet::Unsuback(id) => {
                let waiter = inner.pending_sub.lock().remove(&id);
                if let Some(w) = waiter {
                    let _ = w.tx.send(Packet::Unsuback(id));
                }
            }
            Packet::Pingresp => {}
            // Broker-bound packets should never arrive here; ignore.
            _ => {}
        }
    }

    /// The client identifier.
    pub fn client_id(&self) -> &str {
        &self.inner.client_id
    }

    /// True while the transport is up.
    pub fn is_connected(&self) -> bool {
        self.inner.connected.load(Ordering::Acquire)
    }

    /// Publishes a message. Blocks until the QoS handshake completes
    /// (QoS 0 returns immediately after the frame is sent).
    pub fn publish(
        &self,
        topic: &TopicName,
        payload: impl Into<Bytes>,
        qos: QoS,
        retain: bool,
    ) -> Result<()> {
        self.ensure_connected()?;
        match qos {
            QoS::AtMostOnce => self.inner.send(&Packet::Publish(Publish {
                dup: false,
                qos,
                retain,
                topic: topic.clone(),
                packet_id: None,
                payload: payload.into(),
            })),
            QoS::AtLeastOnce => {
                let id = self.inner.alloc_id();
                let rx = self.register_pub_waiter(id);
                self.inner.send(&Packet::Publish(Publish {
                    dup: false,
                    qos,
                    retain,
                    topic: topic.clone(),
                    packet_id: Some(id),
                    payload: payload.into(),
                }))?;
                match self.await_ack(&rx, id)? {
                    Packet::Puback(_) => Ok(()),
                    other => Err(unexpected(other)),
                }
            }
            QoS::ExactlyOnce => {
                let id = self.inner.alloc_id();
                let rx = self.register_pub_waiter(id);
                self.inner.send(&Packet::Publish(Publish {
                    dup: false,
                    qos,
                    retain,
                    topic: topic.clone(),
                    packet_id: Some(id),
                    payload: payload.into(),
                }))?;
                match self.await_ack(&rx, id)? {
                    Packet::Pubrec(_) => {}
                    other => return Err(unexpected(other)),
                }
                match self.await_ack(&rx, id)? {
                    Packet::Pubcomp(_) => Ok(()),
                    other => Err(unexpected(other)),
                }
            }
        }
    }

    /// Publishes to a topic given as a string (validated here).
    pub fn publish_str(
        &self,
        topic: &str,
        payload: impl Into<Bytes>,
        qos: QoS,
        retain: bool,
    ) -> Result<()> {
        self.publish(&TopicName::new(topic)?, payload, qos, retain)
    }

    /// Subscribes to a filter; messages with no registered handler go to
    /// the default inbox. Returns the granted QoS.
    pub fn subscribe(&self, filter: &TopicFilter, qos: QoS) -> Result<QoS> {
        self.ensure_connected()?;
        let id = self.inner.alloc_id();
        let (tx, rx) = bounded(2);
        self.inner.pending_sub.lock().insert(id, Pending { tx });
        self.inner.send(&Packet::Subscribe(Subscribe {
            packet_id: id,
            filters: vec![(filter.clone(), qos)],
        }))?;
        let ack = rx
            .recv_timeout(self.inner.response_timeout)
            .map_err(|_| MqttError::Timeout)?;
        match ack {
            Packet::Suback(s) => match s.return_codes.first() {
                Some(SubackCode::Granted(granted)) => {
                    // Remember the *requested* QoS so a post-crash replay
                    // asks for the same grant.
                    self.inner.subs.lock().insert(filter.clone(), qos);
                    Ok(*granted)
                }
                _ => Err(MqttError::Malformed("subscription refused")),
            },
            other => Err(unexpected(other)),
        }
    }

    /// Subscribes and registers a handler invoked for every matching
    /// message (on the dispatcher thread).
    pub fn subscribe_with(
        &self,
        filter: &TopicFilter,
        qos: QoS,
        handler: MessageHandler,
    ) -> Result<QoS> {
        // Register the handler before the wire subscribe so retained
        // replays are not lost to the default inbox.
        self.inner.handlers.write().push((filter.clone(), handler));
        self.subscribe(filter, qos)
    }

    /// Subscribes with a string filter.
    pub fn subscribe_str(&self, filter: &str, qos: QoS) -> Result<QoS> {
        self.subscribe(&TopicFilter::new(filter)?, qos)
    }

    /// Removes a subscription (and any handlers registered for the exact
    /// same filter).
    pub fn unsubscribe(&self, filter: &TopicFilter) -> Result<()> {
        self.ensure_connected()?;
        self.inner.handlers.write().retain(|(f, _)| f != filter);
        self.inner.subs.lock().remove(filter);
        let id = self.inner.alloc_id();
        let (tx, rx) = bounded(2);
        self.inner.pending_sub.lock().insert(id, Pending { tx });
        self.inner.send(&Packet::Unsubscribe(Unsubscribe {
            packet_id: id,
            filters: vec![filter.clone()],
        }))?;
        rx.recv_timeout(self.inner.response_timeout)
            .map_err(|_| MqttError::Timeout)?;
        Ok(())
    }

    /// Pops one message from the default inbox, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Publish> {
        self.inbox_rx
            .recv_timeout(timeout)
            .map_err(|_| MqttError::Timeout)
    }

    /// Attempts to pop one message from the default inbox without blocking.
    pub fn try_recv(&self) -> Option<Publish> {
        self.inbox_rx.try_recv().ok()
    }

    /// Sends a graceful DISCONNECT. The broker will drop the connection and
    /// suppress the last will. Auto-reconnecting clients stop redialing.
    pub fn disconnect(&self) -> Result<()> {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.connected.store(false, Ordering::Release);
        self.inner.send(&Packet::Disconnect)
    }

    fn ensure_connected(&self) -> Result<()> {
        if self.is_connected() {
            Ok(())
        } else {
            Err(MqttError::NotConnected)
        }
    }

    fn register_pub_waiter(&self, id: PacketId) -> Receiver<Packet> {
        let (tx, rx) = bounded(2);
        self.inner.pending_pub.lock().insert(id, Pending { tx });
        rx
    }

    fn await_ack(&self, rx: &Receiver<Packet>, id: PacketId) -> Result<Packet> {
        rx.recv_timeout(self.inner.response_timeout).map_err(|_| {
            self.inner.pending_pub.lock().remove(&id);
            MqttError::Timeout
        })
    }
}

fn unexpected(p: Packet) -> MqttError {
    let _ = p;
    MqttError::Malformed("unexpected acknowledgement packet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use std::sync::atomic::AtomicUsize;

    fn topic(s: &str) -> TopicName {
        TopicName::new(s).unwrap()
    }
    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).unwrap()
    }

    #[test]
    fn publish_subscribe_qos0() {
        let broker = Broker::start_default();
        let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
        sub.subscribe(&filter("a/#"), QoS::AtMostOnce).unwrap();
        let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        publ.publish(&topic("a/b"), b"hi".as_slice(), QoS::AtMostOnce, false)
            .unwrap();
        let got = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"hi"));
    }

    #[test]
    fn publish_qos1_blocks_until_ack() {
        let broker = Broker::start_default();
        let c = Client::connect(&broker, ClientOptions::new("c")).unwrap();
        // No subscriber needed: the broker still acks.
        c.publish(&topic("t"), b"x".as_slice(), QoS::AtLeastOnce, false)
            .unwrap();
    }

    #[test]
    fn publish_qos2_full_handshake() {
        let broker = Broker::start_default();
        let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
        sub.subscribe(&filter("t"), QoS::ExactlyOnce).unwrap();
        let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        publ.publish(&topic("t"), b"once".as_slice(), QoS::ExactlyOnce, false)
            .unwrap();
        let got = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"once"));
        assert_eq!(got.qos, QoS::ExactlyOnce);
        // Exactly one copy.
        assert!(sub.recv_timeout(Duration::from_millis(200)).is_err());
    }

    #[test]
    fn handlers_receive_matching_messages() {
        let broker = Broker::start_default();
        let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        sub.subscribe_with(
            &filter("evt/+"),
            QoS::AtMostOnce,
            Arc::new(move |p| {
                assert!(p.topic.as_str().starts_with("evt/"));
                count2.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
        let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        for i in 0..5 {
            publ.publish(
                &topic(&format!("evt/{i}")),
                b"e".as_slice(),
                QoS::AtLeastOnce,
                false,
            )
            .unwrap();
        }
        // QoS1 publish blocks on ack, so deliveries are in flight; spin.
        for _ in 0..100 {
            if count.load(Ordering::SeqCst) == 5 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(count.load(Ordering::SeqCst), 5);
        // Nothing leaked to the default inbox.
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn handler_can_publish_reply_qos1() {
        // Regression guard for the dispatcher-thread design: a handler that
        // performs a blocking QoS1 publish must not deadlock the client.
        let broker = Broker::start_default();
        let responder = Client::connect(&broker, ClientOptions::new("responder")).unwrap();
        let responder_clone = responder.clone();
        responder
            .subscribe_with(
                &filter("req"),
                QoS::AtLeastOnce,
                Arc::new(move |_p| {
                    responder_clone
                        .publish(
                            &TopicName::new("resp").unwrap(),
                            b"pong".as_slice(),
                            QoS::AtLeastOnce,
                            false,
                        )
                        .unwrap();
                }),
            )
            .unwrap();

        let caller = Client::connect(&broker, ClientOptions::new("caller")).unwrap();
        caller.subscribe(&filter("resp"), QoS::AtLeastOnce).unwrap();
        caller
            .publish(&topic("req"), b"ping".as_slice(), QoS::AtLeastOnce, false)
            .unwrap();
        let got = caller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"pong"));
    }

    #[test]
    fn unsubscribe_removes_handler_and_flow() {
        let broker = Broker::start_default();
        let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
        sub.subscribe(&filter("x"), QoS::AtMostOnce).unwrap();
        sub.unsubscribe(&filter("x")).unwrap();
        let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        publ.publish(&topic("x"), b"gone".as_slice(), QoS::AtMostOnce, false)
            .unwrap();
        assert!(sub.recv_timeout(Duration::from_millis(200)).is_err());
    }

    #[test]
    fn empty_client_id_rejected_locally() {
        let broker = Broker::start_default();
        let err = Client::connect(&broker, ClientOptions::new("")).unwrap_err();
        assert!(matches!(err, MqttError::InvalidClientId(_)));
    }

    #[test]
    fn retained_replay_reaches_handler() {
        let broker = Broker::start_default();
        let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        publ.publish(&topic("cfg/a"), b"v".as_slice(), QoS::AtLeastOnce, true)
            .unwrap();
        let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
        let (tx, rx) = bounded(1);
        sub.subscribe_with(
            &filter("cfg/#"),
            QoS::AtMostOnce,
            Arc::new(move |p| {
                let _ = tx.send(p.payload.clone());
            }),
        )
        .unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            Bytes::from_static(b"v")
        );
    }

    #[test]
    fn concurrent_publishers_unique_ids() {
        let broker = Broker::start_default();
        let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
        sub.subscribe(&filter("load/#"), QoS::AtMostOnce).unwrap();
        let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = publ.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    p.publish(
                        &TopicName::new(format!("load/{t}/{i}")).unwrap(),
                        b"d".as_slice(),
                        QoS::AtLeastOnce,
                        false,
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut received = 0;
        while sub.recv_timeout(Duration::from_millis(500)).is_ok() {
            received += 1;
            if received == 100 {
                break;
            }
        }
        assert_eq!(received, 100);
    }
}
