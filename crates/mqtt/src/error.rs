//! Error types for the embedded MQTT stack.

use std::fmt;

/// Errors produced by the MQTT codec, broker, and client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqttError {
    /// A topic name or filter failed validation.
    InvalidTopic(String),
    /// The wire codec encountered a malformed packet.
    Malformed(&'static str),
    /// The remaining-length prefix exceeds the protocol maximum (268 435 455).
    RemainingLengthOverflow,
    /// A packet was truncated: more bytes were expected.
    UnexpectedEof,
    /// The packet type nibble is unknown or reserved.
    UnknownPacketType(u8),
    /// The broker rejected a CONNECT packet.
    ConnectionRefused(ConnectReturnCode),
    /// The peer closed the connection or the transport channel is gone.
    Disconnected,
    /// An operation was attempted on a client that is not connected.
    NotConnected,
    /// The client id is empty or otherwise unusable.
    InvalidClientId(String),
    /// A blocking operation timed out.
    Timeout,
    /// The broker's event queue is full or closed.
    BrokerUnavailable,
}

impl fmt::Display for MqttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqttError::InvalidTopic(t) => write!(f, "invalid topic: {t:?}"),
            MqttError::Malformed(what) => write!(f, "malformed packet: {what}"),
            MqttError::RemainingLengthOverflow => write!(f, "remaining length overflow"),
            MqttError::UnexpectedEof => write!(f, "unexpected end of packet"),
            MqttError::UnknownPacketType(b) => write!(f, "unknown packet type {b:#x}"),
            MqttError::ConnectionRefused(rc) => write!(f, "connection refused: {rc:?}"),
            MqttError::Disconnected => write!(f, "disconnected"),
            MqttError::NotConnected => write!(f, "client not connected"),
            MqttError::InvalidClientId(id) => write!(f, "invalid client id: {id:?}"),
            MqttError::Timeout => write!(f, "operation timed out"),
            MqttError::BrokerUnavailable => write!(f, "broker unavailable"),
        }
    }
}

impl std::error::Error for MqttError {}

/// CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ConnectReturnCode {
    /// Connection accepted.
    Accepted = 0,
    /// The broker does not support the requested protocol level.
    UnacceptableProtocol = 1,
    /// The client identifier is well-formed but not allowed.
    IdentifierRejected = 2,
    /// The broker is unavailable.
    ServerUnavailable = 3,
    /// Bad user name or password (unused by the embedded broker).
    BadCredentials = 4,
    /// The client is not authorized to connect.
    NotAuthorized = 5,
}

impl ConnectReturnCode {
    /// Decodes a return code byte, mapping unknown values to `ServerUnavailable`.
    pub fn from_u8(b: u8) -> Self {
        match b {
            0 => ConnectReturnCode::Accepted,
            1 => ConnectReturnCode::UnacceptableProtocol,
            2 => ConnectReturnCode::IdentifierRejected,
            3 => ConnectReturnCode::ServerUnavailable,
            4 => ConnectReturnCode::BadCredentials,
            5 => ConnectReturnCode::NotAuthorized,
            _ => ConnectReturnCode::ServerUnavailable,
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MqttError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            MqttError::InvalidTopic("a/#/b".into()).to_string(),
            "invalid topic: \"a/#/b\""
        );
        assert_eq!(
            MqttError::UnexpectedEof.to_string(),
            "unexpected end of packet"
        );
    }

    #[test]
    fn return_code_roundtrip() {
        for b in 0u8..=5 {
            assert_eq!(ConnectReturnCode::from_u8(b) as u8, b);
        }
        assert_eq!(
            ConnectReturnCode::from_u8(42),
            ConnectReturnCode::ServerUnavailable
        );
    }
}
