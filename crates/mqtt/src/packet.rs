//! MQTT 3.1.1 control packet model.
//!
//! The embedded broker speaks real MQTT framing over its in-process links:
//! every packet crossing a [`crate::transport::Link`] is encoded to bytes by
//! [`crate::codec`] and decoded on the other side, so the wire format is
//! exercised on every message in every test.

use crate::error::ConnectReturnCode;
use crate::topic::{TopicFilter, TopicName};
use bytes::Bytes;

/// Quality-of-service level for a PUBLISH or a subscription grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum QoS {
    /// Fire and forget: no acknowledgement.
    #[default]
    AtMostOnce = 0,
    /// Acknowledged delivery (PUBACK); may duplicate.
    AtLeastOnce = 1,
    /// Assured once-only delivery (PUBREC/PUBREL/PUBCOMP handshake).
    ExactlyOnce = 2,
}

impl QoS {
    /// Decodes a 2-bit QoS field; returns `None` for the reserved value 3.
    pub fn from_u8(b: u8) -> Option<QoS> {
        match b {
            0 => Some(QoS::AtMostOnce),
            1 => Some(QoS::AtLeastOnce),
            2 => Some(QoS::ExactlyOnce),
            _ => None,
        }
    }
}

/// Packet identifier used by QoS>0 flows and subscribe transactions.
pub type PacketId = u16;

/// CONNECT — client requests a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connect {
    /// Client identifier; unique per broker.
    pub client_id: String,
    /// Start a fresh session, discarding stored state.
    pub clean_session: bool,
    /// Keep-alive interval in seconds (0 disables).
    pub keep_alive: u16,
    /// Optional last-will message published on ungraceful disconnect.
    pub will: Option<LastWill>,
}

/// A last-will message registered at CONNECT time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LastWill {
    /// Topic the will is published to.
    pub topic: TopicName,
    /// Will payload.
    pub payload: Bytes,
    /// QoS of the will publication.
    pub qos: QoS,
    /// Whether the will is retained.
    pub retain: bool,
}

/// CONNACK — broker accepts or refuses a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connack {
    /// True if the broker resumed stored session state.
    pub session_present: bool,
    /// Accept/refuse code.
    pub code: ConnectReturnCode,
}

/// PUBLISH — an application message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Publish {
    /// Set on retransmissions of QoS>0 messages.
    pub dup: bool,
    /// Delivery QoS.
    pub qos: QoS,
    /// Retain flag: broker stores the message for future subscribers.
    pub retain: bool,
    /// Destination topic.
    pub topic: TopicName,
    /// Packet id; present iff `qos > AtMostOnce`.
    pub packet_id: Option<PacketId>,
    /// Application payload.
    pub payload: Bytes,
}

impl Publish {
    /// Convenience constructor for a QoS 0, non-retained message.
    pub fn simple(topic: TopicName, payload: impl Into<Bytes>) -> Self {
        Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: false,
            topic,
            packet_id: None,
            payload: payload.into(),
        }
    }

    /// Total application-level size: topic bytes + payload bytes. Used by
    /// the simulated network to compute transfer delay.
    pub fn wire_size_hint(&self) -> usize {
        self.topic.as_str().len() + self.payload.len()
    }
}

/// SUBSCRIBE — one or more filter requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribe {
    /// Transaction id echoed in SUBACK.
    pub packet_id: PacketId,
    /// Requested (filter, max-QoS) pairs.
    pub filters: Vec<(TopicFilter, QoS)>,
}

/// SUBACK — per-filter grant results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suback {
    /// Transaction id from the SUBSCRIBE.
    pub packet_id: PacketId,
    /// One entry per requested filter: granted QoS or failure.
    pub return_codes: Vec<SubackCode>,
}

/// A single SUBACK return code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubackCode {
    /// Subscription accepted at the given QoS.
    Granted(QoS),
    /// Subscription refused.
    Failure,
}

impl SubackCode {
    /// Encodes to the wire byte (0/1/2 or 0x80).
    pub fn to_u8(self) -> u8 {
        match self {
            SubackCode::Granted(q) => q as u8,
            SubackCode::Failure => 0x80,
        }
    }

    /// Decodes from the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0x80 => Some(SubackCode::Failure),
            q => QoS::from_u8(q).map(SubackCode::Granted),
        }
    }
}

/// UNSUBSCRIBE — remove filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsubscribe {
    /// Transaction id echoed in UNSUBACK.
    pub packet_id: PacketId,
    /// Filters to remove.
    pub filters: Vec<TopicFilter>,
}

/// All MQTT 3.1.1 control packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Client → broker session request.
    Connect(Connect),
    /// Broker → client session response.
    Connack(Connack),
    /// Application message, either direction.
    Publish(Publish),
    /// QoS 1 acknowledgement.
    Puback(PacketId),
    /// QoS 2 step 1: receiver got the publish.
    Pubrec(PacketId),
    /// QoS 2 step 2: sender releases the message.
    Pubrel(PacketId),
    /// QoS 2 step 3: receiver completes the handshake.
    Pubcomp(PacketId),
    /// Subscription request.
    Subscribe(Subscribe),
    /// Subscription response.
    Suback(Suback),
    /// Unsubscription request.
    Unsubscribe(Unsubscribe),
    /// Unsubscription response.
    Unsuback(PacketId),
    /// Keep-alive probe.
    Pingreq,
    /// Keep-alive response.
    Pingresp,
    /// Graceful disconnect notice.
    Disconnect,
}

impl Packet {
    /// Human-readable packet type name, used in traces and stats.
    pub fn type_name(&self) -> &'static str {
        match self {
            Packet::Connect(_) => "CONNECT",
            Packet::Connack(_) => "CONNACK",
            Packet::Publish(_) => "PUBLISH",
            Packet::Puback(_) => "PUBACK",
            Packet::Pubrec(_) => "PUBREC",
            Packet::Pubrel(_) => "PUBREL",
            Packet::Pubcomp(_) => "PUBCOMP",
            Packet::Subscribe(_) => "SUBSCRIBE",
            Packet::Suback(_) => "SUBACK",
            Packet::Unsubscribe(_) => "UNSUBSCRIBE",
            Packet::Unsuback(_) => "UNSUBACK",
            Packet::Pingreq => "PINGREQ",
            Packet::Pingresp => "PINGRESP",
            Packet::Disconnect => "DISCONNECT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_decoding() {
        assert_eq!(QoS::from_u8(0), Some(QoS::AtMostOnce));
        assert_eq!(QoS::from_u8(1), Some(QoS::AtLeastOnce));
        assert_eq!(QoS::from_u8(2), Some(QoS::ExactlyOnce));
        assert_eq!(QoS::from_u8(3), None);
    }

    #[test]
    fn qos_ordering_supports_min_grant() {
        // Overlapping subscriptions grant min(requested, published).
        assert!(QoS::AtMostOnce < QoS::AtLeastOnce);
        assert!(QoS::AtLeastOnce < QoS::ExactlyOnce);
        assert_eq!(QoS::ExactlyOnce.min(QoS::AtLeastOnce), QoS::AtLeastOnce);
    }

    #[test]
    fn suback_code_roundtrip() {
        for code in [
            SubackCode::Granted(QoS::AtMostOnce),
            SubackCode::Granted(QoS::AtLeastOnce),
            SubackCode::Granted(QoS::ExactlyOnce),
            SubackCode::Failure,
        ] {
            assert_eq!(SubackCode::from_u8(code.to_u8()), Some(code));
        }
        assert_eq!(SubackCode::from_u8(0x03), None);
    }

    #[test]
    fn publish_size_hint_counts_topic_and_payload() {
        let p = Publish::simple(TopicName::new("a/b").unwrap(), vec![0u8; 10]);
        assert_eq!(p.wire_size_hint(), 3 + 10);
    }
}
