//! Retained message store.
//!
//! A PUBLISH with the retain flag replaces the stored message for its topic;
//! an empty retained payload clears it (MQTT 3.1.1 §3.3.1.3). When a client
//! subscribes, the broker replays every retained message whose topic matches
//! the new filter.

use crate::packet::{Publish, QoS};
use crate::topic::{TopicFilter, TopicName};
use bytes::Bytes;
use std::collections::HashMap;

/// A single retained message.
#[derive(Debug, Clone)]
pub struct Retained {
    /// The retained payload.
    pub payload: Bytes,
    /// QoS the message was published with (caps replay QoS).
    pub qos: QoS,
}

/// Map from topic name to its retained message.
///
/// `Clone` so the broker's index writer can publish read-only snapshots
/// (payloads are `Bytes`, so a clone shares the underlying buffers).
#[derive(Debug, Default, Clone)]
pub struct RetainedStore {
    messages: HashMap<TopicName, Retained>,
}

impl RetainedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained topics.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Applies a retained publish: stores it, or clears the slot if the
    /// payload is empty. Returns true if the store changed.
    pub fn apply(&mut self, publish: &Publish) -> bool {
        debug_assert!(publish.retain);
        if publish.payload.is_empty() {
            self.messages.remove(&publish.topic).is_some()
        } else {
            self.messages.insert(
                publish.topic.clone(),
                Retained {
                    payload: publish.payload.clone(),
                    qos: publish.qos,
                },
            );
            true
        }
    }

    /// Returns all retained messages matching `filter`, as (topic, message)
    /// pairs ready for replay to a fresh subscriber.
    pub fn matching(&self, filter: &TopicFilter) -> Vec<(TopicName, Retained)> {
        self.messages
            .iter()
            .filter(|(topic, _)| filter.matches(topic))
            .map(|(topic, msg)| (topic.clone(), msg.clone()))
            .collect()
    }

    /// Looks up the retained message for an exact topic.
    pub fn get(&self, topic: &TopicName) -> Option<&Retained> {
        self.messages.get(topic)
    }

    /// Iterates over every retained (topic, message) pair, in no
    /// particular order (the persistence layer sorts before serializing).
    pub fn iter(&self) -> impl Iterator<Item = (&TopicName, &Retained)> {
        self.messages.iter()
    }

    /// Clears all retained state.
    pub fn clear(&mut self) {
        self.messages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish(topic: &str, payload: &[u8]) -> Publish {
        Publish {
            dup: false,
            qos: QoS::AtLeastOnce,
            retain: true,
            topic: TopicName::new(topic).unwrap(),
            packet_id: Some(1),
            payload: Bytes::from(payload.to_vec()),
        }
    }

    #[test]
    fn stores_and_replaces() {
        let mut store = RetainedStore::new();
        assert!(store.apply(&publish("a/b", b"v1")));
        assert!(store.apply(&publish("a/b", b"v2")));
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(&TopicName::new("a/b").unwrap()).unwrap().payload,
            Bytes::from_static(b"v2")
        );
    }

    #[test]
    fn empty_payload_clears() {
        let mut store = RetainedStore::new();
        store.apply(&publish("a/b", b"v1"));
        assert!(store.apply(&publish("a/b", b"")));
        assert!(store.is_empty());
        // Clearing an absent slot reports no change.
        assert!(!store.apply(&publish("a/b", b"")));
    }

    #[test]
    fn wildcard_replay() {
        let mut store = RetainedStore::new();
        store.apply(&publish("s/1/state", b"a"));
        store.apply(&publish("s/2/state", b"b"));
        store.apply(&publish("other", b"c"));
        let mut hits = store.matching(&TopicFilter::new("s/+/state").unwrap());
        hits.sort_by(|(t1, _), (t2, _)| t1.cmp(t2));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0.as_str(), "s/1/state");
        assert_eq!(hits[1].0.as_str(), "s/2/state");
        assert_eq!(store.matching(&TopicFilter::new("#").unwrap()).len(), 3);
    }
}
