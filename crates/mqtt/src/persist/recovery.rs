//! Replay of snapshot + WAL streams into live broker state.
//!
//! Recovery folds record streams into a [`RecoveredState`]: persistent
//! sessions (subscriptions, offline queues, QoS 1/2 inflight windows,
//! inbound QoS 2 dedupe sets), pending wills for connections that died
//! with the process, and the retained-message store. The inverse
//! direction — serializing live state back into compacted record
//! streams — also lives here so snapshots and recovery stay in lockstep.
//!
//! All maps are `BTreeMap`s and all serializers emit in sorted order:
//! recovery must be byte-deterministic so the chaos harness can assert
//! rerun-identical trace hashes across a broker kill + restart.

use super::wal::WalRecord;
use crate::packet::{LastWill, QoS};
use crate::session::{InflightOut, QueuedMessage, Session};
use crate::topic::TopicName;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Broker state reconstructed from snapshot + WAL replay.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Persistent sessions keyed by client id (sorted for determinism).
    pub sessions: BTreeMap<String, Session>,
    /// Wills registered by connections that died with the process; the
    /// restarted broker fires these during startup.
    pub wills: BTreeMap<String, LastWill>,
    /// Retained messages keyed by topic (sorted for determinism).
    pub retained: BTreeMap<TopicName, (QoS, Bytes)>,
    /// Number of records applied across every stream.
    pub records_applied: u64,
}

impl RecoveredState {
    /// Applies one session-stream record. Records for unknown sessions are
    /// ignored: the WAL only logs persistent sessions, and a destroy may
    /// have compacted away the matching create.
    pub fn apply(&mut self, rec: WalRecord, max_queued: usize) {
        self.records_applied += 1;
        match rec {
            WalRecord::Watermark { .. } => {}
            WalRecord::SessionCreate { client } => {
                self.sessions
                    .insert(client.clone(), Session::new(client, false, max_queued));
            }
            WalRecord::SessionDestroy { client } => {
                self.sessions.remove(&client);
            }
            WalRecord::Subscribe {
                client,
                filter,
                qos,
            } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.subscriptions.insert(filter, qos);
                }
            }
            WalRecord::Unsubscribe { client, filter } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.subscriptions.remove(&filter);
                }
            }
            WalRecord::Enqueue {
                client,
                topic,
                qos,
                payload,
            } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.queue_message(QueuedMessage {
                        topic,
                        payload,
                        qos,
                    });
                }
            }
            WalRecord::QueueDrained { client } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.queued.clear();
                }
            }
            WalRecord::InflightInsert {
                client,
                id,
                topic,
                qos,
                retain,
                released,
                payload,
            } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.inflight_out.insert(
                        id,
                        InflightOut {
                            topic,
                            payload,
                            qos,
                            retain,
                            released,
                        },
                    );
                }
            }
            WalRecord::InflightRelease { client, id } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    if let Some(f) = s.inflight_out.get_mut(&id) {
                        f.released = true;
                    }
                }
            }
            WalRecord::InflightRemove { client, id } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.inflight_out.remove(&id);
                }
            }
            WalRecord::InboundQos2Insert { client, id } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.inbound_qos2.insert(id);
                }
            }
            WalRecord::InboundQos2Remove { client, id } => {
                if let Some(s) = self.sessions.get_mut(&client) {
                    s.inbound_qos2.remove(&id);
                }
            }
            WalRecord::WillSet { client, will } => {
                self.wills.insert(client, will);
            }
            WalRecord::WillClear { client } => {
                self.wills.remove(&client);
            }
            WalRecord::RetainedSet {
                topic,
                qos,
                payload,
            } => {
                if payload.is_empty() {
                    self.retained.remove(&topic);
                } else {
                    self.retained.insert(topic, (qos, payload));
                }
            }
        }
    }

    /// Applies a snapshot stream followed by its live WAL, honouring the
    /// snapshot watermark (live records with `seq <= watermark` are
    /// already folded into the snapshot and skipped).
    pub fn apply_stream(
        &mut self,
        watermark: u64,
        snapshot: Vec<WalRecord>,
        live: Vec<(u64, WalRecord)>,
        max_queued: usize,
    ) {
        for rec in snapshot {
            self.apply(rec, max_queued);
        }
        for (seq, rec) in live {
            if seq > watermark {
                self.apply(rec, max_queued);
            }
        }
    }
}

/// Serializes one session into compacted records (sorted deterministic
/// order: create, subscriptions, queued messages, inflight window,
/// inbound QoS 2 dedupe ids).
pub fn session_records(session: &Session, out: &mut Vec<WalRecord>) {
    out.push(WalRecord::SessionCreate {
        client: session.client_id.clone(),
    });
    let mut subs: Vec<_> = session.subscriptions.iter().collect();
    subs.sort_unstable_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
    for (filter, qos) in subs {
        out.push(WalRecord::Subscribe {
            client: session.client_id.clone(),
            filter: filter.clone(),
            qos: *qos,
        });
    }
    for msg in &session.queued {
        out.push(WalRecord::Enqueue {
            client: session.client_id.clone(),
            topic: msg.topic.clone(),
            qos: msg.qos,
            payload: msg.payload.clone(),
        });
    }
    let mut inflight: Vec<_> = session.inflight_out.iter().collect();
    inflight.sort_unstable_by_key(|(id, _)| **id);
    for (id, f) in inflight {
        out.push(WalRecord::InflightInsert {
            client: session.client_id.clone(),
            id: *id,
            topic: f.topic.clone(),
            qos: f.qos,
            retain: f.retain,
            released: f.released,
            payload: f.payload.clone(),
        });
    }
    let mut inbound: Vec<_> = session.inbound_qos2.iter().copied().collect();
    inbound.sort_unstable();
    for id in inbound {
        out.push(WalRecord::InboundQos2Insert {
            client: session.client_id.clone(),
            id,
        });
    }
}

/// Serializes a retained-message map into compacted records (sorted by
/// topic).
pub fn retained_records<'a>(
    entries: impl Iterator<Item = (&'a TopicName, QoS, &'a Bytes)>,
) -> Vec<WalRecord> {
    let mut sorted: Vec<_> = entries.collect();
    sorted.sort_unstable_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
    sorted
        .into_iter()
        .map(|(topic, qos, payload)| WalRecord::RetainedSet {
            topic: topic.clone(),
            qos,
            payload: payload.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicFilter;

    #[test]
    fn session_records_roundtrip() {
        let mut s = Session::new("alice".into(), false, 16);
        s.subscriptions
            .insert(TopicFilter::new("a/#").unwrap(), QoS::AtLeastOnce);
        s.subscriptions
            .insert(TopicFilter::new("b/+").unwrap(), QoS::ExactlyOnce);
        s.queue_message(QueuedMessage {
            topic: TopicName::new("a/1").unwrap(),
            payload: Bytes::from_static(b"q1"),
            qos: QoS::AtLeastOnce,
        });
        s.inflight_out.insert(
            4,
            InflightOut {
                topic: TopicName::new("a/2").unwrap(),
                payload: Bytes::from_static(b"i1"),
                qos: QoS::ExactlyOnce,
                retain: false,
                released: true,
            },
        );
        s.inbound_qos2.insert(9);

        let mut records = Vec::new();
        session_records(&s, &mut records);
        let mut state = RecoveredState::default();
        for rec in records {
            state.apply(rec, 16);
        }
        let back = state.sessions.get("alice").expect("session recovered");
        assert_eq!(back.subscriptions, s.subscriptions);
        assert_eq!(back.queued.len(), 1);
        assert_eq!(back.inflight_out.len(), 1);
        assert!(back.inflight_out[&4].released);
        assert!(back.inbound_qos2.contains(&9));
    }

    #[test]
    fn watermark_skips_folded_records() {
        let mut state = RecoveredState::default();
        state.apply_stream(
            2,
            vec![WalRecord::SessionCreate { client: "a".into() }],
            vec![
                // seq 1-2 are covered by the snapshot and must be skipped;
                // applying them would destroy the session.
                (1, WalRecord::SessionDestroy { client: "a".into() }),
                (2, WalRecord::SessionDestroy { client: "a".into() }),
                (
                    3,
                    WalRecord::Subscribe {
                        client: "a".into(),
                        filter: TopicFilter::new("x").unwrap(),
                        qos: QoS::AtMostOnce,
                    },
                ),
            ],
            8,
        );
        let s = state.sessions.get("a").expect("session survives");
        assert_eq!(s.subscriptions.len(), 1);
    }

    #[test]
    fn empty_retained_payload_clears() {
        let mut state = RecoveredState::default();
        let t = TopicName::new("cfg").unwrap();
        state.apply(
            WalRecord::RetainedSet {
                topic: t.clone(),
                qos: QoS::AtLeastOnce,
                payload: Bytes::from_static(b"v"),
            },
            8,
        );
        assert_eq!(state.retained.len(), 1);
        state.apply(
            WalRecord::RetainedSet {
                topic: t,
                qos: QoS::AtLeastOnce,
                payload: Bytes::new(),
            },
            8,
        );
        assert!(state.retained.is_empty());
    }
}
