//! Compacted snapshots.
//!
//! A snapshot is itself a WAL: a stream of framed [`WalRecord`]s that,
//! replayed from an empty state, reproduce the live state at the moment
//! the snapshot was cut. The first frame is always a
//! [`WalRecord::Watermark`] carrying the highest live-WAL sequence number
//! the snapshot covers; recovery applies the snapshot records, then only
//! live-WAL records with `seq > watermark`. This makes the
//! rename-then-truncate compaction window crash-safe: if the process dies
//! after the snapshot rename but before the live WAL is truncated, the
//! already-folded prefix is skipped by the watermark instead of being
//! applied twice.
//!
//! Snapshots are written to a temporary file and atomically renamed into
//! place, so a crash mid-write leaves the previous snapshot intact.

use super::wal::{encode_frame, read_wal, WalRecord};
use bytes::BytesMut;
use std::io::Write;
use std::path::Path;

/// Writes a compacted snapshot (watermark header + state records) to
/// `path` via a temporary file and atomic rename.
pub fn write_snapshot(path: &Path, watermark: u64, records: &[WalRecord]) -> std::io::Result<()> {
    write_snapshot_durable(path, watermark, records, false)
}

/// [`write_snapshot`] with an optional fsync before the rename, used by
/// the persistence thread under the `GroupCommit` / `Always` durability
/// policies so a power cut cannot leave a renamed-but-unwritten
/// snapshot in place.
pub fn write_snapshot_durable(
    path: &Path,
    watermark: u64,
    records: &[WalRecord],
    sync: bool,
) -> std::io::Result<()> {
    let mut buf = BytesMut::with_capacity(256 + records.len() * 64);
    encode_frame(
        watermark,
        &WalRecord::Watermark { seq: watermark },
        &mut buf,
    );
    for rec in records {
        encode_frame(watermark, rec, &mut buf);
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&buf)?;
        file.flush()?;
        if sync {
            file.sync_data()?;
        }
    }
    std::fs::rename(&tmp, path)
}

/// Reads a snapshot file, returning its watermark and state records.
///
/// A missing, empty, or headerless file reads as `(0, [])` — recovery then
/// falls back to replaying the whole live WAL.
pub fn read_snapshot(path: &Path) -> (u64, Vec<WalRecord>) {
    let mut records = read_wal(path);
    if records.is_empty() {
        return (0, Vec::new());
    }
    match records[0].1 {
        WalRecord::Watermark { seq } => {
            records.remove(0);
            (seq, records.into_iter().map(|(_, r)| r).collect())
        }
        // No leading watermark: treat the content as plain records that
        // cover nothing of the live WAL.
        _ => (0, records.into_iter().map(|(_, r)| r).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_with_watermark() {
        let dir = std::env::temp_dir().join(format!("sdflmq-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.wal");
        let records = vec![
            WalRecord::SessionCreate {
                client: "alice".into(),
            },
            WalRecord::QueueDrained {
                client: "alice".into(),
            },
        ];
        write_snapshot(&path, 99, &records).unwrap();
        let (watermark, back) = read_snapshot(&path);
        assert_eq!(watermark, 99);
        assert_eq!(back, records);
        // Overwrite is atomic: rewriting yields only the new content.
        write_snapshot(&path, 120, &records[..1]).unwrap();
        let (watermark, back) = read_snapshot(&path);
        assert_eq!(watermark, 120);
        assert_eq!(back.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_reads_empty() {
        let (watermark, records) = read_snapshot(Path::new("/nonexistent/sdflmq/snap.wal"));
        assert_eq!(watermark, 0);
        assert!(records.is_empty());
    }
}
