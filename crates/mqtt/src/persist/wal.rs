//! Write-ahead-log frames and records.
//!
//! Every durable broker event is one [`WalRecord`] serialized in the same
//! binary idiom as the wire codec (u16-length-prefixed UTF-8 strings,
//! u32-length-prefixed byte blobs, big-endian integers) and wrapped in a
//! length-prefixed, checksummed frame:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 seq][u8 kind][body...]
//! ```
//!
//! Readers stop at the first invalid frame (truncated length, bad
//! checksum, unknown kind, or malformed body) — a torn tail from a crash
//! mid-append loses only the record being written, never the prefix.

use crate::packet::{LastWill, PacketId, QoS};
use crate::topic::{TopicFilter, TopicName};
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3) slicing-by-8 tables, built at compile time.
///
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; tables 1..8
/// fold 8 input bytes per iteration so the serial
/// table-load-per-byte dependency chain (~5 cycles/byte) becomes eight
/// independent loads per 8 bytes. Frames are checksummed on both the
/// persistence hot path and recovery replay, so this is worth the
/// 8 KiB of tables.
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 (IEEE) of `data`, the per-frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// Record kind bytes. Kind 0 is the snapshot watermark header.
const K_WATERMARK: u8 = 0;
const K_SESSION_CREATE: u8 = 1;
const K_SESSION_DESTROY: u8 = 2;
const K_SUBSCRIBE: u8 = 3;
const K_UNSUBSCRIBE: u8 = 4;
const K_ENQUEUE: u8 = 5;
const K_QUEUE_DRAINED: u8 = 6;
const K_INFLIGHT_INSERT: u8 = 7;
const K_INFLIGHT_RELEASE: u8 = 8;
const K_INFLIGHT_REMOVE: u8 = 9;
const K_INBOUND_QOS2_INSERT: u8 = 10;
const K_INBOUND_QOS2_REMOVE: u8 = 11;
const K_WILL_SET: u8 = 12;
const K_WILL_CLEAR: u8 = 13;
const K_RETAINED_SET: u8 = 14;

/// One durable broker event.
///
/// Session-scoped records live in the owning shard's stream; retained
/// records live in the broker-global retained stream (appended under the
/// index writer lock, so their order matches the index exactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Snapshot header: live-WAL records with `seq <= watermark` are
    /// already folded into the snapshot that starts with this record.
    Watermark {
        /// Highest sequence number the snapshot covers.
        seq: u64,
    },
    /// A persistent (`clean_session = false`) session was created.
    SessionCreate {
        /// Owning client id.
        client: String,
    },
    /// A session was destroyed (clean reconnect or clean disconnect).
    SessionDestroy {
        /// Owning client id.
        client: String,
    },
    /// A subscription was added or its granted QoS replaced.
    Subscribe {
        /// Owning client id.
        client: String,
        /// Subscribed filter.
        filter: TopicFilter,
        /// Granted QoS.
        qos: QoS,
    },
    /// A subscription was removed.
    Unsubscribe {
        /// Owning client id.
        client: String,
        /// Removed filter.
        filter: TopicFilter,
    },
    /// A message was queued for an offline session.
    Enqueue {
        /// Owning client id.
        client: String,
        /// Message topic.
        topic: TopicName,
        /// Delivery QoS.
        qos: QoS,
        /// Message payload.
        payload: Bytes,
    },
    /// The offline queue was drained for replay on reconnect.
    QueueDrained {
        /// Owning client id.
        client: String,
    },
    /// An outbound QoS>0 message entered the inflight window.
    InflightInsert {
        /// Owning client id.
        client: String,
        /// Packet id the delivery was stamped with.
        id: PacketId,
        /// Message topic.
        topic: TopicName,
        /// Delivery QoS.
        qos: QoS,
        /// Retain flag on the (re)transmission.
        retain: bool,
        /// QoS 2 state: PUBREC received, PUBREL sent.
        released: bool,
        /// Message payload.
        payload: Bytes,
    },
    /// PUBREC received for an inflight QoS 2 message.
    InflightRelease {
        /// Owning client id.
        client: String,
        /// Packet id.
        id: PacketId,
    },
    /// An inflight message was acknowledged (PUBACK / PUBCOMP).
    InflightRemove {
        /// Owning client id.
        client: String,
        /// Packet id.
        id: PacketId,
    },
    /// An inbound QoS 2 packet id entered the dedupe set.
    InboundQos2Insert {
        /// Owning client id.
        client: String,
        /// Packet id.
        id: PacketId,
    },
    /// PUBREL received: the inbound QoS 2 id left the dedupe set.
    InboundQos2Remove {
        /// Owning client id.
        client: String,
        /// Packet id.
        id: PacketId,
    },
    /// A connection registered a last-will message.
    WillSet {
        /// Owning client id.
        client: String,
        /// Registered will.
        will: LastWill,
    },
    /// The will was discharged (graceful disconnect, or it fired).
    WillClear {
        /// Owning client id.
        client: String,
    },
    /// A retained message was stored (empty payload clears the topic).
    RetainedSet {
        /// Retained topic.
        topic: TopicName,
        /// QoS the message was published with.
        qos: QoS,
        /// Retained payload (empty = clear).
        payload: Bytes,
    },
}

impl WalRecord {
    /// The client id a session-scoped record belongs to, if any.
    pub fn client(&self) -> Option<&str> {
        match self {
            WalRecord::SessionCreate { client }
            | WalRecord::SessionDestroy { client }
            | WalRecord::Subscribe { client, .. }
            | WalRecord::Unsubscribe { client, .. }
            | WalRecord::Enqueue { client, .. }
            | WalRecord::QueueDrained { client }
            | WalRecord::InflightInsert { client, .. }
            | WalRecord::InflightRelease { client, .. }
            | WalRecord::InflightRemove { client, .. }
            | WalRecord::InboundQos2Insert { client, .. }
            | WalRecord::InboundQos2Remove { client, .. }
            | WalRecord::WillSet { client, .. }
            | WalRecord::WillClear { client } => Some(client),
            WalRecord::Watermark { .. } | WalRecord::RetainedSet { .. } => None,
        }
    }
}

fn put_str(s: &str, buf: &mut BytesMut) {
    debug_assert!(s.len() <= u16::MAX as usize);
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(b: &[u8], buf: &mut BytesMut) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

/// Encodes the record payload (`[seq][kind][body]`) without framing.
fn encode_payload(seq: u64, rec: &WalRecord, buf: &mut BytesMut) {
    buf.put_u64(seq);
    match rec {
        WalRecord::Watermark { seq } => {
            buf.put_u8(K_WATERMARK);
            buf.put_u64(*seq);
        }
        WalRecord::SessionCreate { client } => {
            buf.put_u8(K_SESSION_CREATE);
            put_str(client, buf);
        }
        WalRecord::SessionDestroy { client } => {
            buf.put_u8(K_SESSION_DESTROY);
            put_str(client, buf);
        }
        WalRecord::Subscribe {
            client,
            filter,
            qos,
        } => {
            buf.put_u8(K_SUBSCRIBE);
            put_str(client, buf);
            put_str(filter.as_str(), buf);
            buf.put_u8(*qos as u8);
        }
        WalRecord::Unsubscribe { client, filter } => {
            buf.put_u8(K_UNSUBSCRIBE);
            put_str(client, buf);
            put_str(filter.as_str(), buf);
        }
        WalRecord::Enqueue {
            client,
            topic,
            qos,
            payload,
        } => {
            buf.put_u8(K_ENQUEUE);
            put_str(client, buf);
            put_str(topic.as_str(), buf);
            buf.put_u8(*qos as u8);
            put_bytes(payload, buf);
        }
        WalRecord::QueueDrained { client } => {
            buf.put_u8(K_QUEUE_DRAINED);
            put_str(client, buf);
        }
        WalRecord::InflightInsert {
            client,
            id,
            topic,
            qos,
            retain,
            released,
            payload,
        } => {
            buf.put_u8(K_INFLIGHT_INSERT);
            put_str(client, buf);
            buf.put_u16(*id);
            put_str(topic.as_str(), buf);
            buf.put_u8(*qos as u8);
            buf.put_u8(u8::from(*retain) | (u8::from(*released) << 1));
            put_bytes(payload, buf);
        }
        WalRecord::InflightRelease { client, id } => {
            buf.put_u8(K_INFLIGHT_RELEASE);
            put_str(client, buf);
            buf.put_u16(*id);
        }
        WalRecord::InflightRemove { client, id } => {
            buf.put_u8(K_INFLIGHT_REMOVE);
            put_str(client, buf);
            buf.put_u16(*id);
        }
        WalRecord::InboundQos2Insert { client, id } => {
            buf.put_u8(K_INBOUND_QOS2_INSERT);
            put_str(client, buf);
            buf.put_u16(*id);
        }
        WalRecord::InboundQos2Remove { client, id } => {
            buf.put_u8(K_INBOUND_QOS2_REMOVE);
            put_str(client, buf);
            buf.put_u16(*id);
        }
        WalRecord::WillSet { client, will } => {
            buf.put_u8(K_WILL_SET);
            put_str(client, buf);
            put_str(will.topic.as_str(), buf);
            buf.put_u8(will.qos as u8);
            buf.put_u8(u8::from(will.retain));
            put_bytes(&will.payload, buf);
        }
        WalRecord::WillClear { client } => {
            buf.put_u8(K_WILL_CLEAR);
            put_str(client, buf);
        }
        WalRecord::RetainedSet {
            topic,
            qos,
            payload,
        } => {
            buf.put_u8(K_RETAINED_SET);
            put_str(topic.as_str(), buf);
            buf.put_u8(*qos as u8);
            put_bytes(payload, buf);
        }
    }
}

/// Encodes one framed record (`[len][crc][payload]`) into `buf`.
///
/// Single-pass: the payload is encoded directly into `buf` after an
/// 8-byte header placeholder, then the length and CRC are patched in
/// place. No intermediate scratch buffer, so encoding is copy-free and
/// (given a warm `buf`) allocation-free — the per-record writer and
/// the persistence thread's batch encoder share this routine, which is
/// why the two produce byte-identical streams by construction.
pub fn encode_frame(seq: u64, rec: &WalRecord, buf: &mut BytesMut) {
    let start = buf.len();
    buf.put_u32(0); // length placeholder, patched below
    buf.put_u32(0); // crc placeholder, patched below
    encode_payload(seq, rec, buf);
    let body = &buf[start + 8..];
    let len = (body.len() as u32).to_be_bytes();
    let crc = crc32(body).to_be_bytes();
    buf[start..start + 4].copy_from_slice(&len);
    buf[start + 4..start + 8].copy_from_slice(&crc);
}

/// Byte cursor for record bodies; every read is bounds-checked so a
/// malformed body terminates decoding instead of panicking.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).ok()
    }

    fn bytes(&mut self) -> Option<Bytes> {
        let len = self.u32()? as usize;
        self.take(len).map(|b| Bytes::from(b.to_vec()))
    }

    fn qos(&mut self) -> Option<QoS> {
        QoS::from_u8(self.u8()?)
    }

    fn topic(&mut self) -> Option<TopicName> {
        TopicName::new(self.str()?).ok()
    }

    fn filter(&mut self) -> Option<TopicFilter> {
        TopicFilter::new(self.str()?).ok()
    }
}

/// Decodes one record payload; `None` on any malformation.
fn decode_payload(payload: &[u8]) -> Option<(u64, WalRecord)> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let seq = c.u64()?;
    let kind = c.u8()?;
    let rec = match kind {
        K_WATERMARK => WalRecord::Watermark { seq: c.u64()? },
        K_SESSION_CREATE => WalRecord::SessionCreate { client: c.str()? },
        K_SESSION_DESTROY => WalRecord::SessionDestroy { client: c.str()? },
        K_SUBSCRIBE => WalRecord::Subscribe {
            client: c.str()?,
            filter: c.filter()?,
            qos: c.qos()?,
        },
        K_UNSUBSCRIBE => WalRecord::Unsubscribe {
            client: c.str()?,
            filter: c.filter()?,
        },
        K_ENQUEUE => WalRecord::Enqueue {
            client: c.str()?,
            topic: c.topic()?,
            qos: c.qos()?,
            payload: c.bytes()?,
        },
        K_QUEUE_DRAINED => WalRecord::QueueDrained { client: c.str()? },
        K_INFLIGHT_INSERT => {
            let client = c.str()?;
            let id = c.u16()?;
            let topic = c.topic()?;
            let qos = c.qos()?;
            let flags = c.u8()?;
            WalRecord::InflightInsert {
                client,
                id,
                topic,
                qos,
                retain: flags & 1 != 0,
                released: flags & 2 != 0,
                payload: c.bytes()?,
            }
        }
        K_INFLIGHT_RELEASE => WalRecord::InflightRelease {
            client: c.str()?,
            id: c.u16()?,
        },
        K_INFLIGHT_REMOVE => WalRecord::InflightRemove {
            client: c.str()?,
            id: c.u16()?,
        },
        K_INBOUND_QOS2_INSERT => WalRecord::InboundQos2Insert {
            client: c.str()?,
            id: c.u16()?,
        },
        K_INBOUND_QOS2_REMOVE => WalRecord::InboundQos2Remove {
            client: c.str()?,
            id: c.u16()?,
        },
        K_WILL_SET => {
            let client = c.str()?;
            let topic = c.topic()?;
            let qos = c.qos()?;
            let retain = c.u8()? != 0;
            let payload = c.bytes()?;
            WalRecord::WillSet {
                client,
                will: LastWill {
                    topic,
                    payload,
                    qos,
                    retain,
                },
            }
        }
        K_WILL_CLEAR => WalRecord::WillClear { client: c.str()? },
        K_RETAINED_SET => WalRecord::RetainedSet {
            topic: c.topic()?,
            qos: c.qos()?,
            payload: c.bytes()?,
        },
        _ => return None,
    };
    Some((seq, rec))
}

/// Decodes every valid framed record from `data`, stopping at the first
/// truncated or corrupted frame (the crash-recovery contract: a torn tail
/// never invalidates the prefix).
pub fn decode_frames(data: &[u8]) -> Vec<(u64, WalRecord)> {
    let mut out = Vec::new();
    let mut rest = data;
    while rest.len() >= 8 {
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(frame_end) = len.checked_add(8) else {
            break;
        };
        if frame_end > rest.len() {
            break; // truncated tail
        }
        let payload = &rest[8..frame_end];
        if crc32(payload) != crc {
            break; // corrupted frame
        }
        let Some(rec) = decode_payload(payload) else {
            break; // unknown kind / malformed body
        };
        out.push(rec);
        rest = &rest[frame_end..];
    }
    out
}

/// Reads and decodes every valid record from a WAL file. A missing file
/// is an empty log.
pub fn read_wal(path: &Path) -> Vec<(u64, WalRecord)> {
    match std::fs::read(path) {
        Ok(data) => decode_frames(&data),
        Err(_) => Vec::new(),
    }
}

/// Debug-build guard for the write-behind contract: WAL file I/O must
/// never run on a broker shard event-loop thread (named `*-shard-N`) —
/// the persistence thread owns the file handles.
#[inline]
fn assert_off_shard_thread() {
    debug_assert!(
        std::thread::current()
            .name()
            .is_none_or(|n| !n.contains("-shard-")),
        "WAL I/O must not run on a shard event-loop thread"
    );
}

/// Append-only framed-record writer over one WAL file. Owns a reusable
/// staging buffer so steady-state appends are allocation-free.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    buf: BytesMut,
}

impl WalWriter {
    /// Creates (truncating) the WAL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<WalWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            file,
            buf: BytesMut::with_capacity(256),
        })
    }

    /// Appends one framed record and flushes it to the OS.
    pub fn append(&mut self, seq: u64, rec: &WalRecord) -> std::io::Result<()> {
        assert_off_shard_thread();
        self.buf.clear();
        encode_frame(seq, rec, &mut self.buf);
        self.file.write_all(&self.buf)?;
        self.file.flush()
    }

    /// Appends a batch of records group-committed as one `write`:
    /// sequence numbers `start_seq + 1 ..` are assigned in iteration
    /// order, exactly as consecutive [`WalWriter::append`] calls would,
    /// so the resulting byte stream is identical to the per-record
    /// path's. Returns the last sequence number assigned.
    pub fn append_batch<'a>(
        &mut self,
        start_seq: u64,
        recs: impl IntoIterator<Item = &'a WalRecord>,
    ) -> std::io::Result<u64> {
        assert_off_shard_thread();
        self.buf.clear();
        let mut seq = start_seq;
        for rec in recs {
            seq += 1;
            encode_frame(seq, rec, &mut self.buf);
        }
        self.file.write_all(&self.buf)?;
        self.file.flush()?;
        Ok(seq)
    }

    /// Fsyncs appended data to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        assert_off_shard_thread();
        self.file.sync_data()
    }

    /// Discards every record (post-compaction truncation).
    pub fn reset(&mut self) -> std::io::Result<()> {
        assert_off_shard_thread();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::SessionCreate {
                client: "alice".into(),
            },
            WalRecord::Subscribe {
                client: "alice".into(),
                filter: TopicFilter::new("a/+/b").unwrap(),
                qos: QoS::AtLeastOnce,
            },
            WalRecord::Enqueue {
                client: "alice".into(),
                topic: TopicName::new("a/x/b").unwrap(),
                qos: QoS::ExactlyOnce,
                payload: Bytes::from_static(b"payload"),
            },
            WalRecord::InflightInsert {
                client: "alice".into(),
                id: 7,
                topic: TopicName::new("t").unwrap(),
                qos: QoS::ExactlyOnce,
                retain: true,
                released: true,
                payload: Bytes::from_static(b"x"),
            },
            WalRecord::WillSet {
                client: "bob".into(),
                will: LastWill {
                    topic: TopicName::new("wills/bob").unwrap(),
                    payload: Bytes::from_static(b"gone"),
                    qos: QoS::AtLeastOnce,
                    retain: false,
                },
            },
            WalRecord::RetainedSet {
                topic: TopicName::new("cfg/x").unwrap(),
                qos: QoS::AtMostOnce,
                payload: Bytes::new(),
            },
            WalRecord::Watermark { seq: 42 },
        ]
    }

    #[test]
    fn records_roundtrip() {
        let mut buf = BytesMut::new();
        for (i, rec) in sample_records().iter().enumerate() {
            encode_frame(i as u64, rec, &mut buf);
        }
        let decoded = decode_frames(&buf);
        assert_eq!(decoded.len(), sample_records().len());
        for ((seq, rec), (i, expect)) in decoded.iter().zip(sample_records().iter().enumerate()) {
            assert_eq!(*seq, i as u64);
            assert_eq!(rec, expect);
        }
    }

    #[test]
    fn truncated_tail_keeps_prefix() {
        let mut buf = BytesMut::new();
        for (i, rec) in sample_records().iter().enumerate() {
            encode_frame(i as u64, rec, &mut buf);
        }
        let full = decode_frames(&buf).len();
        let cut = decode_frames(&buf[..buf.len() - 3]);
        assert_eq!(cut.len(), full - 1, "only the torn last frame is lost");
    }

    #[test]
    fn corrupt_frame_stops_decoding() {
        let mut buf = BytesMut::new();
        for (i, rec) in sample_records().iter().enumerate() {
            encode_frame(i as u64, rec, &mut buf);
        }
        let mut data = buf.to_vec();
        // Flip a byte inside the second frame's payload.
        let first_len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize + 8;
        data[first_len + 10] ^= 0xFF;
        let decoded = decode_frames(&data);
        assert_eq!(decoded.len(), 1, "decoding stops at the corrupt frame");
        assert_eq!(decoded[0].1, sample_records()[0]);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" → 0xCBF43926 (the IEEE check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn writer_appends_and_resets() {
        let dir = std::env::temp_dir().join(format!("sdflmq-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(1, &WalRecord::SessionCreate { client: "c".into() })
            .unwrap();
        w.append(2, &WalRecord::WillClear { client: "c".into() })
            .unwrap();
        assert_eq!(read_wal(&path).len(), 2);
        w.reset().unwrap();
        assert!(read_wal(&path).is_empty());
        w.append(3, &WalRecord::QueueDrained { client: "c".into() })
            .unwrap();
        let recs = read_wal(&path);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_append_matches_per_record_bytes() {
        let dir = std::env::temp_dir().join(format!("sdflmq-wal-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let one = dir.join("per-record.wal");
        let many = dir.join("batched.wal");
        let records = sample_records();

        let mut w = WalWriter::create(&one).unwrap();
        let mut seq = 0;
        for rec in &records {
            seq += 1;
            w.append(seq, rec).unwrap();
        }

        let mut w = WalWriter::create(&many).unwrap();
        // Split the same sequence into uneven batches.
        let last = w.append_batch(0, &records[..3]).unwrap();
        let last = w.append_batch(last, &records[3..]).unwrap();
        assert_eq!(last, records.len() as u64);

        assert_eq!(
            std::fs::read(&one).unwrap(),
            std::fs::read(&many).unwrap(),
            "group-committed stream must be byte-identical to the per-record writer"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
