//! On-disk persistence store: per-shard WAL streams + compacted snapshots.
//!
//! Layout inside the persistence directory:
//!
//! ```text
//! wal-shard-{i}.log       per-shard live session stream
//! snapshot-shard-{i}.wal  compacted per-shard session snapshot
//! retained.wal            broker-global retained stream (appended under
//!                         the SharedIndex writer lock, so record order
//!                         matches the index exactly)
//! snapshot-retained.wal   compacted retained snapshot
//! ```
//!
//! Session records are disjoint across shard streams because the shard is
//! a pure function of the client id, so per-shard appends need no
//! cross-shard ordering. On open, the store replays every stream into a
//! [`RecoveredState`], then *boot-compacts*: it rewrites fresh snapshots
//! for the (possibly different) new shard count and truncates the live
//! WALs, so a restart chain never replays more than one epoch of history.
//!
//! Persistence never kills the broker: append errors are swallowed (the
//! broker degrades to in-memory operation), which is why every public
//! method here returns `()` rather than `io::Result`.

use super::recovery::{retained_records, session_records, RecoveredState};
use super::snapshot::{read_snapshot, write_snapshot};
use super::wal::{read_wal, WalRecord, WalWriter};
use crate::broker::shard_of;
use crate::packet::QoS;
use crate::retained::RetainedStore;
use crate::stats::BrokerCounters;
use crate::topic::TopicName;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One live WAL stream plus its compaction bookkeeping.
#[derive(Debug)]
struct Stream {
    writer: Option<WalWriter>,
    seq: u64,
    since_snapshot: u64,
}

impl Stream {
    fn append(&mut self, rec: &WalRecord, counters: &BrokerCounters) {
        self.seq += 1;
        self.since_snapshot += 1;
        if let Some(w) = self.writer.as_mut() {
            if w.append(self.seq, rec).is_ok() {
                BrokerCounters::bump(&counters.wal_records);
            } else {
                // Degrade to in-memory operation rather than poisoning
                // the broker with a dead file handle.
                self.writer = None;
            }
        }
    }

    fn compact(&mut self, path: &Path, records: &[WalRecord], counters: &BrokerCounters) {
        if write_snapshot(path, self.seq, records).is_ok() {
            if let Some(w) = self.writer.as_mut() {
                let _ = w.reset();
            }
            self.since_snapshot = 0;
            BrokerCounters::bump(&counters.wal_snapshots);
        }
    }
}

/// Durable store shared by every broker shard and the index writer.
#[derive(Debug)]
pub struct PersistStore {
    dir: PathBuf,
    snapshot_every: u64,
    counters: Arc<BrokerCounters>,
    shard_streams: Vec<Mutex<Stream>>,
    retained_stream: Mutex<Stream>,
}

fn shard_wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-shard-{shard}.log"))
}

fn shard_snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snapshot-shard-{shard}.wal"))
}

fn retained_wal_path(dir: &Path) -> PathBuf {
    dir.join("retained.wal")
}

fn retained_snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot-retained.wal")
}

/// Shard stream indexes present on disk (from either a live WAL or a
/// snapshot file), sorted.
fn discover_shards(dir: &Path) -> BTreeSet<usize> {
    let mut found = BTreeSet::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let idx = name
            .strip_prefix("wal-shard-")
            .and_then(|s| s.strip_suffix(".log"))
            .or_else(|| {
                name.strip_prefix("snapshot-shard-")
                    .and_then(|s| s.strip_suffix(".wal"))
            });
        if let Some(idx) = idx.and_then(|s| s.parse::<usize>().ok()) {
            found.insert(idx);
        }
    }
    found
}

/// Replays every stream in `dir` into a [`RecoveredState`]. Used by the
/// store on open and directly by the recovery benchmark.
pub fn recover_dir(dir: &Path, max_queued: usize) -> RecoveredState {
    let mut state = RecoveredState::default();
    let (watermark, snap) = read_snapshot(&retained_snapshot_path(dir));
    let live = read_wal(&retained_wal_path(dir));
    state.apply_stream(watermark, snap, live, max_queued);
    for shard in discover_shards(dir) {
        let (watermark, snap) = read_snapshot(&shard_snapshot_path(dir, shard));
        let live = read_wal(&shard_wal_path(dir, shard));
        state.apply_stream(watermark, snap, live, max_queued);
    }
    state
}

impl PersistStore {
    /// Opens the store: replays snapshot + WAL into a [`RecoveredState`],
    /// boot-compacts onto the new shard layout (sessions are re-assigned
    /// by `shard_of(client, shards)`, so a restart may change the shard
    /// count), truncates the live WALs, and removes stale streams from a
    /// larger previous layout.
    ///
    /// Recovered wills are *not* re-persisted: the broker fires them
    /// during startup, after which they are discharged.
    pub fn open(
        dir: &Path,
        shards: usize,
        snapshot_every: u64,
        max_queued: usize,
        counters: Arc<BrokerCounters>,
    ) -> std::io::Result<(PersistStore, RecoveredState)> {
        std::fs::create_dir_all(dir)?;
        let state = recover_dir(dir, max_queued);

        // Boot compaction: fresh epoch, sequence numbers restart at 0.
        let mut shard_streams = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut records = Vec::new();
            for session in state.sessions.values() {
                if shard_of(&session.client_id, shards) == shard {
                    session_records(session, &mut records);
                }
            }
            write_snapshot(&shard_snapshot_path(dir, shard), 0, &records)?;
            let writer = WalWriter::create(&shard_wal_path(dir, shard))?;
            shard_streams.push(Mutex::new(Stream {
                writer: Some(writer),
                seq: 0,
                since_snapshot: 0,
            }));
        }
        for stale in discover_shards(dir).range(shards..) {
            let _ = std::fs::remove_file(shard_wal_path(dir, *stale));
            let _ = std::fs::remove_file(shard_snapshot_path(dir, *stale));
        }

        let records = retained_records(
            state
                .retained
                .iter()
                .map(|(topic, (qos, payload))| (topic, *qos, payload)),
        );
        write_snapshot(&retained_snapshot_path(dir), 0, &records)?;
        let retained_writer = WalWriter::create(&retained_wal_path(dir))?;

        Ok((
            PersistStore {
                dir: dir.to_path_buf(),
                snapshot_every: snapshot_every.max(1),
                counters,
                shard_streams,
                retained_stream: Mutex::new(Stream {
                    writer: Some(retained_writer),
                    seq: 0,
                    since_snapshot: 0,
                }),
            },
            state,
        ))
    }

    /// Appends one record to a shard's session stream. Returns true when
    /// the stream has outgrown `snapshot_every` and the owning shard
    /// should call [`PersistStore::compact_shard`] with its current state.
    pub fn append_shard(&self, shard: usize, rec: &WalRecord) -> bool {
        let mut stream = self.shard_streams[shard].lock();
        stream.append(rec, &self.counters);
        stream.since_snapshot >= self.snapshot_every
    }

    /// Replaces a shard's snapshot with `records` (the shard's serialized
    /// current state) and truncates its live WAL.
    pub fn compact_shard(&self, shard: usize, records: &[WalRecord]) {
        let mut stream = self.shard_streams[shard].lock();
        let path = shard_snapshot_path(&self.dir, shard);
        stream.compact(&path, records, &self.counters);
    }

    /// Appends one retained event. Called under the `SharedIndex` writer
    /// lock so the stream order matches index order exactly; the passed
    /// `store` is the post-apply retained state, used for self-compaction
    /// when the stream outgrows `snapshot_every`.
    pub fn append_retained(
        &self,
        topic: &TopicName,
        qos: QoS,
        payload: &Bytes,
        store: &RetainedStore,
    ) {
        let mut stream = self.retained_stream.lock();
        stream.append(
            &WalRecord::RetainedSet {
                topic: topic.clone(),
                qos,
                payload: payload.clone(),
            },
            &self.counters,
        );
        if stream.since_snapshot >= self.snapshot_every {
            let records = retained_records(store.iter().map(|(t, r)| (t, r.qos, &r.payload)));
            let path = retained_snapshot_path(&self.dir);
            stream.compact(&path, &records, &self.counters);
        }
    }

    /// Forces a compacted retained snapshot (explicit `snapshot_now`).
    pub fn compact_retained(&self, store: &RetainedStore) {
        let mut stream = self.retained_stream.lock();
        let records = retained_records(store.iter().map(|(t, r)| (t, r.qos, &r.payload)));
        let path = retained_snapshot_path(&self.dir);
        stream.compact(&path, &records, &self.counters);
    }

    /// Number of shard streams the store was opened with.
    pub fn shards(&self) -> usize {
        self.shard_streams.len()
    }

    /// The persistence directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::QueuedMessage;
    use crate::topic::TopicFilter;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdflmq-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_append_reopen_recovers() {
        let dir = temp_dir("roundtrip");
        let counters = Arc::new(BrokerCounters::default());
        {
            let (store, state) =
                PersistStore::open(&dir, 2, 1024, 64, Arc::clone(&counters)).unwrap();
            assert!(state.sessions.is_empty());
            let shard = shard_of("alice", 2);
            store.append_shard(
                shard,
                &WalRecord::SessionCreate {
                    client: "alice".into(),
                },
            );
            store.append_shard(
                shard,
                &WalRecord::Subscribe {
                    client: "alice".into(),
                    filter: TopicFilter::new("a/#").unwrap(),
                    qos: QoS::AtLeastOnce,
                },
            );
            let retained = RetainedStore::new();
            store.append_retained(
                &TopicName::new("cfg/x").unwrap(),
                QoS::AtMostOnce,
                &Bytes::from_static(b"v"),
                &retained,
            );
        }
        // Reopen with a different shard count: the session must follow its
        // new shard assignment.
        let (_store, state) = PersistStore::open(&dir, 4, 1024, 64, counters).unwrap();
        let s = state.sessions.get("alice").expect("session recovered");
        assert_eq!(s.subscriptions.len(), 1);
        assert_eq!(state.retained.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_truncates_live_wal() {
        let dir = temp_dir("compact");
        let counters = Arc::new(BrokerCounters::default());
        let (store, _) = PersistStore::open(&dir, 1, 4, 64, Arc::clone(&counters)).unwrap();
        let mut session = crate::session::Session::new("bob".into(), false, 64);
        session.queue_message(QueuedMessage {
            topic: TopicName::new("t").unwrap(),
            payload: Bytes::from_static(b"m"),
            qos: QoS::AtLeastOnce,
        });
        let mut needs_compact = false;
        for _ in 0..4 {
            needs_compact = store.append_shard(
                0,
                &WalRecord::Enqueue {
                    client: "bob".into(),
                    topic: TopicName::new("t").unwrap(),
                    qos: QoS::AtLeastOnce,
                    payload: Bytes::from_static(b"m"),
                },
            );
        }
        assert!(needs_compact, "snapshot_every=4 reached");
        let mut records = Vec::new();
        session_records(&session, &mut records);
        store.compact_shard(0, &records);
        assert!(
            read_wal(&shard_wal_path(&dir, 0)).is_empty(),
            "live WAL truncated after compaction"
        );
        let (watermark, snap) = read_snapshot(&shard_snapshot_path(&dir, 0));
        assert_eq!(watermark, 4);
        assert!(!snap.is_empty());
        assert_eq!(counters.snapshot().wal_snapshots, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shrinking_shard_count_drops_stale_streams() {
        let dir = temp_dir("shrink");
        let counters = Arc::new(BrokerCounters::default());
        {
            let (store, _) = PersistStore::open(&dir, 4, 1024, 64, Arc::clone(&counters)).unwrap();
            // Park a session on whichever shard "zed" hashes to.
            store.append_shard(
                shard_of("zed", 4),
                &WalRecord::SessionCreate {
                    client: "zed".into(),
                },
            );
        }
        let (store, state) = PersistStore::open(&dir, 1, 1024, 64, counters).unwrap();
        assert_eq!(store.shards(), 1);
        assert!(state.sessions.contains_key("zed"));
        assert!(discover_shards(&dir).iter().all(|i| *i < 1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
