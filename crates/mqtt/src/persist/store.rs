//! On-disk persistence store: per-shard WAL streams + compacted
//! snapshots, written **behind** the broker by a dedicated persistence
//! thread.
//!
//! Layout inside the persistence directory:
//!
//! ```text
//! wal-shard-{i}.log       per-shard live session stream
//! snapshot-shard-{i}.wal  compacted per-shard session snapshot
//! retained.wal            broker-global retained stream (enqueued under
//!                         the SharedIndex writer lock, so record order
//!                         matches the index exactly)
//! snapshot-retained.wal   compacted retained snapshot
//! ```
//!
//! Session records are disjoint across shard streams because the shard is
//! a pure function of the client id, so per-shard appends need no
//! cross-shard ordering. On open, the store replays every stream into a
//! [`RecoveredState`], then *boot-compacts*: it rewrites fresh snapshots
//! for the (possibly different) new shard count and truncates the live
//! WALs, so a restart chain never replays more than one epoch of history.
//!
//! # Write-behind pipeline
//!
//! Shard event-loop threads never issue WAL write or flush syscalls.
//! [`PersistStore::append_shard`] is a cheap enqueue onto a bounded
//! per-stream queue; one dedicated persistence thread (`sdflmq-wal`,
//! the sole owner of the file handles) drains the queues and
//! **group-commits**: consecutive queued records are batch-encoded into
//! one reused scratch buffer and written with a single `write` per
//! batch. Queue order is preserved and sequence numbers are assigned at
//! write time in that order, so the on-disk byte stream is identical to
//! a per-record writer's — recovery replay cannot tell the difference.
//! Snapshot compaction runs on the same thread: shards only serialize
//! their in-memory state into the queue ([`PersistStore::compact_shard`]).
//!
//! A full queue applies the configured [`WalOverflow`] policy: `Block`
//! stalls the appender until the persistence thread frees a slot
//! (counted in `wal_stalls`), `Shed` drops the record (counted in
//! `wal_sheds`) and forces a compaction on the next append so the
//! on-disk image re-converges. [`PersistStore::drain`] is the barrier
//! `snapshot_now()` and broker shutdown use: it blocks until every
//! record enqueued before the call is written (and fsynced, under the
//! `GroupCommit` / `Always` [`Durability`] policies).
//!
//! Persistence never kills the broker: a write error degrades the
//! affected stream to in-memory operation — observable through the
//! `wal_append_errors` counter and a one-shot `eprintln`, not through a
//! broker failure — which is why the public append methods return
//! compaction hints rather than `io::Result`.

use super::recovery::{retained_records, session_records, RecoveredState};
use super::snapshot::{read_snapshot, write_snapshot, write_snapshot_durable};
use super::wal::{read_wal, WalRecord, WalWriter};
use super::{Durability, Persistence, WalOverflow};
use crate::broker::shard_of;
use crate::packet::QoS;
use crate::retained::RetainedStore;
use crate::stats::BrokerCounters;
use crate::topic::TopicName;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of work queued for the persistence thread.
#[derive(Debug)]
enum WalOp {
    /// Append one record to the stream's live WAL.
    Append(WalRecord),
    /// Replace the stream's snapshot with the serialized state and
    /// truncate its live WAL. Exempt from the queue capacity limit so a
    /// backlogged queue can always accept the compaction that shrinks it.
    Compact(Vec<WalRecord>),
}

/// Bookkeeping for one bounded stream queue.
#[derive(Debug, Default)]
struct QueueState {
    ops: VecDeque<WalOp>,
    /// Ops ever accepted into the queue.
    enqueued: u64,
    /// Ops fully processed (written or consciously dropped) by the
    /// persistence thread.
    completed: u64,
    /// Ops durable per the configured fsync policy (equals `completed`
    /// under `OsCache`, lags until the next sync otherwise).
    synced: u64,
    /// Appends since the last compaction was enqueued.
    since_snapshot: u64,
}

/// One bounded per-stream queue. The condvar serves both waiter kinds:
/// appenders blocked on capacity and [`PersistStore::drain`] callers
/// waiting for `completed` / `synced` to reach their barrier.
#[derive(Debug, Default)]
struct StreamQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// Wake-up channel for the persistence thread.
#[derive(Debug, Default)]
struct WorkSignal {
    epoch: u64,
    shutdown: bool,
    sync_now: bool,
    /// A queue crossed its half-full mark (or an appender is blocked):
    /// skip the coalescing nap and drain immediately.
    urgent: bool,
}

/// How long the persistence thread lets a burst accumulate before
/// draining. Wakes are context switches; at high append rates a
/// per-record wake costs more than the write itself, so the worker naps
/// briefly and group-commits the accumulated run. Urgent kicks (queue
/// half full, blocked appender, drain, shutdown) cut the nap short.
const COALESCE: Duration = Duration::from_micros(500);

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    snapshot_every: u64,
    queue_capacity: usize,
    overflow: WalOverflow,
    durability: Durability,
    counters: Arc<BrokerCounters>,
    /// One queue per shard stream plus the retained stream (last index).
    queues: Vec<StreamQueue>,
    work: Mutex<WorkSignal>,
    work_cv: Condvar,
    /// Set once shutdown begins: appends become no-ops and blocked
    /// appenders are released instead of waiting on a dead worker.
    stopped: AtomicBool,
    /// One-shot guard for the degraded-durability eprintln.
    error_logged: AtomicBool,
}

impl Inner {
    /// Wakes the persistence thread. `urgent` skips its coalescing nap.
    fn kick(&self, urgent: bool) {
        let mut w = self.work.lock();
        w.epoch = w.epoch.wrapping_add(1);
        if urgent {
            w.urgent = true;
        }
        drop(w);
        self.work_cv.notify_one();
    }

    /// Enqueues one append onto stream `idx`, applying the overflow
    /// policy. Returns true when the caller should compact the stream.
    fn enqueue_append(&self, idx: usize, rec: WalRecord) -> bool {
        if self.stopped.load(Ordering::Acquire) {
            return false;
        }
        let q = &self.queues[idx];
        let mut st = q.state.lock();
        if st.ops.len() >= self.queue_capacity {
            match self.overflow {
                WalOverflow::Block => {
                    BrokerCounters::bump(&self.counters.wal_stalls);
                    self.kick(true);
                    while st.ops.len() >= self.queue_capacity
                        && !self.stopped.load(Ordering::Acquire)
                    {
                        q.cv.wait(&mut st);
                    }
                    if self.stopped.load(Ordering::Acquire) {
                        return false;
                    }
                }
                WalOverflow::Shed => {
                    BrokerCounters::bump(&self.counters.wal_sheds);
                    self.kick(true);
                    // The record is lost; a compaction re-serializes the
                    // shard's full in-memory state, restoring consistency.
                    return true;
                }
            }
        }
        st.ops.push_back(WalOp::Append(rec));
        st.enqueued += 1;
        st.since_snapshot += 1;
        let depth = st.ops.len();
        let compact = st.since_snapshot >= self.snapshot_every;
        drop(st);
        BrokerCounters::raise(&self.counters.wal_queue_hwm, depth as u64);
        // Wake the worker only on the empty -> non-empty transition (a
        // later append finds an earlier kick still pending) or when the
        // queue is filling faster than the worker drains it. Everything
        // else coasts on the worker's coalescing nap.
        let urgent = depth > self.queue_capacity / 2;
        if depth == 1 || urgent {
            self.kick(urgent);
        }
        compact
    }

    /// Enqueues a compaction (always accepted — see [`WalOp::Compact`]).
    fn enqueue_compact(&self, idx: usize, records: Vec<WalRecord>) {
        if self.stopped.load(Ordering::Acquire) {
            return;
        }
        let q = &self.queues[idx];
        let mut st = q.state.lock();
        st.ops.push_back(WalOp::Compact(records));
        st.enqueued += 1;
        st.since_snapshot = 0;
        drop(st);
        self.kick(false);
    }

    /// One-shot stderr report that durability degraded.
    fn report_degraded(&self, what: &str, err: &std::io::Error) {
        if !self.error_logged.swap(true, Ordering::Relaxed) {
            eprintln!(
                "sdflmq-mqtt: WAL {what} failed ({err}); broker degrades \
                 to in-memory operation (see wal_append_errors)"
            );
        }
    }
}

/// Durable store shared by every broker shard and the index writer.
#[derive(Debug)]
pub struct PersistStore {
    inner: Arc<Inner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

fn shard_wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-shard-{shard}.log"))
}

fn shard_snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snapshot-shard-{shard}.wal"))
}

fn retained_wal_path(dir: &Path) -> PathBuf {
    dir.join("retained.wal")
}

fn retained_snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot-retained.wal")
}

/// Shard stream indexes present on disk (from either a live WAL or a
/// snapshot file), sorted.
fn discover_shards(dir: &Path) -> BTreeSet<usize> {
    let mut found = BTreeSet::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let idx = name
            .strip_prefix("wal-shard-")
            .and_then(|s| s.strip_suffix(".log"))
            .or_else(|| {
                name.strip_prefix("snapshot-shard-")
                    .and_then(|s| s.strip_suffix(".wal"))
            });
        if let Some(idx) = idx.and_then(|s| s.parse::<usize>().ok()) {
            found.insert(idx);
        }
    }
    found
}

/// Replays every stream in `dir` into a [`RecoveredState`]. Used by the
/// store on open and directly by the recovery benchmark.
pub fn recover_dir(dir: &Path, max_queued: usize) -> RecoveredState {
    let mut state = RecoveredState::default();
    let (watermark, snap) = read_snapshot(&retained_snapshot_path(dir));
    let live = read_wal(&retained_wal_path(dir));
    state.apply_stream(watermark, snap, live, max_queued);
    for shard in discover_shards(dir) {
        let (watermark, snap) = read_snapshot(&shard_snapshot_path(dir, shard));
        let live = read_wal(&shard_wal_path(dir, shard));
        state.apply_stream(watermark, snap, live, max_queued);
    }
    state
}

impl PersistStore {
    /// Opens the store: replays snapshot + WAL into a [`RecoveredState`],
    /// boot-compacts onto the new shard layout (sessions are re-assigned
    /// by `shard_of(client, shards)`, so a restart may change the shard
    /// count), truncates the live WALs, removes stale streams from a
    /// larger previous layout, and spawns the persistence thread.
    ///
    /// Boot I/O runs on the calling thread (broker startup), never on a
    /// shard event loop. Recovered wills are *not* re-persisted: the
    /// broker fires them during startup, after which they are discharged.
    pub fn open(
        dir: &Path,
        shards: usize,
        cfg: &Persistence,
        max_queued: usize,
        counters: Arc<BrokerCounters>,
    ) -> std::io::Result<(PersistStore, RecoveredState)> {
        std::fs::create_dir_all(dir)?;
        let state = recover_dir(dir, max_queued);

        // Boot compaction: fresh epoch, sequence numbers restart at 0.
        let mut writers: Vec<Option<WalWriter>> = Vec::with_capacity(shards + 1);
        let mut snap_paths: Vec<PathBuf> = Vec::with_capacity(shards + 1);
        for shard in 0..shards {
            let mut records = Vec::new();
            for session in state.sessions.values() {
                if shard_of(&session.client_id, shards) == shard {
                    session_records(session, &mut records);
                }
            }
            write_snapshot(&shard_snapshot_path(dir, shard), 0, &records)?;
            writers.push(Some(WalWriter::create(&shard_wal_path(dir, shard))?));
            snap_paths.push(shard_snapshot_path(dir, shard));
        }
        for stale in discover_shards(dir).range(shards..) {
            let _ = std::fs::remove_file(shard_wal_path(dir, *stale));
            let _ = std::fs::remove_file(shard_snapshot_path(dir, *stale));
        }

        let records = retained_records(
            state
                .retained
                .iter()
                .map(|(topic, (qos, payload))| (topic, *qos, payload)),
        );
        write_snapshot(&retained_snapshot_path(dir), 0, &records)?;
        writers.push(Some(WalWriter::create(&retained_wal_path(dir))?));
        snap_paths.push(retained_snapshot_path(dir));

        let inner = Arc::new(Inner {
            dir: dir.to_path_buf(),
            snapshot_every: cfg.snapshot_every.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            overflow: cfg.overflow,
            durability: cfg.durability,
            counters,
            queues: (0..shards + 1).map(|_| StreamQueue::default()).collect(),
            work: Mutex::new(WorkSignal::default()),
            work_cv: Condvar::new(),
            stopped: AtomicBool::new(false),
            error_logged: AtomicBool::new(false),
        });
        let worker = Worker {
            inner: Arc::clone(&inner),
            seqs: vec![0; shards + 1],
            dirty: vec![false; shards + 1],
            writers,
            snap_paths,
            batch: VecDeque::new(),
            last_sync: Instant::now(),
        };
        let handle = std::thread::Builder::new()
            .name("sdflmq-wal".to_owned())
            .spawn(move || worker.run())
            .expect("spawn persistence thread");

        Ok((
            PersistStore {
                inner,
                worker: Mutex::new(Some(handle)),
            },
            state,
        ))
    }

    /// Enqueues one record for a shard's session stream. Returns true
    /// when the stream has outgrown `snapshot_every` (or shed a record)
    /// and the owning shard should call [`PersistStore::compact_shard`]
    /// with its current state. Never touches the disk.
    pub fn append_shard(&self, shard: usize, rec: WalRecord) -> bool {
        self.inner.enqueue_append(shard, rec)
    }

    /// Enqueues a snapshot replacement for a shard stream: `records` is
    /// the shard's serialized current state; the persistence thread
    /// writes the snapshot and truncates the live WAL.
    pub fn compact_shard(&self, shard: usize, records: Vec<WalRecord>) {
        self.inner.enqueue_compact(shard, records);
    }

    /// Enqueues one retained event. Called under the `SharedIndex`
    /// writer lock so the stream order matches index order exactly; the
    /// passed `store` is the post-apply retained state, serialized (in
    /// memory only — no disk I/O under the lock) for self-compaction
    /// when the stream outgrows `snapshot_every`.
    pub fn append_retained(
        &self,
        topic: &TopicName,
        qos: QoS,
        payload: &Bytes,
        store: &RetainedStore,
    ) {
        let idx = self.inner.queues.len() - 1;
        let compact = self.inner.enqueue_append(
            idx,
            WalRecord::RetainedSet {
                topic: topic.clone(),
                qos,
                payload: payload.clone(),
            },
        );
        if compact {
            let records = retained_records(store.iter().map(|(t, r)| (t, r.qos, &r.payload)));
            self.inner.enqueue_compact(idx, records);
        }
    }

    /// Enqueues a compacted retained snapshot (explicit `snapshot_now`).
    pub fn compact_retained(&self, store: &RetainedStore) {
        let idx = self.inner.queues.len() - 1;
        let records = retained_records(store.iter().map(|(t, r)| (t, r.qos, &r.payload)));
        self.inner.enqueue_compact(idx, records);
    }

    /// Drain barrier: blocks until every op enqueued before this call is
    /// written — and, under the `GroupCommit` / `Always` policies,
    /// fsynced. Used by `snapshot_now()` and broker shutdown so readers
    /// of the directory observe a fully flushed stream.
    pub fn drain(&self) {
        let inner = &self.inner;
        let targets: Vec<u64> = inner
            .queues
            .iter()
            .map(|q| q.state.lock().enqueued)
            .collect();
        inner.kick(true); // cut the coalescing nap short
        for (q, target) in inner.queues.iter().zip(&targets) {
            let mut st = q.state.lock();
            while st.completed < *target && !inner.stopped.load(Ordering::Acquire) {
                q.cv.wait(&mut st);
            }
        }
        if matches!(inner.durability, Durability::OsCache) {
            return;
        }
        {
            let mut w = inner.work.lock();
            w.sync_now = true;
            w.epoch = w.epoch.wrapping_add(1);
        }
        inner.work_cv.notify_one();
        for (q, target) in inner.queues.iter().zip(&targets) {
            let mut st = q.state.lock();
            while st.synced < *target && !inner.stopped.load(Ordering::Acquire) {
                q.cv.wait(&mut st);
            }
        }
    }

    /// Flushes every queued op and stops the persistence thread.
    /// Idempotent; called by broker shutdown and by [`Drop`]. After
    /// shutdown, further appends are silently dropped (the broker is
    /// going away with them).
    pub fn shutdown(&self) {
        let handle = self.worker.lock().take();
        {
            let mut w = self.inner.work.lock();
            w.shutdown = true;
            w.epoch = w.epoch.wrapping_add(1);
        }
        self.inner.work_cv.notify_one();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Number of shard streams the store was opened with.
    pub fn shards(&self) -> usize {
        self.inner.queues.len() - 1
    }

    /// The persistence directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }
}

impl Drop for PersistStore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The persistence thread: sole owner of the WAL file handles. Assigns
/// sequence numbers at write time in queue order, so the group-committed
/// byte stream matches the per-record reference writer exactly.
struct Worker {
    inner: Arc<Inner>,
    writers: Vec<Option<WalWriter>>,
    snap_paths: Vec<PathBuf>,
    seqs: Vec<u64>,
    /// Streams with appended-but-unsynced bytes (fsync bookkeeping).
    dirty: Vec<bool>,
    /// Reused drain scratch: swapped wholesale with a queue's backlog
    /// (an O(1) pointer exchange, not a per-op move) each pass.
    batch: VecDeque<WalOp>,
    last_sync: Instant,
}

impl Worker {
    fn run(mut self) {
        let mut seen = 0u64;
        loop {
            let (shutdown, sync_now, urgent) = {
                let mut w = self.inner.work.lock();
                loop {
                    if w.shutdown || w.sync_now || w.epoch != seen {
                        break;
                    }
                    match self.group_deadline() {
                        Some(deadline) => {
                            if self.inner.work_cv.wait_until(&mut w, deadline).timed_out() {
                                break;
                            }
                        }
                        None => self.inner.work_cv.wait(&mut w),
                    }
                }
                seen = w.epoch;
                (
                    w.shutdown,
                    std::mem::take(&mut w.sync_now),
                    std::mem::take(&mut w.urgent),
                )
            };

            // Coalescing nap: a wake costs a context switch, so let a
            // burst accumulate and group-commit the whole run instead of
            // waking per record. Urgent signals cut the nap short.
            if !shutdown && !sync_now && !urgent {
                let deadline = Instant::now() + COALESCE;
                let mut w = self.inner.work.lock();
                while !w.shutdown && !w.sync_now && !w.urgent {
                    if self.inner.work_cv.wait_until(&mut w, deadline).timed_out() {
                        break;
                    }
                }
            }

            for idx in 0..self.inner.queues.len() {
                self.process_queue(idx);
            }

            match self.inner.durability {
                Durability::OsCache => {}
                Durability::Always => {
                    if sync_now || self.dirty.iter().any(|d| *d) {
                        self.sync_dirty();
                    }
                }
                Durability::GroupCommit { interval } => {
                    let due = self.dirty.iter().any(|d| *d) && self.last_sync.elapsed() >= interval;
                    if sync_now || due {
                        self.sync_dirty();
                    }
                }
            }

            if shutdown && self.all_queues_empty() {
                if !matches!(self.inner.durability, Durability::OsCache) {
                    self.sync_dirty();
                }
                // Release anyone still blocked in drain() or on capacity.
                self.inner.stopped.store(true, Ordering::Release);
                for q in &self.inner.queues {
                    q.cv.notify_all();
                }
                return;
            }
        }
    }

    /// Next coalesced-fsync deadline, when one is pending.
    fn group_deadline(&self) -> Option<Instant> {
        match self.inner.durability {
            Durability::GroupCommit { interval } if self.dirty.iter().any(|d| *d) => {
                Some(self.last_sync + interval)
            }
            _ => None,
        }
    }

    fn all_queues_empty(&self) -> bool {
        self.inner
            .queues
            .iter()
            .all(|q| q.state.lock().ops.is_empty())
    }

    /// Drains and executes one queue's backlog: consecutive appends are
    /// group-committed as a single write, compactions rewrite the
    /// snapshot and truncate the live WAL.
    fn process_queue(&mut self, idx: usize) {
        let q = &self.inner.queues[idx];
        {
            let mut st = q.state.lock();
            if st.ops.is_empty() {
                return;
            }
            // O(1) handoff: trade the empty scratch deque for the whole
            // backlog instead of moving ops one by one under the lock.
            std::mem::swap(&mut st.ops, &mut self.batch);
        }
        // Capacity freed: release blocked appenders before the disk I/O.
        q.cv.notify_all();

        let mut batch = std::mem::take(&mut self.batch);
        let ops = batch.make_contiguous();
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                WalOp::Append(_) => {
                    let mut j = i;
                    while j < ops.len() && matches!(ops[j], WalOp::Append(_)) {
                        j += 1;
                    }
                    self.write_appends(idx, &ops[i..j]);
                    i = j;
                }
                WalOp::Compact(records) => {
                    self.write_compact(idx, records);
                    i += 1;
                }
            }
        }
        let done = batch.len() as u64;
        batch.clear();
        self.batch = batch;

        let q = &self.inner.queues[idx];
        let mut st = q.state.lock();
        st.completed += done;
        // With no fsync policy (or no writer left to sync), "written" is
        // as durable as this stream gets.
        if matches!(self.inner.durability, Durability::OsCache) || self.writers[idx].is_none() {
            st.synced = st.completed;
        }
        drop(st);
        q.cv.notify_all();
    }

    /// Group-commits a run of appends: one batch encode into the reused
    /// scratch, one `write` syscall.
    fn write_appends(&mut self, idx: usize, ops: &[WalOp]) {
        let counters = &self.inner.counters;
        let Some(w) = self.writers[idx].as_mut() else {
            return; // degraded stream: records are consciously dropped
        };
        let recs = ops.iter().map(|op| match op {
            WalOp::Append(rec) => rec,
            WalOp::Compact(_) => unreachable!("append run contains only appends"),
        });
        match w.append_batch(self.seqs[idx], recs) {
            Ok(last_seq) => {
                self.seqs[idx] = last_seq;
                self.dirty[idx] = true;
                BrokerCounters::add(&counters.wal_records, ops.len() as u64);
                BrokerCounters::bump(&counters.wal_batches);
            }
            Err(err) => {
                self.writers[idx] = None;
                BrokerCounters::add(&counters.wal_append_errors, ops.len() as u64);
                self.inner.report_degraded("append", &err);
            }
        }
    }

    /// Writes a compacted snapshot for stream `idx` and truncates its
    /// live WAL. The watermark is the stream's current sequence number —
    /// every preceding append has already been written in queue order.
    fn write_compact(&mut self, idx: usize, records: &[WalRecord]) {
        let inner = &self.inner;
        let t = Instant::now();
        let sync = !matches!(inner.durability, Durability::OsCache);
        match write_snapshot_durable(&self.snap_paths[idx], self.seqs[idx], records, sync) {
            Ok(()) => {
                if let Some(w) = self.writers[idx].as_mut() {
                    let _ = w.reset();
                }
                BrokerCounters::bump(&inner.counters.wal_snapshots);
            }
            Err(err) => {
                BrokerCounters::bump(&inner.counters.wal_append_errors);
                inner.report_degraded("snapshot", &err);
            }
        }
        BrokerCounters::add(&inner.counters.snapshot_ms, t.elapsed().as_millis() as u64);
    }

    /// Fsyncs every dirty stream and publishes the durable frontier
    /// (`synced = completed`) on all queues.
    fn sync_dirty(&mut self) {
        for idx in 0..self.writers.len() {
            if self.dirty[idx] {
                if let Some(w) = self.writers[idx].as_mut() {
                    match w.sync() {
                        Ok(()) => BrokerCounters::bump(&self.inner.counters.fsyncs),
                        Err(err) => {
                            self.writers[idx] = None;
                            BrokerCounters::bump(&self.inner.counters.wal_append_errors);
                            self.inner.report_degraded("fsync", &err);
                        }
                    }
                }
                self.dirty[idx] = false;
            }
            // Snapshots sync at write time and degraded streams have
            // nothing left to sync, so the frontier advances regardless.
            let q = &self.inner.queues[idx];
            let mut st = q.state.lock();
            st.synced = st.completed;
            drop(st);
            q.cv.notify_all();
        }
        self.last_sync = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::QueuedMessage;
    use crate::topic::TopicFilter;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdflmq-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(dir: &Path) -> Persistence {
        Persistence::at(dir)
    }

    #[test]
    fn open_append_reopen_recovers() {
        let dir = temp_dir("roundtrip");
        let counters = Arc::new(BrokerCounters::default());
        {
            let (store, state) =
                PersistStore::open(&dir, 2, &cfg(&dir), 64, Arc::clone(&counters)).unwrap();
            assert!(state.sessions.is_empty());
            let shard = shard_of("alice", 2);
            store.append_shard(
                shard,
                WalRecord::SessionCreate {
                    client: "alice".into(),
                },
            );
            store.append_shard(
                shard,
                WalRecord::Subscribe {
                    client: "alice".into(),
                    filter: TopicFilter::new("a/#").unwrap(),
                    qos: QoS::AtLeastOnce,
                },
            );
            let retained = RetainedStore::new();
            store.append_retained(
                &TopicName::new("cfg/x").unwrap(),
                QoS::AtMostOnce,
                &Bytes::from_static(b"v"),
                &retained,
            );
            // Dropping the store shuts the persistence thread down,
            // flushing every queued record.
        }
        // Reopen with a different shard count: the session must follow its
        // new shard assignment.
        let (_store, state) = PersistStore::open(&dir, 4, &cfg(&dir), 64, counters).unwrap();
        let s = state.sessions.get("alice").expect("session recovered");
        assert_eq!(s.subscriptions.len(), 1);
        assert_eq!(state.retained.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_truncates_live_wal() {
        let dir = temp_dir("compact");
        let counters = Arc::new(BrokerCounters::default());
        let config = cfg(&dir).snapshot_every(4);
        let (store, _) = PersistStore::open(&dir, 1, &config, 64, Arc::clone(&counters)).unwrap();
        let mut session = crate::session::Session::new("bob".into(), false, 64);
        session.queue_message(QueuedMessage {
            topic: TopicName::new("t").unwrap(),
            payload: Bytes::from_static(b"m"),
            qos: QoS::AtLeastOnce,
        });
        let mut needs_compact = false;
        for _ in 0..4 {
            needs_compact = store.append_shard(
                0,
                WalRecord::Enqueue {
                    client: "bob".into(),
                    topic: TopicName::new("t").unwrap(),
                    qos: QoS::AtLeastOnce,
                    payload: Bytes::from_static(b"m"),
                },
            );
        }
        assert!(needs_compact, "snapshot_every=4 reached");
        let mut records = Vec::new();
        session_records(&session, &mut records);
        store.compact_shard(0, records);
        store.drain();
        assert!(
            read_wal(&shard_wal_path(&dir, 0)).is_empty(),
            "live WAL truncated after compaction"
        );
        let (watermark, snap) = read_snapshot(&shard_snapshot_path(&dir, 0));
        assert_eq!(watermark, 4);
        assert!(!snap.is_empty());
        assert_eq!(counters.snapshot().wal_snapshots, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shrinking_shard_count_drops_stale_streams() {
        let dir = temp_dir("shrink");
        let counters = Arc::new(BrokerCounters::default());
        {
            let (store, _) =
                PersistStore::open(&dir, 4, &cfg(&dir), 64, Arc::clone(&counters)).unwrap();
            // Park a session on whichever shard "zed" hashes to.
            store.append_shard(
                shard_of("zed", 4),
                WalRecord::SessionCreate {
                    client: "zed".into(),
                },
            );
        }
        let (store, state) = PersistStore::open(&dir, 1, &cfg(&dir), 64, counters).unwrap();
        assert_eq!(store.shards(), 1);
        assert!(state.sessions.contains_key("zed"));
        assert!(discover_shards(&dir).iter().all(|i| *i < 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_barrier_flushes_group_committed_stream() {
        let dir = temp_dir("drain");
        let counters = Arc::new(BrokerCounters::default());
        let config = cfg(&dir).durability(Durability::GroupCommit {
            interval: Duration::from_millis(100),
        });
        let (store, _) = PersistStore::open(&dir, 1, &config, 64, Arc::clone(&counters)).unwrap();
        for i in 0..32 {
            store.append_shard(
                0,
                WalRecord::SessionCreate {
                    client: format!("c{i}"),
                },
            );
        }
        store.drain();
        let recs = read_wal(&shard_wal_path(&dir, 0));
        assert_eq!(recs.len(), 32, "drain observes every enqueued record");
        // Sequence numbers match the per-record reference writer: 1..=32.
        assert_eq!(recs.first().unwrap().0, 1);
        assert_eq!(recs.last().unwrap().0, 32);
        let snap = counters.snapshot();
        assert_eq!(snap.wal_records, 32);
        assert!(
            snap.wal_batches >= 1 && snap.wal_batches <= 32,
            "records arrive in >= 1 group-committed batches"
        );
        assert!(snap.fsyncs >= 1, "drain forces the coalesced fsync");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shed_overflow_counts_and_requests_compaction() {
        let dir = temp_dir("shed");
        let counters = Arc::new(BrokerCounters::default());
        let config = cfg(&dir).queue_capacity(1).overflow(WalOverflow::Shed);
        let (store, _) = PersistStore::open(&dir, 1, &config, 64, Arc::clone(&counters)).unwrap();
        // Saturate the one-slot queue from this thread; at least one of
        // a rapid burst must find it full and shed (the worker needs a
        // syscall per batch, the enqueues need none).
        let mut shed_seen = false;
        for i in 0..4096 {
            let compact = store.append_shard(
                0,
                WalRecord::SessionCreate {
                    client: format!("c{i}"),
                },
            );
            if counters.snapshot().wal_sheds > 0 {
                assert!(compact, "a shed append must request compaction");
                shed_seen = true;
                break;
            }
        }
        store.drain();
        if shed_seen {
            assert!(counters.snapshot().wal_sheds >= 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
