//! Broker persistence: write-ahead log + compacted snapshots.
//!
//! The subsystem write-ahead-logs every durable broker event — retained
//! sets/clears, subscribe/unsubscribe, QoS 1/2 inflight transitions,
//! offline enqueues, session create/destroy, will registration — into
//! per-shard append streams ([`wal`]), periodically folds them into
//! compacted snapshots ([`snapshot`]), and on startup replays
//! snapshot + WAL back into live sessions, retained store, and pending
//! wills ([`recovery`]). [`store`] owns the on-disk layout and the
//! write-behind append/compaction pipeline.
//!
//! Persistence is strictly opt-in via [`Persistence`] on
//! `BrokerConfig`; the default ([`Persistence::disabled`]) leaves the
//! broker purely in-memory with byte-identical behavior.
//!
//! Shard event-loop threads never touch the disk: appends are cheap
//! enqueues onto bounded per-stream queues drained by one dedicated
//! persistence thread that group-commits queued records (batch-encode,
//! single write per batch) and fsyncs per the configured [`Durability`]
//! policy. Order is preserved per stream, so the on-disk byte stream is
//! identical to a per-record writer's. See `docs/PERSISTENCE.md` for
//! the full crash-loss contract per mode.

pub mod recovery;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use recovery::RecoveredState;
pub use store::PersistStore;
pub use wal::WalRecord;

use std::path::PathBuf;
use std::time::Duration;

/// When the persistence thread issues `fsync` for appended WAL batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Never fsync: writes land in the OS page cache (the default).
    /// State survives *process* death — the failure mode the chaos
    /// harness injects — but a power cut may lose recently appended
    /// frames (recovery still stops cleanly at the last intact record).
    OsCache,
    /// Coalesced fsync: the persistence thread syncs dirty streams at
    /// most once per `interval`. A power cut loses at most the last
    /// interval's worth of acknowledged records.
    GroupCommit {
        /// Maximum time appended records may sit unsynced.
        interval: Duration,
    },
    /// Fsync after every group-committed batch: a power cut loses only
    /// records still queued in memory, never records already written.
    Always,
}

/// What an appending shard does when its WAL queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOverflow {
    /// Block the shard until the persistence thread frees a slot (the
    /// default): durability backpressure propagates to clients, no
    /// record is ever lost. Stalls are counted in `wal_stalls`.
    Block,
    /// Drop the record and keep the shard running: the broker degrades
    /// to in-memory for that event, counted in `wal_sheds`, and the
    /// next append triggers a compaction that re-serializes full state
    /// so the on-disk image converges again.
    Shed,
}

/// Persistence configuration for one broker instance.
#[derive(Debug, Clone)]
pub struct Persistence {
    /// Directory holding WAL and snapshot files; `None` disables
    /// persistence entirely.
    pub dir: Option<PathBuf>,
    /// Records appended to a stream since its last snapshot before the
    /// stream is compacted again.
    pub snapshot_every: u64,
    /// Fsync policy for the persistence thread.
    pub durability: Durability,
    /// Bounded capacity of each per-stream append queue (records queued
    /// but not yet written by the persistence thread).
    pub queue_capacity: usize,
    /// Behavior when an append finds its stream queue full.
    pub overflow: WalOverflow,
}

impl Persistence {
    /// Persistence off: the broker is purely in-memory (the default).
    pub fn disabled() -> Self {
        Persistence {
            dir: None,
            snapshot_every: 4096,
            durability: Durability::OsCache,
            queue_capacity: 4096,
            overflow: WalOverflow::Block,
        }
    }

    /// Persists WAL + snapshots under `dir` (created if absent).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Persistence {
            dir: Some(dir.into()),
            ..Persistence::disabled()
        }
    }

    /// Overrides the records-per-snapshot compaction threshold.
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records.max(1);
        self
    }

    /// Overrides the fsync policy (default [`Durability::OsCache`]).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Overrides the per-stream append-queue capacity (default 4096).
    pub fn queue_capacity(mut self, records: usize) -> Self {
        self.queue_capacity = records.max(1);
        self
    }

    /// Overrides the queue-overflow policy (default [`WalOverflow::Block`]).
    pub fn overflow(mut self, overflow: WalOverflow) -> Self {
        self.overflow = overflow;
        self
    }

    /// True when a persistence directory is configured.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

impl Default for Persistence {
    fn default() -> Self {
        Persistence::disabled()
    }
}
