//! Broker persistence: write-ahead log + compacted snapshots.
//!
//! The subsystem write-ahead-logs every durable broker event — retained
//! sets/clears, subscribe/unsubscribe, QoS 1/2 inflight transitions,
//! offline enqueues, session create/destroy, will registration — into
//! per-shard append streams ([`wal`]), periodically folds them into
//! compacted snapshots ([`snapshot`]), and on startup replays
//! snapshot + WAL back into live sessions, retained store, and pending
//! wills ([`recovery`]). [`store`] owns the on-disk layout and the
//! append/compaction state machines.
//!
//! Persistence is strictly opt-in via [`Persistence`] on
//! `BrokerConfig`; the default ([`Persistence::disabled`]) leaves the
//! broker purely in-memory with byte-identical behavior.
//!
//! Durability guarantees (see `docs/PERSISTENCE.md` for the full
//! contract): writes go through the OS page cache without fsync, so
//! state survives *process* death — the failure mode the chaos harness
//! injects — but not power loss. A torn append loses only the frame
//! being written; recovery stops at the first invalid checksum.

pub mod recovery;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use recovery::RecoveredState;
pub use store::PersistStore;
pub use wal::WalRecord;

use std::path::PathBuf;

/// Persistence configuration for one broker instance.
#[derive(Debug, Clone)]
pub struct Persistence {
    /// Directory holding WAL and snapshot files; `None` disables
    /// persistence entirely.
    pub dir: Option<PathBuf>,
    /// Records appended to a stream since its last snapshot before the
    /// stream is compacted again.
    pub snapshot_every: u64,
}

impl Persistence {
    /// Persistence off: the broker is purely in-memory (the default).
    pub fn disabled() -> Self {
        Persistence {
            dir: None,
            snapshot_every: 4096,
        }
    }

    /// Persists WAL + snapshots under `dir` (created if absent).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Persistence {
            dir: Some(dir.into()),
            snapshot_every: 4096,
        }
    }

    /// Overrides the records-per-snapshot compaction threshold.
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records.max(1);
        self
    }

    /// True when a persistence directory is configured.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

impl Default for Persistence {
    fn default() -> Self {
        Persistence::disabled()
    }
}
