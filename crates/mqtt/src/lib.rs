//! # sdflmq-mqtt — embedded MQTT broker and client
//!
//! A self-contained, in-process MQTT 3.1.1-style messaging substrate built
//! for the SDFLMQ federated-learning framework. It provides everything the
//! paper's deployment outsources to EMQX:
//!
//! * a sharded [`broker::Broker`] with snapshot-routed topic-trie matching
//!   ([`index::SharedIndex`]), encode-once fan-out, QoS 0/1/2, retained
//!   messages, persistent sessions, last-will, and deadline-driven
//!   keep-alive expiry;
//! * a threaded [`client::Client`] with blocking QoS handshakes and
//!   handler-based dispatch;
//! * [`bridge::Bridge`] — broker bridging with loop prevention, used to
//!   regionalize SDFL clusters (paper §III.F);
//! * a real wire [`codec`]: every message crossing an in-process
//!   [`transport::LinkEnd`] is a fully encoded MQTT frame.
//!
//! ## Quick start
//!
//! ```
//! use sdflmq_mqtt::{Broker, Client, ClientOptions, QoS};
//! use std::time::Duration;
//!
//! let broker = Broker::start_default();
//! let sub = Client::connect(&broker, ClientOptions::new("sub")).unwrap();
//! sub.subscribe_str("greetings/#", QoS::AtMostOnce).unwrap();
//!
//! let publ = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
//! publ.publish_str("greetings/hello", b"hi".as_slice(), QoS::AtLeastOnce, false)
//!     .unwrap();
//!
//! let msg = sub.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(&msg.payload[..], b"hi");
//! ```

#![warn(missing_docs)]

pub mod bridge;
pub mod broker;
pub mod client;
pub mod codec;
pub mod error;
pub mod fault;
pub mod index;
pub mod packet;
pub mod persist;
pub mod reactor;
pub mod retained;
pub mod session;
pub mod stats;
pub mod topic;
pub mod transport;
pub mod trie;

pub use bridge::{Bridge, BridgeConfig, BridgeDirection, BridgeTopic};
pub use broker::{Broker, BrokerConfig, BRIDGE_PREFIX};
pub use client::{Client, ClientOptions, Dialer, MessageHandler};
pub use error::{ConnectReturnCode, MqttError, Result};
pub use fault::{FaultAction, FaultHandle, FaultPlan, FaultRule};
pub use packet::{LastWill, Packet, Publish, QoS};
pub use persist::{Durability, Persistence, WalOverflow};
pub use stats::BrokerStatsSnapshot;
pub use topic::{TopicFilter, TopicName};
