//! Topic names and topic filters with MQTT 3.1.1 validation and matching.
//!
//! A *topic name* is what a PUBLISH carries: a `/`-separated path with no
//! wildcards. A *topic filter* is what a SUBSCRIBE carries: a path that may
//! contain the single-level wildcard `+` and the multi-level wildcard `#`
//! (which must be the last level). Topics beginning with `$` are reserved
//! system topics and are not matched by filters starting with a wildcard
//! (MQTT 3.1.1 §4.7.2).

use crate::error::{MqttError, Result};
use std::fmt;

/// Maximum UTF-8 byte length of a topic, per MQTT's u16 length prefix.
pub const MAX_TOPIC_LEN: usize = u16::MAX as usize;

/// A validated MQTT topic name (no wildcards).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicName(String);

impl TopicName {
    /// Validates and wraps a topic name.
    ///
    /// Rules: non-empty, ≤ 65535 bytes, no NUL, no `+` or `#` characters.
    pub fn new(s: impl Into<String>) -> Result<Self> {
        let s = s.into();
        validate_common(&s)?;
        if s.contains('+') || s.contains('#') {
            return Err(MqttError::InvalidTopic(s));
        }
        Ok(TopicName(s))
    }

    /// Returns the topic as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the `/`-separated levels of the topic.
    pub fn levels(&self) -> impl Iterator<Item = &str> {
        self.0.split('/')
    }

    /// True if this is a `$`-prefixed system topic.
    pub fn is_system(&self) -> bool {
        self.0.starts_with('$')
    }

    /// Consumes the wrapper, returning the inner string.
    pub fn into_string(self) -> String {
        self.0
    }
}

impl fmt::Display for TopicName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for TopicName {
    type Err = MqttError;
    fn from_str(s: &str) -> Result<Self> {
        TopicName::new(s)
    }
}

/// A validated MQTT topic filter (may contain `+` and `#` wildcards).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicFilter(String);

impl TopicFilter {
    /// Validates and wraps a topic filter.
    ///
    /// Rules: non-empty, ≤ 65535 bytes, no NUL; `+` must occupy an entire
    /// level; `#` must occupy an entire level *and* be the last level.
    pub fn new(s: impl Into<String>) -> Result<Self> {
        let s = s.into();
        validate_common(&s)?;
        let levels: Vec<&str> = s.split('/').collect();
        for (i, level) in levels.iter().enumerate() {
            if level.contains('+') && *level != "+" {
                return Err(MqttError::InvalidTopic(s));
            }
            if level.contains('#') && (*level != "#" || i != levels.len() - 1) {
                return Err(MqttError::InvalidTopic(s));
            }
        }
        Ok(TopicFilter(s))
    }

    /// Returns the filter as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the `/`-separated levels of the filter.
    pub fn levels(&self) -> impl Iterator<Item = &str> {
        self.0.split('/')
    }

    /// True if the filter contains any wildcard level.
    pub fn has_wildcards(&self) -> bool {
        self.levels().any(|l| l == "+" || l == "#")
    }

    /// Tests whether this filter matches the given topic name, following
    /// MQTT 3.1.1 §4.7 semantics including the `$`-topic carve-out.
    pub fn matches(&self, topic: &TopicName) -> bool {
        // Wildcard-leading filters must not match $-topics.
        if topic.is_system() {
            let first = self.0.split('/').next().unwrap_or("");
            if first == "+" || first == "#" {
                return false;
            }
        }
        filter_matches_levels(self.0.split('/'), topic.0.split('/'))
    }

    /// Consumes the wrapper, returning the inner string.
    pub fn into_string(self) -> String {
        self.0
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for TopicFilter {
    type Err = MqttError;
    fn from_str(s: &str) -> Result<Self> {
        TopicFilter::new(s)
    }
}

impl From<TopicName> for TopicFilter {
    fn from(t: TopicName) -> Self {
        // Every valid topic name is a valid (wildcard-free) filter.
        TopicFilter(t.0)
    }
}

fn validate_common(s: &str) -> Result<()> {
    if s.is_empty() || s.len() > MAX_TOPIC_LEN || s.contains('\0') {
        return Err(MqttError::InvalidTopic(s.to_owned()));
    }
    Ok(())
}

/// Core level-by-level matcher shared by [`TopicFilter::matches`] and the
/// subscription trie's linear fallback.
pub(crate) fn filter_matches_levels<'a, F, T>(mut filter: F, mut topic: T) -> bool
where
    F: Iterator<Item = &'a str>,
    T: Iterator<Item = &'a str>,
{
    loop {
        match (filter.next(), topic.next()) {
            // "#" matches the remaining levels, including none at all —
            // "sport/#" matches "sport" itself.
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => {}
            (Some(f), Some(t)) if f == t => {}
            (None, None) => return true,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> TopicName {
        TopicName::new(s).unwrap()
    }
    fn f(s: &str) -> TopicFilter {
        TopicFilter::new(s).unwrap()
    }

    #[test]
    fn topic_name_rejects_wildcards() {
        assert!(TopicName::new("a/+/b").is_err());
        assert!(TopicName::new("a/#").is_err());
        assert!(TopicName::new("").is_err());
        assert!(TopicName::new("a\0b").is_err());
        assert!(TopicName::new("a/b/c").is_ok());
    }

    #[test]
    fn filter_validation() {
        assert!(TopicFilter::new("a/+/b").is_ok());
        assert!(TopicFilter::new("a/#").is_ok());
        assert!(TopicFilter::new("#").is_ok());
        assert!(TopicFilter::new("+").is_ok());
        assert!(TopicFilter::new("a/#/b").is_err());
        assert!(TopicFilter::new("a+/b").is_err());
        assert!(TopicFilter::new("a/b#").is_err());
        assert!(TopicFilter::new("").is_err());
    }

    #[test]
    fn exact_match() {
        assert!(f("a/b/c").matches(&t("a/b/c")));
        assert!(!f("a/b/c").matches(&t("a/b")));
        assert!(!f("a/b").matches(&t("a/b/c")));
    }

    #[test]
    fn single_level_wildcard() {
        assert!(f("a/+/c").matches(&t("a/b/c")));
        assert!(f("a/+/c").matches(&t("a/x/c")));
        assert!(!f("a/+/c").matches(&t("a/b/d")));
        assert!(!f("a/+").matches(&t("a/b/c")));
        assert!(f("+/+").matches(&t("a/b")));
        // "+" matches an empty level.
        assert!(f("a/+/c").matches(&t("a//c")));
    }

    #[test]
    fn multi_level_wildcard() {
        assert!(f("a/#").matches(&t("a/b")));
        assert!(f("a/#").matches(&t("a/b/c/d")));
        assert!(f("a/#").matches(&t("a")));
        assert!(f("#").matches(&t("a/b/c")));
        assert!(!f("a/#").matches(&t("b/a")));
    }

    #[test]
    fn system_topics_hidden_from_leading_wildcards() {
        assert!(!f("#").matches(&t("$SYS/broker/load")));
        assert!(!f("+/broker/load").matches(&t("$SYS/broker/load")));
        assert!(f("$SYS/#").matches(&t("$SYS/broker/load")));
        assert!(f("$SYS/broker/load").matches(&t("$SYS/broker/load")));
    }

    #[test]
    fn parent_level_hash_match() {
        assert!(f("sport/tennis/#").matches(&t("sport/tennis")));
        assert!(f("sport/tennis/#").matches(&t("sport/tennis/player1/score")));
    }

    #[test]
    fn name_to_filter_conversion() {
        let name = t("a/b/c");
        let filter: TopicFilter = name.clone().into();
        assert!(filter.matches(&name));
        assert!(!filter.has_wildcards());
    }

    #[test]
    fn levels_iteration() {
        let name = t("a/b/c");
        assert_eq!(name.levels().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        let filter = f("a/+/#");
        assert_eq!(filter.levels().collect::<Vec<_>>(), vec!["a", "+", "#"]);
    }
}
