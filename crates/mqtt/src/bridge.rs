//! Broker bridging.
//!
//! A bridge connects two brokers so that topics published on one are
//! re-published on the other, letting SDFLMQ regionalize clusters: clients
//! connect only to their region's broker yet contribute to an FL session
//! spanning regions (paper §III.F, Fig. 2).
//!
//! Implementation: the bridge opens one client connection to each broker
//! using a [`crate::broker::BRIDGE_PREFIX`] client id. For every configured
//! topic it subscribes on the source side and re-publishes on the other.
//! Loop prevention relies on the broker's bridge rule — a message is never
//! echoed back to the bridge connection it arrived from — which makes any
//! *acyclic* bridge topology (chains, trees) safe. Do not bridge brokers
//! into a cycle; this mirrors the deployment constraint of production MQTT
//! bridges such as mosquitto's.

use crate::broker::{Broker, BRIDGE_PREFIX};
use crate::client::{Client, ClientOptions};
use crate::error::Result;
use crate::packet::QoS;
use crate::topic::TopicFilter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Direction of topic flow, from the perspective of the *local* broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeDirection {
    /// Remote → local.
    In,
    /// Local → remote.
    Out,
    /// Both directions.
    Both,
}

/// One bridged topic rule.
#[derive(Debug, Clone)]
pub struct BridgeTopic {
    /// Which topics flow across.
    pub filter: TopicFilter,
    /// Flow direction.
    pub direction: BridgeDirection,
    /// QoS used for the cross-broker leg.
    pub qos: QoS,
}

impl BridgeTopic {
    /// Bridges `filter` in both directions at QoS 0.
    pub fn both(filter: TopicFilter) -> Self {
        BridgeTopic {
            filter,
            direction: BridgeDirection::Both,
            qos: QoS::AtMostOnce,
        }
    }
}

/// Bridge configuration.
#[derive(Debug, Clone)]
pub struct BridgeConfig {
    /// Unique bridge name (appears in the bridge's client ids).
    pub name: String,
    /// Topic rules.
    pub topics: Vec<BridgeTopic>,
}

impl BridgeConfig {
    /// A bridge named `name` that mirrors everything (`#`) both ways.
    pub fn mirror_all(name: impl Into<String>) -> Self {
        BridgeConfig {
            name: name.into(),
            topics: vec![BridgeTopic::both(TopicFilter::new("#").unwrap())],
        }
    }
}

/// Counters for one bridge instance.
#[derive(Debug, Default)]
pub struct BridgeStats {
    /// Messages forwarded local → remote.
    pub forwarded_out: AtomicU64,
    /// Messages forwarded remote → local.
    pub forwarded_in: AtomicU64,
}

/// A running bridge. Dropping it tears the bridge down (both client
/// connections disconnect gracefully).
pub struct Bridge {
    local: Client,
    remote: Client,
    stats: Arc<BridgeStats>,
    name: String,
}

impl std::fmt::Debug for Bridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bridge").field("name", &self.name).finish()
    }
}

impl Bridge {
    /// Establishes a bridge between two brokers.
    pub fn establish(local: &Broker, remote: &Broker, config: BridgeConfig) -> Result<Bridge> {
        let local_client = Client::connect(
            local,
            ClientOptions::new(format!("{BRIDGE_PREFIX}{}/local", config.name)),
        )?;
        let remote_client = Client::connect(
            remote,
            ClientOptions::new(format!("{BRIDGE_PREFIX}{}/remote", config.name)),
        )?;
        let stats = Arc::new(BridgeStats::default());

        for rule in &config.topics {
            if matches!(rule.direction, BridgeDirection::Out | BridgeDirection::Both) {
                let forward_to = remote_client.clone();
                let qos = rule.qos;
                let stats_out = Arc::clone(&stats);
                local_client.subscribe_with(
                    &rule.filter,
                    rule.qos,
                    Arc::new(move |p| {
                        if forward_to
                            .publish(&p.topic, p.payload.clone(), qos, p.retain)
                            .is_ok()
                        {
                            stats_out.forwarded_out.fetch_add(1, Ordering::Relaxed);
                        }
                    }),
                )?;
            }
            if matches!(rule.direction, BridgeDirection::In | BridgeDirection::Both) {
                let forward_to = local_client.clone();
                let qos = rule.qos;
                let stats_in = Arc::clone(&stats);
                remote_client.subscribe_with(
                    &rule.filter,
                    rule.qos,
                    Arc::new(move |p| {
                        if forward_to
                            .publish(&p.topic, p.payload.clone(), qos, p.retain)
                            .is_ok()
                        {
                            stats_in.forwarded_in.fetch_add(1, Ordering::Relaxed);
                        }
                    }),
                )?;
            }
        }

        Ok(Bridge {
            local: local_client,
            remote: remote_client,
            stats,
            name: config.name,
        })
    }

    /// The bridge's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Forwarding counters.
    pub fn stats(&self) -> &Arc<BridgeStats> {
        &self.stats
    }

    /// Gracefully disconnects both legs.
    pub fn teardown(self) {
        let _ = self.local.disconnect();
        let _ = self.remote.disconnect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::packet::QoS;
    use crate::topic::TopicName;
    use bytes::Bytes;
    use std::time::Duration;

    fn broker(name: &str) -> Broker {
        Broker::start(BrokerConfig {
            name: name.into(),
            ..BrokerConfig::default()
        })
    }

    #[test]
    fn messages_cross_the_bridge_both_ways() {
        let a = broker("a");
        let b = broker("b");
        let _bridge = Bridge::establish(&a, &b, BridgeConfig::mirror_all("ab")).unwrap();

        let sub_b = Client::connect(&b, ClientOptions::new("sub-b")).unwrap();
        sub_b.subscribe_str("x/#", QoS::AtMostOnce).unwrap();
        let pub_a = Client::connect(&a, ClientOptions::new("pub-a")).unwrap();
        pub_a
            .publish(
                &TopicName::new("x/1").unwrap(),
                b"ab".as_slice(),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        let got = sub_b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"ab"));

        let sub_a = Client::connect(&a, ClientOptions::new("sub-a")).unwrap();
        sub_a.subscribe_str("y/#", QoS::AtMostOnce).unwrap();
        let pub_b = Client::connect(&b, ClientOptions::new("pub-b")).unwrap();
        pub_b
            .publish(
                &TopicName::new("y/1").unwrap(),
                b"ba".as_slice(),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        let got = sub_a.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"ba"));
    }

    #[test]
    fn no_echo_loop_on_two_way_bridge() {
        let a = broker("a");
        let b = broker("b");
        let bridge = Bridge::establish(&a, &b, BridgeConfig::mirror_all("ab")).unwrap();

        let pub_a = Client::connect(&a, ClientOptions::new("pub-a")).unwrap();
        pub_a
            .publish(
                &TopicName::new("loop/test").unwrap(),
                b"once".as_slice(),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // The message crossed exactly once, never back.
        assert_eq!(bridge.stats().forwarded_out.load(Ordering::Relaxed), 1);
        assert_eq!(bridge.stats().forwarded_in.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn directional_rules_respected() {
        let a = broker("a");
        let b = broker("b");
        let _bridge = Bridge::establish(
            &a,
            &b,
            BridgeConfig {
                name: "oneway".into(),
                topics: vec![BridgeTopic {
                    filter: TopicFilter::new("tele/#").unwrap(),
                    direction: BridgeDirection::Out,
                    qos: QoS::AtMostOnce,
                }],
            },
        )
        .unwrap();

        // Out direction works.
        let sub_b = Client::connect(&b, ClientOptions::new("sub-b")).unwrap();
        sub_b.subscribe_str("tele/#", QoS::AtMostOnce).unwrap();
        let pub_a = Client::connect(&a, ClientOptions::new("pub-a")).unwrap();
        pub_a
            .publish_str("tele/1", b"out".as_slice(), QoS::AtMostOnce, false)
            .unwrap();
        assert!(sub_b.recv_timeout(Duration::from_secs(2)).is_ok());

        // In direction is not bridged.
        let sub_a = Client::connect(&a, ClientOptions::new("sub-a")).unwrap();
        sub_a.subscribe_str("tele/#", QoS::AtMostOnce).unwrap();
        let pub_b = Client::connect(&b, ClientOptions::new("pub-b")).unwrap();
        pub_b
            .publish_str("tele/2", b"in".as_slice(), QoS::AtMostOnce, false)
            .unwrap();
        assert!(sub_a.recv_timeout(Duration::from_millis(300)).is_err());
    }

    #[test]
    fn three_broker_chain_propagates() {
        let a = broker("a");
        let b = broker("b");
        let c = broker("c");
        let _ab = Bridge::establish(&a, &b, BridgeConfig::mirror_all("ab")).unwrap();
        let _bc = Bridge::establish(&b, &c, BridgeConfig::mirror_all("bc")).unwrap();

        let sub_c = Client::connect(&c, ClientOptions::new("sub-c")).unwrap();
        sub_c.subscribe_str("chain/#", QoS::AtMostOnce).unwrap();
        let pub_a = Client::connect(&a, ClientOptions::new("pub-a")).unwrap();
        pub_a
            .publish_str("chain/msg", b"far".as_slice(), QoS::AtMostOnce, false)
            .unwrap();
        let got = sub_c.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"far"));
    }

    #[test]
    fn retained_messages_propagate_with_flag() {
        let a = broker("a");
        let b = broker("b");
        let _bridge = Bridge::establish(&a, &b, BridgeConfig::mirror_all("ab")).unwrap();

        let pub_a = Client::connect(&a, ClientOptions::new("pub-a")).unwrap();
        pub_a
            .publish_str("cfg/x", b"v".as_slice(), QoS::AtLeastOnce, true)
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // A late subscriber on B sees the retained copy.
        let sub_b = Client::connect(&b, ClientOptions::new("late-b")).unwrap();
        sub_b.subscribe_str("cfg/#", QoS::AtMostOnce).unwrap();
        let got = sub_b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"v"));
        assert!(got.retain);
    }
}
