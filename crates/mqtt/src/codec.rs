//! MQTT 3.1.1 wire codec: fixed header with variable-length remaining-length
//! field, UTF-8 strings with u16 length prefixes, and per-packet variable
//! headers and payloads.
//!
//! The codec is allocation-conscious: encoding reserves the exact frame size
//! up front, and decoding slices payload bytes out of the input `Bytes`
//! without copying.

use crate::error::{ConnectReturnCode, MqttError, Result};
use crate::packet::*;
use crate::topic::{TopicFilter, TopicName};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum value of the remaining-length field (4 varint bytes).
pub const MAX_REMAINING_LENGTH: usize = 268_435_455;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes a packet into a freshly allocated frame.
pub fn encode(packet: &Packet) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(estimate_size(packet));
    encode_into(packet, &mut buf)?;
    Ok(buf.freeze())
}

/// Encodes a packet into `buf`, appending one complete frame.
pub fn encode_into(packet: &Packet, buf: &mut BytesMut) -> Result<()> {
    match packet {
        Packet::Connect(c) => encode_connect(c, buf),
        Packet::Connack(c) => {
            buf.put_u8(0x20);
            buf.put_u8(2);
            buf.put_u8(c.session_present as u8);
            buf.put_u8(c.code as u8);
            Ok(())
        }
        Packet::Publish(p) => encode_publish(p, buf),
        Packet::Puback(id) => encode_ack(0x40, *id, buf),
        Packet::Pubrec(id) => encode_ack(0x50, *id, buf),
        Packet::Pubrel(id) => encode_ack(0x62, *id, buf),
        Packet::Pubcomp(id) => encode_ack(0x70, *id, buf),
        Packet::Subscribe(s) => encode_subscribe(s, buf),
        Packet::Suback(s) => encode_suback(s, buf),
        Packet::Unsubscribe(u) => encode_unsubscribe(u, buf),
        Packet::Unsuback(id) => encode_ack(0xB0, *id, buf),
        Packet::Pingreq => {
            buf.put_slice(&[0xC0, 0]);
            Ok(())
        }
        Packet::Pingresp => {
            buf.put_slice(&[0xD0, 0]);
            Ok(())
        }
        Packet::Disconnect => {
            buf.put_slice(&[0xE0, 0]);
            Ok(())
        }
    }
}

fn estimate_size(packet: &Packet) -> usize {
    match packet {
        Packet::Publish(p) => 7 + p.topic.as_str().len() + p.payload.len(),
        Packet::Connect(c) => {
            16 + c.client_id.len()
                + c.will
                    .as_ref()
                    .map(|w| 4 + w.topic.as_str().len() + w.payload.len())
                    .unwrap_or(0)
        }
        Packet::Subscribe(s) => {
            7 + s
                .filters
                .iter()
                .map(|(f, _)| 3 + f.as_str().len())
                .sum::<usize>()
        }
        Packet::Unsubscribe(u) => {
            7 + u
                .filters
                .iter()
                .map(|f| 2 + f.as_str().len())
                .sum::<usize>()
        }
        Packet::Suback(s) => 7 + s.return_codes.len(),
        _ => 4,
    }
}

fn encode_remaining_length(mut len: usize, buf: &mut BytesMut) -> Result<()> {
    if len > MAX_REMAINING_LENGTH {
        return Err(MqttError::RemainingLengthOverflow);
    }
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        buf.put_u8(byte);
        if len == 0 {
            return Ok(());
        }
    }
}

fn put_string(s: &str, buf: &mut BytesMut) {
    debug_assert!(s.len() <= u16::MAX as usize);
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn encode_ack(first_byte: u8, id: PacketId, buf: &mut BytesMut) -> Result<()> {
    buf.put_u8(first_byte);
    buf.put_u8(2);
    buf.put_u16(id);
    Ok(())
}

fn encode_connect(c: &Connect, buf: &mut BytesMut) -> Result<()> {
    let mut flags = 0u8;
    if c.clean_session {
        flags |= 0x02;
    }
    let mut remaining = 10 + 2 + c.client_id.len();
    if let Some(w) = &c.will {
        flags |= 0x04 | ((w.qos as u8) << 3) | ((w.retain as u8) << 5);
        remaining += 2 + w.topic.as_str().len() + 2 + w.payload.len();
    }
    buf.put_u8(0x10);
    encode_remaining_length(remaining, buf)?;
    put_string("MQTT", buf);
    buf.put_u8(4); // protocol level 4 = MQTT 3.1.1
    buf.put_u8(flags);
    buf.put_u16(c.keep_alive);
    put_string(&c.client_id, buf);
    if let Some(w) = &c.will {
        put_string(w.topic.as_str(), buf);
        buf.put_u16(w.payload.len() as u16);
        buf.put_slice(&w.payload);
    }
    Ok(())
}

fn encode_publish(p: &Publish, buf: &mut BytesMut) -> Result<()> {
    let mut first = 0x30u8;
    if p.dup {
        first |= 0x08;
    }
    first |= (p.qos as u8) << 1;
    if p.retain {
        first |= 0x01;
    }
    let mut remaining = 2 + p.topic.as_str().len() + p.payload.len();
    if p.qos != QoS::AtMostOnce {
        remaining += 2;
    }
    buf.put_u8(first);
    encode_remaining_length(remaining, buf)?;
    put_string(p.topic.as_str(), buf);
    if p.qos != QoS::AtMostOnce {
        let id = p
            .packet_id
            .ok_or(MqttError::Malformed("QoS>0 publish without packet id"))?;
        buf.put_u16(id);
    }
    buf.put_slice(&p.payload);
    Ok(())
}

fn encode_subscribe(s: &Subscribe, buf: &mut BytesMut) -> Result<()> {
    if s.filters.is_empty() {
        return Err(MqttError::Malformed("SUBSCRIBE with no filters"));
    }
    let remaining = 2 + s
        .filters
        .iter()
        .map(|(f, _)| 3 + f.as_str().len())
        .sum::<usize>();
    buf.put_u8(0x82);
    encode_remaining_length(remaining, buf)?;
    buf.put_u16(s.packet_id);
    for (filter, qos) in &s.filters {
        put_string(filter.as_str(), buf);
        buf.put_u8(*qos as u8);
    }
    Ok(())
}

fn encode_suback(s: &Suback, buf: &mut BytesMut) -> Result<()> {
    buf.put_u8(0x90);
    encode_remaining_length(2 + s.return_codes.len(), buf)?;
    buf.put_u16(s.packet_id);
    for code in &s.return_codes {
        buf.put_u8(code.to_u8());
    }
    Ok(())
}

fn encode_unsubscribe(u: &Unsubscribe, buf: &mut BytesMut) -> Result<()> {
    if u.filters.is_empty() {
        return Err(MqttError::Malformed("UNSUBSCRIBE with no filters"));
    }
    let remaining = 2 + u
        .filters
        .iter()
        .map(|f| 2 + f.as_str().len())
        .sum::<usize>();
    buf.put_u8(0xA2);
    encode_remaining_length(remaining, buf)?;
    buf.put_u16(u.packet_id);
    for filter in &u.filters {
        put_string(filter.as_str(), buf);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encode-once publish frames
// ---------------------------------------------------------------------------

/// A pre-encoded QoS>0 PUBLISH frame with a patchable packet-id slot.
///
/// The broker's fanout path encodes a publish **once per outgoing QoS** and
/// then stamps each subscriber's session-allocated packet id into a copy of
/// the shared frame — one `memcpy` plus a two-byte patch per delivery
/// instead of a full field-by-field re-encode. (QoS 0 frames carry no
/// packet id, so they are shared as-is without a template.)
#[derive(Debug, Clone)]
pub struct PublishTemplate {
    frame: Bytes,
    /// Byte offset of the big-endian u16 packet id inside `frame`.
    id_offset: usize,
}

impl PublishTemplate {
    /// Encodes `p` (which must be QoS 1 or 2) into a reusable template.
    /// The packet id stored in `p` is irrelevant; it is overwritten by
    /// [`PublishTemplate::with_packet_id`].
    pub fn new(p: &Publish) -> Result<PublishTemplate> {
        if p.qos == QoS::AtMostOnce {
            return Err(MqttError::Malformed("QoS 0 publishes need no template"));
        }
        let mut stamped = p.clone();
        stamped.packet_id = Some(stamped.packet_id.unwrap_or(0));
        let frame = encode(&Packet::Publish(stamped))?;
        let remaining = 2 + p.topic.as_str().len() + 2 + p.payload.len();
        // Fixed header = 1 type byte + the remaining-length varint; the
        // variable header starts with the 2-byte topic length prefix.
        let id_offset = 1 + varint_len(remaining) + 2 + p.topic.as_str().len();
        Ok(PublishTemplate { frame, id_offset })
    }

    /// Returns a frame with `id` stamped into the packet-id slot.
    pub fn with_packet_id(&self, id: PacketId) -> Bytes {
        let mut buf = self.frame.to_vec();
        buf[self.id_offset..self.id_offset + 2].copy_from_slice(&id.to_be_bytes());
        Bytes::from(buf)
    }
}

/// Number of bytes the remaining-length varint occupies for `len`.
fn varint_len(len: usize) -> usize {
    match len {
        0..=127 => 1,
        128..=16_383 => 2,
        16_384..=2_097_151 => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes exactly one packet from `frame`, which must contain one complete
/// frame (as produced by [`encode`]). Returns the packet and the number of
/// bytes consumed, so callers can decode back-to-back frames from one buffer.
pub fn decode(frame: &Bytes) -> Result<(Packet, usize)> {
    let mut cur = frame.clone();
    if cur.remaining() < 2 {
        return Err(MqttError::UnexpectedEof);
    }
    let first = cur.get_u8();
    let remaining = decode_remaining_length(&mut cur)?;
    if cur.remaining() < remaining {
        return Err(MqttError::UnexpectedEof);
    }
    let header_len = frame.len() - cur.remaining();
    let mut body = cur.slice(..remaining);
    let consumed = header_len + remaining;

    let packet_type = first >> 4;
    let flags = first & 0x0F;
    let packet = match packet_type {
        1 => decode_connect(&mut body)?,
        2 => decode_connack(&mut body)?,
        3 => decode_publish(flags, &mut body)?,
        4 => Packet::Puback(get_u16(&mut body)?),
        5 => Packet::Pubrec(get_u16(&mut body)?),
        6 => {
            if flags != 0x02 {
                return Err(MqttError::Malformed("PUBREL flags must be 0010"));
            }
            Packet::Pubrel(get_u16(&mut body)?)
        }
        7 => Packet::Pubcomp(get_u16(&mut body)?),
        8 => {
            if flags != 0x02 {
                return Err(MqttError::Malformed("SUBSCRIBE flags must be 0010"));
            }
            decode_subscribe(&mut body)?
        }
        9 => decode_suback(&mut body)?,
        10 => {
            if flags != 0x02 {
                return Err(MqttError::Malformed("UNSUBSCRIBE flags must be 0010"));
            }
            decode_unsubscribe(&mut body)?
        }
        11 => Packet::Unsuback(get_u16(&mut body)?),
        12 => Packet::Pingreq,
        13 => Packet::Pingresp,
        14 => Packet::Disconnect,
        other => return Err(MqttError::UnknownPacketType(other)),
    };
    Ok((packet, consumed))
}

/// Computes the total on-wire length (fixed header + body) of the first
/// packet in `buf` without decoding it. Returns `Ok(None)` when more bytes
/// are needed to tell — the frame-boundary primitive for nonblocking
/// stream transports, which accumulate raw bytes and split complete
/// frames off the front (see [`crate::reactor`]).
pub fn frame_length(buf: &[u8]) -> Result<Option<usize>> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let mut value = 0usize;
    let mut shift = 0u32;
    for i in 1..=4 {
        let Some(&byte) = buf.get(i) else {
            return Ok(None);
        };
        value |= ((byte & 0x7F) as usize) << shift;
        if byte & 0x80 == 0 {
            if value > MAX_REMAINING_LENGTH {
                return Err(MqttError::RemainingLengthOverflow);
            }
            return Ok(Some(1 + i + value));
        }
        shift += 7;
    }
    Err(MqttError::RemainingLengthOverflow)
}

fn decode_remaining_length(buf: &mut Bytes) -> Result<usize> {
    let mut value = 0usize;
    let mut shift = 0u32;
    for _ in 0..4 {
        if !buf.has_remaining() {
            return Err(MqttError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        value |= ((byte & 0x7F) as usize) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(MqttError::RemainingLengthOverflow)
}

fn get_u16(buf: &mut Bytes) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(MqttError::UnexpectedEof);
    }
    Ok(buf.get_u16())
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let len = get_u16(buf)? as usize;
    if buf.remaining() < len {
        return Err(MqttError::UnexpectedEof);
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| MqttError::Malformed("invalid UTF-8 string"))
}

fn decode_connect(buf: &mut Bytes) -> Result<Packet> {
    let proto = get_string(buf)?;
    if proto != "MQTT" {
        return Err(MqttError::Malformed("unknown protocol name"));
    }
    if !buf.has_remaining() {
        return Err(MqttError::UnexpectedEof);
    }
    let level = buf.get_u8();
    if level != 4 {
        return Err(MqttError::Malformed("unsupported protocol level"));
    }
    if !buf.has_remaining() {
        return Err(MqttError::UnexpectedEof);
    }
    let flags = buf.get_u8();
    if flags & 0x01 != 0 {
        return Err(MqttError::Malformed("CONNECT reserved flag set"));
    }
    let keep_alive = get_u16(buf)?;
    let client_id = get_string(buf)?;
    let will = if flags & 0x04 != 0 {
        let topic = TopicName::new(get_string(buf)?)?;
        let len = get_u16(buf)? as usize;
        if buf.remaining() < len {
            return Err(MqttError::UnexpectedEof);
        }
        let payload = buf.split_to(len);
        let qos =
            QoS::from_u8((flags >> 3) & 0x03).ok_or(MqttError::Malformed("invalid will QoS"))?;
        Some(LastWill {
            topic,
            payload,
            qos,
            retain: flags & 0x20 != 0,
        })
    } else {
        if flags & 0x38 != 0 {
            return Err(MqttError::Malformed("will flags set without will"));
        }
        None
    };
    Ok(Packet::Connect(Connect {
        client_id,
        clean_session: flags & 0x02 != 0,
        keep_alive,
        will,
    }))
}

fn decode_connack(buf: &mut Bytes) -> Result<Packet> {
    if buf.remaining() < 2 {
        return Err(MqttError::UnexpectedEof);
    }
    let ack_flags = buf.get_u8();
    let code = buf.get_u8();
    Ok(Packet::Connack(Connack {
        session_present: ack_flags & 0x01 != 0,
        code: ConnectReturnCode::from_u8(code),
    }))
}

fn decode_publish(flags: u8, buf: &mut Bytes) -> Result<Packet> {
    let dup = flags & 0x08 != 0;
    let retain = flags & 0x01 != 0;
    let qos = QoS::from_u8((flags >> 1) & 0x03).ok_or(MqttError::Malformed("QoS 3 is reserved"))?;
    let topic = TopicName::new(get_string(buf)?)?;
    let packet_id = if qos != QoS::AtMostOnce {
        Some(get_u16(buf)?)
    } else {
        None
    };
    // Zero-copy: the payload is the rest of the body slice.
    let payload = buf.split_to(buf.remaining());
    Ok(Packet::Publish(Publish {
        dup,
        qos,
        retain,
        topic,
        packet_id,
        payload,
    }))
}

fn decode_subscribe(buf: &mut Bytes) -> Result<Packet> {
    let packet_id = get_u16(buf)?;
    let mut filters = Vec::new();
    while buf.has_remaining() {
        let filter = TopicFilter::new(get_string(buf)?)?;
        if !buf.has_remaining() {
            return Err(MqttError::UnexpectedEof);
        }
        let qos =
            QoS::from_u8(buf.get_u8()).ok_or(MqttError::Malformed("invalid requested QoS"))?;
        filters.push((filter, qos));
    }
    if filters.is_empty() {
        return Err(MqttError::Malformed("SUBSCRIBE with no filters"));
    }
    Ok(Packet::Subscribe(Subscribe { packet_id, filters }))
}

fn decode_suback(buf: &mut Bytes) -> Result<Packet> {
    let packet_id = get_u16(buf)?;
    let mut return_codes = Vec::with_capacity(buf.remaining());
    while buf.has_remaining() {
        let b = buf.get_u8();
        return_codes
            .push(SubackCode::from_u8(b).ok_or(MqttError::Malformed("invalid SUBACK code"))?);
    }
    Ok(Packet::Suback(Suback {
        packet_id,
        return_codes,
    }))
}

fn decode_unsubscribe(buf: &mut Bytes) -> Result<Packet> {
    let packet_id = get_u16(buf)?;
    let mut filters = Vec::new();
    while buf.has_remaining() {
        filters.push(TopicFilter::new(get_string(buf)?)?);
    }
    if filters.is_empty() {
        return Err(MqttError::Malformed("UNSUBSCRIBE with no filters"));
    }
    Ok(Packet::Unsubscribe(Unsubscribe { packet_id, filters }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let encoded = encode(&p).unwrap();
        let (decoded, consumed) = decode(&encoded).unwrap();
        assert_eq!(
            consumed,
            encoded.len(),
            "{} consumed all bytes",
            p.type_name()
        );
        assert_eq!(decoded, p);
    }

    #[test]
    fn roundtrip_simple_packets() {
        roundtrip(Packet::Pingreq);
        roundtrip(Packet::Pingresp);
        roundtrip(Packet::Disconnect);
        roundtrip(Packet::Puback(7));
        roundtrip(Packet::Pubrec(65535));
        roundtrip(Packet::Pubrel(1));
        roundtrip(Packet::Pubcomp(0));
        roundtrip(Packet::Unsuback(42));
    }

    #[test]
    fn roundtrip_connect() {
        roundtrip(Packet::Connect(Connect {
            client_id: "trainer-01".into(),
            clean_session: true,
            keep_alive: 60,
            will: None,
        }));
        roundtrip(Packet::Connect(Connect {
            client_id: "agg".into(),
            clean_session: false,
            keep_alive: 0,
            will: Some(LastWill {
                topic: TopicName::new("sdflmq/client/agg/offline").unwrap(),
                payload: Bytes::from_static(b"gone"),
                qos: QoS::AtLeastOnce,
                retain: true,
            }),
        }));
    }

    #[test]
    fn publish_template_stamps_packet_ids() {
        for qos in [QoS::AtLeastOnce, QoS::ExactlyOnce] {
            for (topic, payload) in [
                ("t", b"x".to_vec()),
                ("a/very/deep/topic/path", vec![7u8; 200]),
                ("big", vec![1u8; 20_000]), // 2-byte remaining-length varint
            ] {
                let p = Publish {
                    dup: false,
                    qos,
                    retain: qos == QoS::ExactlyOnce,
                    topic: TopicName::new(topic).unwrap(),
                    packet_id: None,
                    payload: Bytes::from(payload.clone()),
                };
                let template = PublishTemplate::new(&p).unwrap();
                for id in [1u16, 9, 0xBEEF, u16::MAX] {
                    let frame = template.with_packet_id(id);
                    let (decoded, used) = decode(&frame).unwrap();
                    assert_eq!(used, frame.len());
                    let mut expect = p.clone();
                    expect.packet_id = Some(id);
                    assert_eq!(decoded, Packet::Publish(expect));
                }
            }
        }
    }

    #[test]
    fn publish_template_rejects_qos0() {
        let p = Publish::simple(TopicName::new("t").unwrap(), b"x".to_vec());
        assert!(PublishTemplate::new(&p).is_err());
    }

    #[test]
    fn roundtrip_connack() {
        roundtrip(Packet::Connack(Connack {
            session_present: true,
            code: ConnectReturnCode::Accepted,
        }));
        roundtrip(Packet::Connack(Connack {
            session_present: false,
            code: ConnectReturnCode::IdentifierRejected,
        }));
    }

    #[test]
    fn roundtrip_publish_all_qos() {
        for (qos, id) in [
            (QoS::AtMostOnce, None),
            (QoS::AtLeastOnce, Some(3)),
            (QoS::ExactlyOnce, Some(999)),
        ] {
            roundtrip(Packet::Publish(Publish {
                dup: qos != QoS::AtMostOnce,
                qos,
                retain: true,
                topic: TopicName::new("sdflmq/session/s1/agg/root").unwrap(),
                packet_id: id,
                payload: Bytes::from(vec![0xAB; 300]),
            }));
        }
    }

    #[test]
    fn roundtrip_subscribe_suback_unsubscribe() {
        roundtrip(Packet::Subscribe(Subscribe {
            packet_id: 11,
            filters: vec![
                (TopicFilter::new("a/+/c").unwrap(), QoS::AtLeastOnce),
                (TopicFilter::new("#").unwrap(), QoS::AtMostOnce),
            ],
        }));
        roundtrip(Packet::Suback(Suback {
            packet_id: 11,
            return_codes: vec![SubackCode::Granted(QoS::AtLeastOnce), SubackCode::Failure],
        }));
        roundtrip(Packet::Unsubscribe(Unsubscribe {
            packet_id: 12,
            filters: vec![TopicFilter::new("a/+/c").unwrap()],
        }));
    }

    #[test]
    fn large_payload_uses_multi_byte_remaining_length() {
        let payload = vec![0x5A; 200_000];
        let p = Packet::Publish(Publish::simple(
            TopicName::new("big").unwrap(),
            payload.clone(),
        ));
        let encoded = encode(&p).unwrap();
        // 3-byte varint for remaining length: frame = 1 + 3 + 2+3 + payload.
        assert_eq!(encoded.len(), 1 + 3 + 5 + payload.len());
        let (decoded, _) = decode(&encoded).unwrap();
        match decoded {
            Packet::Publish(p) => assert_eq!(p.payload.len(), 200_000),
            other => panic!("expected publish, got {other:?}"),
        }
    }

    #[test]
    fn qos1_publish_without_id_is_rejected() {
        let p = Packet::Publish(Publish {
            dup: false,
            qos: QoS::AtLeastOnce,
            retain: false,
            topic: TopicName::new("x").unwrap(),
            packet_id: None,
            payload: Bytes::new(),
        });
        assert!(encode(&p).is_err());
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let p = Packet::Publish(Publish::simple(
            TopicName::new("a/b").unwrap(),
            b"hello".to_vec(),
        ));
        let encoded = encode(&p).unwrap();
        for cut in 0..encoded.len() {
            let truncated = encoded.slice(..cut);
            assert!(
                decode(&truncated).is_err(),
                "cut at {cut} should not decode"
            );
        }
    }

    #[test]
    fn reserved_qos3_is_rejected() {
        // Hand-craft a PUBLISH with QoS bits = 3.
        let mut frame = BytesMut::new();
        frame.put_u8(0x36); // publish, qos=3
        frame.put_u8(5);
        frame.put_u16(1);
        frame.put_u8(b'x');
        frame.put_u16(0);
        assert!(decode(&frame.freeze()).is_err());
    }

    #[test]
    fn back_to_back_frames_decode_with_offsets() {
        let a = encode(&Packet::Pingreq).unwrap();
        let b = encode(&Packet::Puback(5)).unwrap();
        let mut joined = BytesMut::new();
        joined.put_slice(&a);
        joined.put_slice(&b);
        let joined = joined.freeze();
        let (p1, n1) = decode(&joined).unwrap();
        assert_eq!(p1, Packet::Pingreq);
        let rest = joined.slice(n1..);
        let (p2, n2) = decode(&rest).unwrap();
        assert_eq!(p2, Packet::Puback(5));
        assert_eq!(n1 + n2, joined.len());
    }

    #[test]
    fn remaining_length_boundaries() {
        // Boundary payload sizes around varint length changes.
        for size in [0usize, 1, 120, 127, 128, 16_383, 16_384] {
            let p = Packet::Publish(Publish::simple(
                TopicName::new("t").unwrap(),
                vec![1u8; size],
            ));
            roundtrip(p);
        }
    }

    #[test]
    fn frame_length_matches_encoded_size() {
        for size in [0usize, 1, 127, 128, 16_383, 16_384] {
            let p = Packet::Publish(Publish::simple(
                TopicName::new("t").unwrap(),
                vec![7u8; size],
            ));
            let frame = encode(&p).unwrap();
            assert_eq!(frame_length(&frame).unwrap(), Some(frame.len()));
            // Every strict prefix is indeterminate, never an error.
            for cut in 0..frame.len().min(64) {
                assert!(matches!(
                    frame_length(&frame[..cut]),
                    Ok(None) | Ok(Some(_))
                ));
            }
            // A prefix that already covers the header knows the length.
            assert_eq!(frame_length(&frame[..5]).unwrap(), Some(frame.len()));
        }
    }

    #[test]
    fn frame_length_rejects_overlong_varint() {
        // Five continuation bytes: the varint never terminates.
        let bad = [0x30u8, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(frame_length(&bad).is_err());
    }
}
