//! Figure 7 reproduction: accuracy convergence of offline (local) training
//! vs 2-layer hierarchical SDFL with 5 clients.
//!
//! Paper setup (§VI): MLP on MNIST; FL clients each hold 1% of the
//! training set (600 samples), the offline baseline holds 5% (3,000
//! samples — "to set an equal ground"); FedAvg aggregation; accuracy is
//! measured on a held-out test set after each of 10 rounds (5 local epochs
//! per round).
//!
//! This harness runs the *real* threaded SDFLMQ stack — broker,
//! coordinator, parameter server, five client threads — plus the offline
//! baseline, and prints both series. Paper reference values are printed
//! alongside (absolute numbers come from MNIST; ours from the documented
//! synthetic substitute — the comparison is about the *shape*).
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin fig7
//! ```

use sdflmq_core::{
    ClientId, Coordinator, CoordinatorConfig, ModelId, ParamServer, PreferredRole, SdflmqClient,
    SdflmqClientConfig, SessionId, Topology, WaitOutcome,
};
use sdflmq_dataset::{Split, SynthDigits};
use sdflmq_mqtt::Broker;
use sdflmq_mqttfc::BatchConfig;
use sdflmq_nn::{evaluate, train, Adam, Matrix, Mlp, MlpSpec, TrainConfig};
use std::sync::mpsc;
use std::time::Duration;

const ROUNDS: u32 = 10;
const LOCAL_EPOCHS: usize = 5;
const CLIENTS: usize = 5;
const SAMPLES_PER_CLIENT: usize = 600; // 1% of 60k
const OFFLINE_SAMPLES: usize = 3_000; // 5% of 60k
const TEST_SAMPLES: usize = 10_000;

/// Paper-reported accuracy series (Fig. 7) for side-by-side comparison.
const PAPER_OFFLINE: [f64; 10] = [
    59.96, 88.31, 89.32, 89.51, 89.74, 89.61, 89.56, 89.60, 89.50, 89.60,
];
const PAPER_SDFL: [f64; 10] = [
    81.21, 88.30, 90.95, 92.21, 92.77, 92.92, 92.91, 92.98, 93.05, 93.01,
];

fn offline_series(gen: &SynthDigits, test_x: &Matrix, test_labels: &[usize]) -> Vec<f64> {
    let ds = gen.generate(Split::Train, OFFLINE_SAMPLES);
    let x = Matrix::from_vec(ds.len(), 784, ds.images.clone());
    let mut model = Mlp::new(MlpSpec::mnist_mlp(), 1);
    let mut opt = Adam::new(0.001);
    (1..=ROUNDS)
        .map(|round| {
            train(
                &mut model,
                &mut opt,
                &x,
                &ds.labels,
                &TrainConfig {
                    batch_size: 32,
                    epochs: LOCAL_EPOCHS,
                    shuffle_seed: round as u64,
                },
            );
            evaluate(&model, test_x, test_labels) * 100.0
        })
        .collect()
}

fn sdfl_series(gen: &SynthDigits, test_x: &Matrix, test_labels: &[usize]) -> Vec<f64> {
    let broker = Broker::start_default();
    let _coordinator = Coordinator::start(
        &broker,
        CoordinatorConfig {
            topology: Topology::Hierarchical {
                aggregator_ratio: 0.4, // 2 aggregators of 5 — 2-layer hierarchy
            },
            round_timeout: Duration::from_secs(600),
            ..CoordinatorConfig::default()
        },
    )
    .expect("coordinator");
    let _ps = ParamServer::start(&broker, BatchConfig::default()).expect("param server");

    let session = SessionId::new("fig7").unwrap();
    let model_name = ModelId::new("mlp").unwrap();

    // Round-accuracy reports flow back over a channel from client 0.
    let (acc_tx, acc_rx) = mpsc::channel::<f64>();

    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let client = SdflmqClient::connect(
            &broker,
            ClientId::new(format!("client_{i}")).unwrap(),
            SdflmqClientConfig {
                system_seed: i as u64,
                ..SdflmqClientConfig::default()
            },
        )
        .expect("connect");
        if i == 0 {
            client
                .create_fl_session(
                    &session,
                    &model_name,
                    Duration::from_secs(7200),
                    CLIENTS,
                    CLIENTS,
                    Duration::from_secs(300),
                    ROUNDS,
                    PreferredRole::Any,
                    SAMPLES_PER_CLIENT as u64,
                )
                .expect("create");
        } else {
            client
                .join_fl_session(
                    &session,
                    &model_name,
                    PreferredRole::Any,
                    SAMPLES_PER_CLIENT as u64,
                )
                .expect("join");
        }

        let local = gen.generate_range(Split::Train, i * SAMPLES_PER_CLIENT, SAMPLES_PER_CLIENT);
        let session = session.clone();
        let acc_tx = acc_tx.clone();
        let test_x = if i == 0 { Some(test_x.clone()) } else { None };
        let test_labels = test_labels.to_vec();

        handles.push(std::thread::spawn(move || {
            let x = Matrix::from_vec(local.len(), 784, local.images.clone());
            let mut model = Mlp::new(MlpSpec::mnist_mlp(), 1);
            let mut opt = Adam::new(0.001);
            for round in 1..=ROUNDS {
                train(
                    &mut model,
                    &mut opt,
                    &x,
                    &local.labels,
                    &TrainConfig {
                        batch_size: 32,
                        epochs: LOCAL_EPOCHS,
                        shuffle_seed: (i as u64) << 8 | round as u64,
                    },
                );
                client.set_model(&session, model.params()).unwrap();
                client.send_local(&session).unwrap();
                let outcome = client
                    .wait_global_update(&session, Duration::from_secs(600))
                    .unwrap();
                model.set_params(&client.model_params(&session).unwrap());
                if let Some(test_x) = &test_x {
                    let acc = evaluate(&model, test_x, &test_labels) * 100.0;
                    acc_tx.send(acc).unwrap();
                }
                if outcome == WaitOutcome::Completed {
                    break;
                }
            }
        }));
    }
    drop(acc_tx);

    let series: Vec<f64> = acc_rx.iter().collect();
    for h in handles {
        h.join().unwrap();
    }
    series
}

fn main() {
    let gen = SynthDigits::new(42);
    let test = gen.generate(Split::Test, TEST_SAMPLES);
    let test_x = Matrix::from_vec(test.len(), 784, test.images.clone());

    eprintln!("running offline baseline ({OFFLINE_SAMPLES} samples, {ROUNDS} rounds)...");
    let offline = offline_series(&gen, &test_x, &test.labels);
    eprintln!(
        "running 2-layer hierarchical SDFL ({CLIENTS} clients x {SAMPLES_PER_CLIENT} samples)..."
    );
    let sdfl = sdfl_series(&gen, &test_x, &test.labels);

    println!("\n# Fig. 7 — MLP accuracy convergence (test accuracy %, per round)");
    println!("# offline: local training on 5% of the train set");
    println!("# sdfl:    5 clients x 1% each, FedAvg, 2-layer hierarchical SDFL");
    println!(
        "{:>5} | {:>12} {:>12} | {:>12} {:>12}",
        "round", "offline", "sdfl", "paper-offl", "paper-sdfl"
    );
    for r in 0..ROUNDS as usize {
        println!(
            "{:>5} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            r + 1,
            offline.get(r).copied().unwrap_or(f64::NAN),
            sdfl.get(r).copied().unwrap_or(f64::NAN),
            PAPER_OFFLINE[r],
            PAPER_SDFL[r]
        );
    }
    let last_off = offline.last().copied().unwrap_or(0.0);
    let last_sdfl = sdfl.last().copied().unwrap_or(0.0);
    println!(
        "\nshape check: both converge (offline {last_off:.1}%, sdfl {last_sdfl:.1}%); \
         sdfl final >= offline final - 2pp: {}",
        last_sdfl >= last_off - 2.0
    );
}
