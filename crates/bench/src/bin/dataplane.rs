//! Data-plane benchmark: bytes/round and aggregation throughput across
//! update codecs, emitted as `BENCH_dataplane.json`.
//!
//! For each codec (dense f32, fp16, int8, top-k sparse delta) this
//! measures, with *real encodings* of the paper's MNIST-MLP-sized model:
//!
//! * per-update frame bytes and compression vs dense;
//! * single-pass decode fidelity (relative L2 divergence);
//! * encode/decode throughput in million elements per second;
//! * data-plane bytes per round of a 40-client hierarchical deployment
//!   (the virtual-time simulator's network accounting);
//! * streaming FedAvg fold throughput at fan-in 32, plus the peak number
//!   of full vectors the accumulator held (the O(model) claim: 1).
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin dataplane [-- --smoke]
//! ```
//!
//! `--smoke` shrinks iteration counts for CI; the asserted invariants
//! (int8 ≥ 3.9x bytes/round reduction, FedAvg peak buffering of one
//! vector) hold in both modes.

use sdflmq_core::{
    simulate, AggregationMethod, FedAvg, MemoryAware, SimConfig, Topology, UpdateCodec,
};
use sdflmq_mqttfc::Json;
use std::time::Instant;

const MODEL_PARAMS: usize = 109_386; // 784-128-64-10 MLP
const CLIENTS: usize = 40;
const FAN_IN: usize = 32;

fn pseudo_model(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32) * 0.37).sin() * (1.0 + (i % 17) as f32 * 0.25))
        .collect()
}

struct CodecResult {
    codec: UpdateCodec,
    frame_bytes: u64,
    compression: f64,
    divergence: f64,
    bytes_per_round: u64,
    encode_melems_s: f64,
    decode_melems_s: f64,
}

fn bench_codec(codec: UpdateCodec, rounds: u32, iters: u32) -> CodecResult {
    let x = pseudo_model(MODEL_PARAMS);

    // Throughput over real encode/decode passes.
    let mut encoded = codec.encode_stateless(&x, None);
    let t0 = Instant::now();
    for _ in 0..iters {
        encoded = codec.encode_stateless(&x, None);
    }
    let encode_s = t0.elapsed().as_secs_f64() / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = codec.decode(&encoded, None).expect("own encoding decodes");
    }
    let decode_s = t0.elapsed().as_secs_f64() / iters as f64;

    // Bytes/round from the simulator's per-codec network accounting.
    let report = simulate(
        SimConfig::builder(
            CLIENTS,
            Topology::Hierarchical {
                aggregator_ratio: 0.3,
            },
        )
        .rounds(rounds)
        .optimizer(Box::new(MemoryAware))
        .update_codec(codec)
        .build(),
    );

    CodecResult {
        codec,
        frame_bytes: report.update_frame_bytes,
        compression: report.codec_compression,
        divergence: report.codec_divergence,
        bytes_per_round: report.network_bytes / rounds as u64,
        encode_melems_s: MODEL_PARAMS as f64 / encode_s / 1e6,
        decode_melems_s: MODEL_PARAMS as f64 / decode_s / 1e6,
    }
}

/// Streaming FedAvg fold at fan-in 32: throughput and peak buffering.
fn bench_fold(iters: u32) -> (f64, usize) {
    let children: Vec<Vec<f32>> = (0..FAN_IN)
        .map(|c| {
            pseudo_model(MODEL_PARAMS)
                .into_iter()
                .map(|v| v + c as f32 * 1e-3)
                .collect()
        })
        .collect();
    let mut peak_buffered = 0usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut acc = FedAvg.accumulator();
        for child in &children {
            acc.fold(child, 600).expect("fold");
            peak_buffered = peak_buffered.max(acc.buffered_vectors());
        }
        let out = acc.finish().expect("finish");
        assert_eq!(out.len(), MODEL_PARAMS);
    }
    let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
    let melems_s = (FAN_IN * MODEL_PARAMS) as f64 / per_iter / 1e6;
    (melems_s, peak_buffered)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, iters) = if smoke { (2, 2) } else { (10, 10) };

    let codecs = [
        UpdateCodec::Dense,
        UpdateCodec::Fp16,
        UpdateCodec::Int8,
        UpdateCodec::TOP_K_DEFAULT,
    ];
    let results: Vec<CodecResult> = codecs
        .iter()
        .map(|c| bench_codec(*c, rounds, iters))
        .collect();
    let dense_bytes_per_round = results[0].bytes_per_round;

    println!(
        "# Data plane — {MODEL_PARAMS}-param model, {CLIENTS} clients, hierarchical (30% aggregators)\n"
    );
    println!(
        "codec   frame-bytes  compression  divergence  bytes/round  reduction  enc-Me/s  dec-Me/s"
    );
    let mut entries = Vec::new();
    for r in &results {
        let reduction = dense_bytes_per_round as f64 / r.bytes_per_round as f64;
        println!(
            "{:<7} {:>11}  {:>10.2}x  {:>10.2e}  {:>11}  {:>8.2}x  {:>8.1}  {:>8.1}",
            r.codec.name(),
            r.frame_bytes,
            r.compression,
            r.divergence,
            r.bytes_per_round,
            reduction,
            r.encode_melems_s,
            r.decode_melems_s,
        );
        entries.push(Json::object([
            ("codec", Json::str(r.codec.name())),
            ("frame_bytes", Json::num(r.frame_bytes as f64)),
            ("compression_vs_dense", Json::num(r.compression)),
            ("divergence", Json::num(r.divergence)),
            ("bytes_per_round", Json::num(r.bytes_per_round as f64)),
            ("bytes_per_round_reduction_vs_dense", Json::num(reduction)),
            ("encode_melems_per_s", Json::num(r.encode_melems_s)),
            ("decode_melems_per_s", Json::num(r.decode_melems_s)),
        ]));
    }

    let (fold_melems_s, peak_buffered) = bench_fold(iters);
    println!(
        "\nstreaming FedAvg fold: fan-in {FAN_IN}, {fold_melems_s:.1} Melem/s, \
         peak buffered vectors {peak_buffered} (O(model))"
    );

    // The acceptance invariants, asserted so CI smoke runs enforce them.
    let int8 = &results[2];
    let int8_reduction = dense_bytes_per_round as f64 / int8.bytes_per_round as f64;
    assert!(
        int8_reduction >= 3.9,
        "int8 bytes/round reduction {int8_reduction:.3} < 3.9x"
    );
    assert_eq!(peak_buffered, 1, "FedAvg fold must stay O(model)");

    let doc = Json::object([
        ("model_params", Json::num(MODEL_PARAMS as f64)),
        ("clients", Json::num(CLIENTS as f64)),
        ("rounds", Json::num(rounds as f64)),
        ("smoke", Json::Bool(smoke)),
        ("codecs", Json::Array(entries)),
        (
            "fedavg_fold",
            Json::object([
                ("fan_in", Json::num(FAN_IN as f64)),
                ("melems_per_s", Json::num(fold_melems_s)),
                ("peak_buffered_vectors", Json::num(peak_buffered as f64)),
            ]),
        ),
        ("int8_bytes_per_round_reduction", Json::num(int8_reduction)),
    ]);
    std::fs::write("BENCH_dataplane.json", doc.to_string_compact())
        .expect("write BENCH_dataplane.json");
    println!("\nwrote BENCH_dataplane.json (int8 reduction {int8_reduction:.2}x)");
}
