//! Data-plane benchmark: bytes/round and aggregation throughput across
//! update codecs, emitted as `BENCH_dataplane.json`.
//!
//! For each codec (dense f32, fp16, int8, top-k sparse delta) this
//! measures, with *real encodings* of the paper's MNIST-MLP-sized model:
//!
//! * per-update frame bytes and compression vs dense;
//! * single-pass decode fidelity (relative L2 divergence);
//! * encode/decode throughput in million elements per second;
//! * data-plane bytes per round of a 40-client hierarchical deployment
//!   (the virtual-time simulator's network accounting);
//! * streaming FedAvg fold throughput at fan-in 32, plus the peak number
//!   of full vectors the accumulator held (the O(model) claim: 1).
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin dataplane [-- --smoke]
//! ```
//!
//! `--smoke` shrinks iteration counts for CI; the asserted invariants
//! (int8 ≥ 3.9x bytes/round reduction, FedAvg peak buffering of one
//! vector) hold in both modes.

use sdflmq_core::{
    simulate, AggregationMethod, FedAvg, MemoryAware, SimConfig, Topology, UpdateCodec,
};
use sdflmq_mqttfc::Json;
use sdflmq_nn::codec::reference;
use sdflmq_nn::parallel::WorkerPool;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const MODEL_PARAMS: usize = 109_386; // 784-128-64-10 MLP
const CLIENTS: usize = 40;
const FAN_IN: usize = 32;

/// Counting allocator for the steady-state probe: every `alloc` /
/// `realloc` bumps a counter, so a round loop that reuses its buffers
/// shows a *flat* per-round count instead of growth.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn pseudo_model(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32) * 0.37).sin() * (1.0 + (i % 17) as f32 * 0.25))
        .collect()
}

struct CodecResult {
    codec: UpdateCodec,
    frame_bytes: u64,
    compression: f64,
    divergence: f64,
    bytes_per_round: u64,
    encode_melems_s: f64,
    decode_melems_s: f64,
}

fn bench_codec(codec: UpdateCodec, rounds: u32, iters: u32) -> CodecResult {
    let x = pseudo_model(MODEL_PARAMS);

    // Throughput over real encode/decode passes.
    let mut encoded = codec.encode_stateless(&x, None);
    let t0 = Instant::now();
    for _ in 0..iters {
        encoded = codec.encode_stateless(&x, None);
    }
    let encode_s = t0.elapsed().as_secs_f64() / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = codec.decode(&encoded, None).expect("own encoding decodes");
    }
    let decode_s = t0.elapsed().as_secs_f64() / iters as f64;

    // Bytes/round from the simulator's per-codec network accounting.
    let report = simulate(
        SimConfig::builder(
            CLIENTS,
            Topology::Hierarchical {
                aggregator_ratio: 0.3,
            },
        )
        .rounds(rounds)
        .optimizer(Box::new(MemoryAware))
        .update_codec(codec)
        .build(),
    );

    CodecResult {
        codec,
        frame_bytes: report.update_frame_bytes,
        compression: report.codec_compression,
        divergence: report.codec_divergence,
        bytes_per_round: report.network_bytes / rounds as u64,
        encode_melems_s: MODEL_PARAMS as f64 / encode_s / 1e6,
        decode_melems_s: MODEL_PARAMS as f64 / decode_s / 1e6,
    }
}

/// One codec's encode/decode throughput at one thread count. The
/// 1-thread row runs the retained serial [`reference`] implementation —
/// the pre-parallel baseline — so the scaling axis measures the whole
/// data-plane rewrite (SIMD kernels + buffer reuse + chunk workers),
/// not just thread fan-out.
struct ThreadRow {
    threads: usize,
    encode_melems_s: f64,
    decode_melems_s: f64,
}

struct ThreadScaling {
    codec: UpdateCodec,
    rows: Vec<ThreadRow>,
    encode_speedup_4_vs_1: f64,
}

/// Best-of-`iters` wall time of `f` — minimum, not mean, so one
/// scheduler preemption (likely on small CI hosts) cannot sink a row.
fn min_time(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_threads(codec: UpdateCodec, iters: u32) -> ThreadScaling {
    let x = pseudo_model(MODEL_PARAMS);
    let mut rows: Vec<ThreadRow> = Vec::new();
    for threads in [1usize, 2, 4] {
        let (encode_s, decode_s) = if threads == 1 {
            let mut residual = Vec::new();
            let encoded = reference::encode(codec, &x, None, &mut residual);
            let encode_s = min_time(iters, || {
                residual.clear();
                let enc = reference::encode(codec, &x, None, &mut residual);
                assert_eq!(enc.len(), encoded.len());
            });
            let decode_s = min_time(iters, || {
                let dec = reference::decode(codec, &encoded, None).expect("decodes");
                assert_eq!(dec.len(), MODEL_PARAMS);
            });
            (encode_s, decode_s)
        } else {
            let pool = WorkerPool::new(threads);
            let mut residual = Vec::new();
            let mut encoded = Vec::new();
            let mut decoded = Vec::new();
            codec.encode_into(&x, None, &mut residual, &pool, &mut encoded);
            let encode_s = min_time(iters, || {
                residual.clear();
                codec.encode_into(&x, None, &mut residual, &pool, &mut encoded);
            });
            let decode_s = min_time(iters, || {
                codec
                    .decode_into(&encoded, None, &pool, &mut decoded)
                    .expect("decodes");
            });
            (encode_s, decode_s)
        };
        rows.push(ThreadRow {
            threads,
            encode_melems_s: MODEL_PARAMS as f64 / encode_s / 1e6,
            decode_melems_s: MODEL_PARAMS as f64 / decode_s / 1e6,
        });
    }
    let encode_speedup_4_vs_1 = rows[2].encode_melems_s / rows[0].encode_melems_s;
    ThreadScaling {
        codec,
        rows,
        encode_speedup_4_vs_1,
    }
}

/// Steady-state allocation probe: one "round" encodes, decodes, and
/// folds a model-sized update with *reused* buffers, the way the client
/// runtime's pooled path does. After warmup the per-round allocation
/// count must be flat — any growth means a hot-path buffer escaped the
/// pool.
fn bench_allocs_per_round(rounds: usize) -> (Vec<u64>, bool) {
    let codec = UpdateCodec::Int8;
    let x = pseudo_model(MODEL_PARAMS);
    let pool = WorkerPool::new(2);
    let mut residual = Vec::new();
    let mut encoded = Vec::new();
    let mut decoded = Vec::new();
    let round = |residual: &mut Vec<f32>, encoded: &mut Vec<u8>, decoded: &mut Vec<f32>| {
        codec.encode_into(&x, None, residual, &pool, encoded);
        codec
            .decode_into(encoded, None, &pool, decoded)
            .expect("decodes");
        let mut acc = FedAvg.accumulator();
        acc.fold_par(decoded, 600, &pool).expect("fold");
        let out = acc.finish().expect("finish");
        assert_eq!(out.len(), MODEL_PARAMS);
    };
    // Warmup: buffers and worker thread-locals reach steady capacity.
    for _ in 0..2 {
        round(&mut residual, &mut encoded, &mut decoded);
    }
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let before = ALLOCS.load(Ordering::Relaxed);
        round(&mut residual, &mut encoded, &mut decoded);
        per_round.push(ALLOCS.load(Ordering::Relaxed) - before);
    }
    let flat = per_round.windows(2).all(|w| w[0] == w[1]);
    (per_round, flat)
}

/// Streaming FedAvg fold at fan-in 32: throughput and peak buffering.
fn bench_fold(iters: u32) -> (f64, usize) {
    let children: Vec<Vec<f32>> = (0..FAN_IN)
        .map(|c| {
            pseudo_model(MODEL_PARAMS)
                .into_iter()
                .map(|v| v + c as f32 * 1e-3)
                .collect()
        })
        .collect();
    let mut peak_buffered = 0usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut acc = FedAvg.accumulator();
        for child in &children {
            acc.fold(child, 600).expect("fold");
            peak_buffered = peak_buffered.max(acc.buffered_vectors());
        }
        let out = acc.finish().expect("finish");
        assert_eq!(out.len(), MODEL_PARAMS);
    }
    let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
    let melems_s = (FAN_IN * MODEL_PARAMS) as f64 / per_iter / 1e6;
    (melems_s, peak_buffered)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, iters) = if smoke { (2, 2) } else { (10, 10) };

    let codecs = [
        UpdateCodec::Dense,
        UpdateCodec::Fp16,
        UpdateCodec::Int8,
        UpdateCodec::TOP_K_DEFAULT,
    ];
    let results: Vec<CodecResult> = codecs
        .iter()
        .map(|c| bench_codec(*c, rounds, iters))
        .collect();
    let dense_bytes_per_round = results[0].bytes_per_round;

    println!(
        "# Data plane — {MODEL_PARAMS}-param model, {CLIENTS} clients, hierarchical (30% aggregators)\n"
    );
    println!(
        "codec   frame-bytes  compression  divergence  bytes/round  reduction  enc-Me/s  dec-Me/s"
    );
    let mut entries = Vec::new();
    for r in &results {
        let reduction = dense_bytes_per_round as f64 / r.bytes_per_round as f64;
        println!(
            "{:<7} {:>11}  {:>10.2}x  {:>10.2e}  {:>11}  {:>8.2}x  {:>8.1}  {:>8.1}",
            r.codec.name(),
            r.frame_bytes,
            r.compression,
            r.divergence,
            r.bytes_per_round,
            reduction,
            r.encode_melems_s,
            r.decode_melems_s,
        );
        entries.push(Json::object([
            ("codec", Json::str(r.codec.name())),
            ("frame_bytes", Json::num(r.frame_bytes as f64)),
            ("compression_vs_dense", Json::num(r.compression)),
            ("divergence", Json::num(r.divergence)),
            ("bytes_per_round", Json::num(r.bytes_per_round as f64)),
            ("bytes_per_round_reduction_vs_dense", Json::num(reduction)),
            ("encode_melems_per_s", Json::num(r.encode_melems_s)),
            ("decode_melems_per_s", Json::num(r.decode_melems_s)),
        ]));
    }

    let (fold_melems_s, peak_buffered) = bench_fold(iters);
    println!(
        "\nstreaming FedAvg fold: fan-in {FAN_IN}, {fold_melems_s:.1} Melem/s, \
         peak buffered vectors {peak_buffered} (O(model))"
    );

    // Thread-scaling axis: 1 thread = the retained serial reference
    // (the pre-parallel data plane), 2/4 = the chunked parallel path.
    let thread_iters = iters.max(5);
    let scaling: Vec<ThreadScaling> = codecs
        .iter()
        .map(|c| bench_threads(*c, thread_iters))
        .collect();
    println!("\ncodec   threads  enc-Me/s  dec-Me/s   (1 thread = serial reference)");
    let mut scaling_entries = Vec::new();
    for s in &scaling {
        let mut row_entries = Vec::new();
        for row in &s.rows {
            println!(
                "{:<7} {:>7}  {:>8.1}  {:>8.1}",
                s.codec.name(),
                row.threads,
                row.encode_melems_s,
                row.decode_melems_s,
            );
            row_entries.push(Json::object([
                ("threads", Json::num(row.threads as f64)),
                ("encode_melems_per_s", Json::num(row.encode_melems_s)),
                ("decode_melems_per_s", Json::num(row.decode_melems_s)),
            ]));
        }
        println!(
            "{:<7} encode speedup 4-vs-1: {:.2}x",
            s.codec.name(),
            s.encode_speedup_4_vs_1
        );
        scaling_entries.push(Json::object([
            ("codec", Json::str(s.codec.name())),
            ("rows", Json::Array(row_entries)),
            ("encode_speedup_4_vs_1", Json::num(s.encode_speedup_4_vs_1)),
        ]));
    }

    let (allocs_per_round, allocs_flat) = bench_allocs_per_round(if smoke { 4 } else { 8 });
    println!(
        "\nallocations/round (encode+decode+fold, reused buffers): {allocs_per_round:?} \
         flat={allocs_flat}"
    );

    // The acceptance invariants, asserted so CI smoke runs enforce them.
    let int8 = &results[2];
    let int8_reduction = dense_bytes_per_round as f64 / int8.bytes_per_round as f64;
    assert!(
        int8_reduction >= 3.9,
        "int8 bytes/round reduction {int8_reduction:.3} < 3.9x"
    );
    assert_eq!(peak_buffered, 1, "FedAvg fold must stay O(model)");
    let int8_speedup = scaling[2].encode_speedup_4_vs_1;
    assert!(
        int8_speedup >= 1.8,
        "int8 encode at 4 threads only {int8_speedup:.2}x over the serial reference (< 1.8x)"
    );
    assert!(
        allocs_flat,
        "steady-state allocations grew round over round: {allocs_per_round:?}"
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = Json::object([
        ("model_params", Json::num(MODEL_PARAMS as f64)),
        ("clients", Json::num(CLIENTS as f64)),
        ("rounds", Json::num(rounds as f64)),
        ("smoke", Json::Bool(smoke)),
        ("cpus", Json::num(cpus as f64)),
        ("codecs", Json::Array(entries)),
        (
            "fedavg_fold",
            Json::object([
                ("fan_in", Json::num(FAN_IN as f64)),
                ("melems_per_s", Json::num(fold_melems_s)),
                ("peak_buffered_vectors", Json::num(peak_buffered as f64)),
            ]),
        ),
        ("thread_scaling", Json::Array(scaling_entries)),
        (
            "allocations_per_round",
            Json::object([
                (
                    "per_round",
                    Json::Array(
                        allocs_per_round
                            .iter()
                            .map(|&n| Json::num(n as f64))
                            .collect(),
                    ),
                ),
                ("flat", Json::Bool(allocs_flat)),
            ]),
        ),
        ("int8_bytes_per_round_reduction", Json::num(int8_reduction)),
        ("int8_encode_speedup_4_vs_1", Json::num(int8_speedup)),
    ]);
    std::fs::write("BENCH_dataplane.json", doc.to_string_compact())
        .expect("write BENCH_dataplane.json");
    println!("\nwrote BENCH_dataplane.json (int8 reduction {int8_reduction:.2}x)");
}
