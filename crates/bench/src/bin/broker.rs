//! Broker-core benchmark: publish/fan-out throughput and delivery latency
//! across event-loop shard counts, emitted as `BENCH_broker.json`.
//!
//! Three workloads over the **real** broker (raw MQTT frames over
//! in-process links, no FL stack):
//!
//! * `fanout` — CPU-bound routing: 8 publishers blast QoS 0 publishes at
//!   subscriber pools of 1 → 1000 over unbounded links. Each delivery's
//!   latency is measured from a timestamp embedded in the payload
//!   (p50/p99). On a multi-core host this scales with shards; on a
//!   single-core host it is flat by construction (the work is CPU).
//! * `hol` — flow-controlled fan-out (the sharding headline): every
//!   subscriber link is *bounded* (the in-process model of a TCP send
//!   window) and subscribers drain in batches with a processing pause,
//!   so the broker regularly blocks on a full window. With one shard
//!   that block head-of-line-stalls every other partition's traffic;
//!   with N shards only the stalled partition waits. The aggregate
//!   delivered msgs/s across all partitions is the
//!   `publish_fanout_throughput` the acceptance gate reads, because it
//!   measures the architectural property sharding buys at *any* core
//!   count — stall isolation — not just spare CPUs.
//! * `retained` — retained set/clear churn (QoS 1 round-trips). This
//!   funnels through the index's single writer by design, so it is
//!   expected to stay flat across shard counts; it is recorded to prove
//!   the writer does not *regress* as shards are added.
//! * `recovery` — durable-broker restart cost: seed 1k/10k retained
//!   topics, time a full WAL replay, then compact and time the snapshot
//!   replay, recording both on-disk footprints.
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin broker [-- --smoke]
//! ```
//!
//! `--smoke` shrinks volumes and the matrix for CI; the ≥2x 4-vs-1-shard
//! assertion on the flow-controlled aggregate runs in both modes.

use bytes::Bytes;
use sdflmq_mqtt::broker::{Broker, BrokerConfig};
use sdflmq_mqtt::codec;
use sdflmq_mqtt::packet::{Connack, Connect, Packet, Publish, QoS, Subscribe};
use sdflmq_mqtt::persist::{store, Persistence};
use sdflmq_mqtt::topic::{TopicFilter, TopicName};
use sdflmq_mqtt::transport::LinkEnd;
use sdflmq_mqttfc::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const PARTITIONS: usize = 8;

/// FNV-1a, mirroring the broker's shard assignment: used to mint client
/// ids that land on a chosen shard residue so partitions stay balanced
/// at every shard count in the matrix (residue mod 8 fixes mod 4/2/1).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn pinned_id(prefix: &str, residue: u64) -> String {
    (0u64..)
        .map(|salt| format!("{prefix}-{salt}"))
        .find(|id| fnv(id) % PARTITIONS as u64 == residue)
        .expect("searchable")
}

/// Raw MQTT client: CONNECT handshake done, link exposed.
fn connect(broker: &Broker, id: &str, bounded: Option<usize>) -> LinkEnd {
    let link = match bounded {
        Some(cap) => broker.connect_transport_bounded(cap).unwrap(),
        None => broker.connect_transport().unwrap(),
    };
    link.send_packet(&Packet::Connect(Connect {
        client_id: id.to_owned(),
        clean_session: true,
        keep_alive: 0,
        will: None,
    }))
    .unwrap();
    match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
        Packet::Connack(Connack { code, .. }) => assert_eq!(code as u8, 0),
        other => panic!("expected connack, got {other:?}"),
    }
    link
}

fn subscribe(link: &LinkEnd, filter: &str, qos: QoS) {
    link.send_packet(&Packet::Subscribe(Subscribe {
        packet_id: 1,
        filters: vec![(TopicFilter::new(filter).unwrap(), qos)],
    }))
    .unwrap();
    match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
        Packet::Suback(_) => {}
        other => panic!("expected suback, got {other:?}"),
    }
}

fn broker_with(shards: usize) -> Broker {
    Broker::start(BrokerConfig {
        name: format!("bench-{shards}"),
        shards,
        ..BrokerConfig::default()
    })
}

struct FanoutCell {
    shards: usize,
    fanout: usize,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
}

/// CPU-bound fan-out: `PARTITIONS` publishers to one shared topic with
/// `fanout` subscribers; unbounded links; QoS 0 encode-once delivery.
fn bench_fanout(shards: usize, fanout: usize, msgs_per_pub: usize) -> FanoutCell {
    let broker = broker_with(shards);
    let delivered = Arc::new(AtomicU64::new(0));
    let epoch = Instant::now();
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let mut drains = Vec::new();
    for i in 0..fanout {
        let link = connect(&broker, &format!("sub-{i}"), None);
        subscribe(&link, "fan/all", QoS::AtMostOnce);
        let delivered = Arc::clone(&delivered);
        let latencies = Arc::clone(&latencies);
        drains.push(std::thread::spawn(move || {
            let mut local = Vec::with_capacity(4096);
            let mut n = 0u64;
            while let Ok(frame) = link.recv_frame() {
                n += 1;
                // Payload tail carries the send timestamp (ns since epoch).
                if n.is_multiple_of(16) && frame.len() >= 8 {
                    let mut ts = [0u8; 8];
                    ts.copy_from_slice(&frame[frame.len() - 8..]);
                    let sent = u64::from_be_bytes(ts);
                    let now = epoch.elapsed().as_nanos() as u64;
                    local.push(now.saturating_sub(sent));
                }
                delivered.fetch_add(1, Ordering::Relaxed);
            }
            latencies.lock().unwrap().extend_from_slice(&local);
        }));
    }

    let expected = (PARTITIONS * msgs_per_pub * fanout) as u64;
    let topic = TopicName::new("fan/all").unwrap();
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("pub", p as u64), None);
            let topic = topic.clone();
            std::thread::spawn(move || {
                for _ in 0..msgs_per_pub {
                    let ts = epoch.elapsed().as_nanos() as u64;
                    let frame = codec::encode(&Packet::Publish(Publish {
                        dup: false,
                        qos: QoS::AtMostOnce,
                        retain: false,
                        topic: topic.clone(),
                        packet_id: None,
                        payload: Bytes::from(ts.to_be_bytes().to_vec()),
                    }))
                    .unwrap();
                    link.send_frame(frame).unwrap();
                }
                link // keep the connection open until all cells drain
            })
        })
        .collect();
    let _links: Vec<LinkEnd> = pubs.into_iter().map(|t| t.join().unwrap()).collect();
    while delivered.load(Ordering::Relaxed) < expected {
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = start.elapsed().as_secs_f64();
    drop(broker); // closes links; drain threads exit
    for d in drains {
        let _ = d.join();
    }

    let mut lat = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * p).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    FanoutCell {
        shards,
        fanout,
        throughput: expected as f64 / wall,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// Flow-controlled fan-out: one throttled, window-bounded subscriber per
/// partition. A full window blocks the delivering shard; with one shard
/// that stall holds every partition hostage (head-of-line blocking),
/// with N shards it is contained. Returns aggregate delivered msgs/s.
fn bench_hol(shards: usize, msgs_per_pub: usize) -> f64 {
    const WINDOW: usize = 64;
    let broker = broker_with(shards);
    let delivered = Arc::new(AtomicU64::new(0));

    let mut drains = Vec::new();
    for p in 0..PARTITIONS {
        let link = connect(&broker, &format!("hol-sub-{p}"), Some(WINDOW));
        subscribe(&link, &format!("part/{p}"), QoS::AtMostOnce);
        let delivered = Arc::clone(&delivered);
        drains.push(std::thread::spawn(move || {
            let mut n = 0usize;
            while link.recv_frame().is_ok() {
                n += 1;
                delivered.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(WINDOW) {
                    // Per-batch processing cost: the consumer-side work
                    // (decode, apply) that makes real windows fill up.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }));
    }

    let expected = (PARTITIONS * msgs_per_pub) as u64;
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("hol-pub", p as u64), None);
            std::thread::spawn(move || {
                let topic = TopicName::new(format!("part/{p}")).unwrap();
                let frame = codec::encode(&Packet::Publish(Publish {
                    dup: false,
                    qos: QoS::AtMostOnce,
                    retain: false,
                    topic,
                    packet_id: None,
                    payload: Bytes::from_static(b"flow-controlled-payload-64b-x"),
                }))
                .unwrap();
                for _ in 0..msgs_per_pub {
                    link.send_frame(frame.clone()).unwrap();
                }
                link
            })
        })
        .collect();
    let _links: Vec<LinkEnd> = pubs.into_iter().map(|t| t.join().unwrap()).collect();
    while delivered.load(Ordering::Relaxed) < expected {
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = start.elapsed().as_secs_f64();
    drop(broker);
    for d in drains {
        let _ = d.join();
    }
    expected as f64 / wall
}

/// Retained set/clear churn at QoS 1 (round-trip per op): exercises the
/// snapshot index's single writer. Returns ops/s.
fn bench_retained(shards: usize, ops_per_pub: usize) -> f64 {
    let broker = broker_with(shards);
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("ret-pub", p as u64), None);
            std::thread::spawn(move || {
                for i in 0..ops_per_pub {
                    let clearing = i % 2 == 1;
                    let payload: &[u8] = if clearing { b"" } else { b"state" };
                    link.send_packet(&Packet::Publish(Publish {
                        dup: false,
                        qos: QoS::AtLeastOnce,
                        retain: true,
                        topic: TopicName::new(format!("ret/{p}/{}", i % 100)).unwrap(),
                        packet_id: Some((i % 60_000 + 1) as u16),
                        payload: Bytes::from_static(payload),
                    }))
                    .unwrap();
                    match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                        Packet::Puback(_) => {}
                        other => panic!("expected puback, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in pubs {
        t.join().unwrap();
    }
    let wall = start.elapsed().as_secs_f64();
    drop(broker);
    (PARTITIONS * ops_per_pub) as f64 / wall
}

struct RecoveryCell {
    topics: usize,
    wal_bytes: u64,
    wal_replay_ms: f64,
    snapshot_bytes: u64,
    snapshot_replay_ms: f64,
}

/// Total size of the persistence files directly under `dir`.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Durable-broker recovery: seed `topics` retained topics through the WAL
/// (compaction disabled), time a replay from the raw log, then compact
/// into a snapshot and time the replay again. Reports both on-disk sizes.
fn bench_recovery(topics: usize) -> RecoveryCell {
    let dir = std::env::temp_dir().join(format!(
        "sdflmq-bench-recovery-{topics}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let durable = || {
        Broker::start(BrokerConfig {
            name: format!("bench-recovery-{topics}"),
            // Effectively disable threshold compaction so phase one
            // leaves a pure append log.
            persistence: Persistence::at(dir.clone()).snapshot_every(u64::MAX / 2),
            ..BrokerConfig::default()
        })
    };

    // Phase 1: four retained updates per topic, so the append log carries
    // the churn a snapshot folds away.
    {
        let broker = durable();
        let link = connect(&broker, "rec-pub", None);
        for i in 0..topics * 4 {
            let t = i % topics;
            link.send_packet(&Packet::Publish(Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: true,
                topic: TopicName::new(format!("rec/{}/{}", t / 100, t % 100)).unwrap(),
                packet_id: Some((i % 60_000 + 1) as u16),
                payload: Bytes::from(vec![(i / topics) as u8; 32]),
            }))
            .unwrap();
            match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                Packet::Puback(_) => {}
                other => panic!("expected puback, got {other:?}"),
            }
        }
    }

    let wal_bytes = dir_bytes(&dir);
    let start = Instant::now();
    let state = store::recover_dir(&dir, 1024);
    let wal_replay_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(state.retained.len(), topics, "WAL replay must be lossless");

    // Phase 2: recover, fold into a snapshot, measure the compacted form.
    {
        let broker = durable();
        broker.snapshot_now();
    }
    let snapshot_bytes = dir_bytes(&dir);
    let start = Instant::now();
    let state = store::recover_dir(&dir, 1024);
    let snapshot_replay_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(
        state.retained.len(),
        topics,
        "snapshot replay must be lossless"
    );

    let _ = std::fs::remove_dir_all(&dir);
    RecoveryCell {
        topics,
        wal_bytes,
        wal_replay_ms,
        snapshot_bytes,
        snapshot_replay_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let fanouts: &[usize] = if smoke {
        &[1, 100]
    } else {
        &[1, 10, 100, 1000]
    };
    let scale = if smoke { 10 } else { 1 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Broker core — {PARTITIONS} publishers, shards {shard_counts:?}, {cpus} CPUs\n");

    // --- CPU-bound fan-out matrix ---------------------------------------
    println!("fanout matrix (unbounded links, QoS 0):");
    println!("shards  fanout  msgs/s      p50-us   p99-us");
    let mut fanout_cells = Vec::new();
    for &shards in shard_counts {
        for &fanout in fanouts {
            let msgs_per_pub = (match fanout {
                1 => 12_000,
                10 => 2_000,
                100 => 250,
                _ => 25,
            }) / scale;
            let cell = bench_fanout(shards, fanout, msgs_per_pub.max(5));
            println!(
                "{:>6}  {:>6}  {:>10.0}  {:>7.0}  {:>7.0}",
                cell.shards, cell.fanout, cell.throughput, cell.p50_us, cell.p99_us
            );
            fanout_cells.push(cell);
        }
    }

    // --- Flow-controlled fan-out (head-of-line isolation) ---------------
    println!("\nflow-controlled fan-out (bounded windows, throttled consumers):");
    println!("shards  msgs/s");
    let hol_msgs = 3_000 / scale;
    let mut hol: Vec<(usize, f64)> = Vec::new();
    for &shards in shard_counts {
        let rate = bench_hol(shards, hol_msgs);
        println!("{shards:>6}  {rate:>10.0}");
        hol.push((shards, rate));
    }

    // --- Retained churn --------------------------------------------------
    println!("\nretained churn (QoS 1 set/clear):");
    println!("shards  ops/s");
    let ret_ops = 1_500 / scale;
    let mut retained: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 4] {
        let rate = bench_retained(shards, ret_ops);
        println!("{shards:>6}  {rate:>10.0}");
        retained.push((shards, rate));
    }

    // --- Durable recovery -------------------------------------------------
    println!("\nrecovery (WAL replay vs compacted snapshot):");
    println!("topics  wal-KiB  wal-ms   snap-KiB  snap-ms");
    let recovery_sizes: &[usize] = if smoke {
        &[100, 1_000]
    } else {
        &[1_000, 10_000]
    };
    let mut recovery = Vec::new();
    for &topics in recovery_sizes {
        let cell = bench_recovery(topics);
        println!(
            "{:>6}  {:>7.1}  {:>6.2}  {:>8.1}  {:>7.2}",
            cell.topics,
            cell.wal_bytes as f64 / 1024.0,
            cell.wal_replay_ms,
            cell.snapshot_bytes as f64 / 1024.0,
            cell.snapshot_replay_ms
        );
        recovery.push(cell);
    }

    // --- Aggregate + acceptance gates ------------------------------------
    let rate_at =
        |v: &[(usize, f64)], s: usize| v.iter().find(|(n, _)| *n == s).map(|(_, r)| *r).unwrap();
    let hol_speedup = rate_at(&hol, 4) / rate_at(&hol, 1);
    let cpu_cell = |shards: usize| {
        fanout_cells
            .iter()
            .find(|c| c.shards == shards && c.fanout == 100)
            .map(|c| c.throughput)
            .unwrap_or(0.0)
    };
    let cpu_speedup = cpu_cell(4) / cpu_cell(1).max(1.0);
    println!(
        "\naggregate publish-fanout throughput (flow-controlled): \
         4 shards = {:.2}x 1 shard (cpu-bound fanout-100: {:.2}x, {} CPUs)",
        hol_speedup, cpu_speedup, cpus
    );
    assert!(
        hol_speedup >= 2.0,
        "sharded stall isolation must deliver >= 2x aggregate fan-out \
         throughput at 4 shards vs 1 (got {hol_speedup:.2}x)"
    );

    let fanout_json: Vec<Json> = fanout_cells
        .iter()
        .map(|c| {
            Json::object([
                ("shards", Json::num(c.shards as f64)),
                ("fanout", Json::num(c.fanout as f64)),
                ("throughput_msgs_per_s", Json::num(c.throughput)),
                ("p50_us", Json::num(c.p50_us)),
                ("p99_us", Json::num(c.p99_us)),
            ])
        })
        .collect();
    let doc = Json::object([
        ("smoke", Json::Bool(smoke)),
        ("host_cpus", Json::num(cpus as f64)),
        ("publishers", Json::num(PARTITIONS as f64)),
        ("fanout_matrix", Json::Array(fanout_json)),
        (
            "flow_controlled",
            Json::object(hol.iter().map(|(s, r)| (format!("{s}"), Json::num(*r)))),
        ),
        (
            "retained_churn_ops_per_s",
            Json::object(
                retained
                    .iter()
                    .map(|(s, r)| (format!("{s}"), Json::num(*r))),
            ),
        ),
        (
            "recovery",
            Json::Array(
                recovery
                    .iter()
                    .map(|c| {
                        Json::object([
                            ("retained_topics", Json::num(c.topics as f64)),
                            ("wal_bytes", Json::num(c.wal_bytes as f64)),
                            ("wal_replay_ms", Json::num(c.wal_replay_ms)),
                            ("snapshot_bytes", Json::num(c.snapshot_bytes as f64)),
                            ("snapshot_replay_ms", Json::num(c.snapshot_replay_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "aggregate",
            Json::object([
                (
                    "publish_fanout_throughput_msgs_per_s",
                    Json::object(hol.iter().map(|(s, r)| (format!("{s}"), Json::num(*r)))),
                ),
                ("speedup_4_shards_vs_1", Json::num(hol_speedup)),
                ("cpu_bound_fanout100_speedup_4_vs_1", Json::num(cpu_speedup)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_broker.json", doc.to_string_compact()).expect("write BENCH_broker.json");
    println!("wrote BENCH_broker.json (flow-controlled 4v1 speedup {hol_speedup:.2}x)");
}
