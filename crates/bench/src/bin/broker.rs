//! Broker-core benchmark: publish/fan-out throughput and delivery latency
//! across event-loop shard counts, emitted as `BENCH_broker.json`.
//!
//! Three workloads over the **real** broker (raw MQTT frames over
//! in-process links, no FL stack):
//!
//! * `fanout` — CPU-bound routing: 8 publishers blast QoS 0 publishes at
//!   subscriber pools of 1 → 1000 over unbounded links. Each delivery's
//!   latency is measured from a timestamp embedded in the payload
//!   (p50/p99). On a multi-core host this scales with shards; on a
//!   single-core host it is flat by construction (the work is CPU).
//! * `hol` — flow-controlled fan-out (the sharding headline): every
//!   subscriber link is *bounded* (the in-process model of a TCP send
//!   window) and subscribers drain in batches with a processing pause,
//!   so the broker regularly blocks on a full window. With one shard
//!   that block head-of-line-stalls every other partition's traffic;
//!   with N shards only the stalled partition waits. The aggregate
//!   delivered msgs/s across all partitions is the
//!   `publish_fanout_throughput` the acceptance gate reads, because it
//!   measures the architectural property sharding buys at *any* core
//!   count — stall isolation — not just spare CPUs.
//! * `retained` — retained set/clear churn (QoS 1 round-trips). This
//!   funnels through the index's single writer by design, so it is
//!   expected to stay flat across shard counts; it is recorded to prove
//!   the writer does not *regress* as shards are added.
//! * `durability` — the write-behind WAL axis: identical QoS 1 round
//!   traffic (persistent subscribers, so every delivery logs inflight
//!   records) against an in-memory broker and durable brokers under
//!   `OsCache` and `GroupCommit`. Gated: durable OsCache round
//!   throughput ≥ 0.85x the in-memory baseline (0.60x on single-core
//!   hosts, where the persistence thread has no spare core to overlap
//!   with), and steady-state WAL
//!   appends allocation-free (counting-allocator probe). A durable
//!   connection-scaling cell checks the persistence thread stays off
//!   the O(shards) thread budget.
//! * `recovery` — durable-broker restart cost: seed 1k/10k retained
//!   topics, time a full WAL replay, then compact and time the snapshot
//!   replay, recording both on-disk footprints.
//! * `connections` — reactor scalability on the *socket* axis: 1k/10k
//!   real TCP clients connect, subscribe, sit idle, then all receive a
//!   round's model broadcast. Records the broker-side thread count at
//!   10k connections and asserts it stays O(shards) — the property the
//!   readiness-driven reactor buys over thread-per-connection (the old
//!   design would need 10k reader threads here).
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin broker [-- --smoke]
//! ```
//!
//! `--smoke` shrinks volumes and the matrix for CI; the ≥2x 4-vs-1-shard
//! assertion on the flow-controlled aggregate runs in both modes.

use bytes::Bytes;
use sdflmq_mqtt::broker::{Broker, BrokerConfig};
use sdflmq_mqtt::codec;
use sdflmq_mqtt::packet::{Connack, Connect, Packet, Publish, QoS, Subscribe};
use sdflmq_mqtt::persist::{store, wal, Durability, Persistence, WalRecord};
use sdflmq_mqtt::topic::{TopicFilter, TopicName};
use sdflmq_mqtt::transport::LinkEnd;
use sdflmq_mqttfc::Json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const PARTITIONS: usize = 8;

/// Counting allocator for the steady-state WAL probe (mirrors the
/// data-plane bench): every `alloc` / `realloc` bumps a counter, so an
/// append loop that reuses its encode scratch shows a *flat* (here:
/// zero) per-round count instead of growth.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// FNV-1a, mirroring the broker's shard assignment: used to mint client
/// ids that land on a chosen shard residue so partitions stay balanced
/// at every shard count in the matrix (residue mod 8 fixes mod 4/2/1).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn pinned_id(prefix: &str, residue: u64) -> String {
    (0u64..)
        .map(|salt| format!("{prefix}-{salt}"))
        .find(|id| fnv(id) % PARTITIONS as u64 == residue)
        .expect("searchable")
}

/// Raw MQTT client: CONNECT handshake done, link exposed.
fn connect(broker: &Broker, id: &str, bounded: Option<usize>) -> LinkEnd {
    connect_session(broker, id, true, bounded)
}

/// [`connect`] with an explicit clean-session flag — the durability axis
/// needs persistent sessions so deliveries generate WAL records.
fn connect_session(
    broker: &Broker,
    id: &str,
    clean_session: bool,
    bounded: Option<usize>,
) -> LinkEnd {
    let link = match bounded {
        Some(cap) => broker.connect_transport_bounded(cap).unwrap(),
        None => broker.connect_transport().unwrap(),
    };
    link.send_packet(&Packet::Connect(Connect {
        client_id: id.to_owned(),
        clean_session,
        keep_alive: 0,
        will: None,
    }))
    .unwrap();
    match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
        Packet::Connack(Connack { code, .. }) => assert_eq!(code as u8, 0),
        other => panic!("expected connack, got {other:?}"),
    }
    link
}

fn subscribe(link: &LinkEnd, filter: &str, qos: QoS) {
    link.send_packet(&Packet::Subscribe(Subscribe {
        packet_id: 1,
        filters: vec![(TopicFilter::new(filter).unwrap(), qos)],
    }))
    .unwrap();
    match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
        Packet::Suback(_) => {}
        other => panic!("expected suback, got {other:?}"),
    }
}

fn broker_with(shards: usize) -> Broker {
    Broker::start(BrokerConfig {
        name: format!("bench-{shards}"),
        shards,
        ..BrokerConfig::default()
    })
}

struct FanoutCell {
    shards: usize,
    fanout: usize,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
}

/// CPU-bound fan-out: `PARTITIONS` publishers to one shared topic with
/// `fanout` subscribers; unbounded links; QoS 0 encode-once delivery.
fn bench_fanout(shards: usize, fanout: usize, msgs_per_pub: usize) -> FanoutCell {
    let broker = broker_with(shards);
    let delivered = Arc::new(AtomicU64::new(0));
    let epoch = Instant::now();
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let mut drains = Vec::new();
    for i in 0..fanout {
        let link = connect(&broker, &format!("sub-{i}"), None);
        subscribe(&link, "fan/all", QoS::AtMostOnce);
        let delivered = Arc::clone(&delivered);
        let latencies = Arc::clone(&latencies);
        drains.push(std::thread::spawn(move || {
            let mut local = Vec::with_capacity(4096);
            let mut n = 0u64;
            while let Ok(frame) = link.recv_frame() {
                n += 1;
                // Payload tail carries the send timestamp (ns since epoch).
                if n.is_multiple_of(16) && frame.len() >= 8 {
                    let mut ts = [0u8; 8];
                    ts.copy_from_slice(&frame[frame.len() - 8..]);
                    let sent = u64::from_be_bytes(ts);
                    let now = epoch.elapsed().as_nanos() as u64;
                    local.push(now.saturating_sub(sent));
                }
                delivered.fetch_add(1, Ordering::Relaxed);
            }
            latencies.lock().unwrap().extend_from_slice(&local);
        }));
    }

    let expected = (PARTITIONS * msgs_per_pub * fanout) as u64;
    let topic = TopicName::new("fan/all").unwrap();
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("pub", p as u64), None);
            let topic = topic.clone();
            std::thread::spawn(move || {
                for _ in 0..msgs_per_pub {
                    let ts = epoch.elapsed().as_nanos() as u64;
                    let frame = codec::encode(&Packet::Publish(Publish {
                        dup: false,
                        qos: QoS::AtMostOnce,
                        retain: false,
                        topic: topic.clone(),
                        packet_id: None,
                        payload: Bytes::from(ts.to_be_bytes().to_vec()),
                    }))
                    .unwrap();
                    link.send_frame(frame).unwrap();
                }
                link // keep the connection open until all cells drain
            })
        })
        .collect();
    let _links: Vec<LinkEnd> = pubs.into_iter().map(|t| t.join().unwrap()).collect();
    while delivered.load(Ordering::Relaxed) < expected {
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = start.elapsed().as_secs_f64();
    drop(broker); // closes links; drain threads exit
    for d in drains {
        let _ = d.join();
    }

    let mut lat = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * p).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    FanoutCell {
        shards,
        fanout,
        throughput: expected as f64 / wall,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// Unsaturated fan-out completion probe: one publisher, `fanout`
/// subscribers, one message in flight at a time. Measures publish →
/// last-delivery wall time per round and returns the p50 in
/// microseconds.
///
/// This is the latency cross-shard batching protects: each publish
/// costs at most one coalesced `Deliver` batch + one wake per shard, so
/// the 8-shard probe must stay near the single-shard reference even on
/// one core (a per-message hop design pays ~`fanout` channel sends and
/// wakes instead). The saturated matrix above cannot gate this — under
/// full blast with `fanout` drain threads on one core, p50 is
/// scheduler queueing, not routing cost.
fn bench_fanout_latency(shards: usize, fanout: usize, rounds: usize) -> f64 {
    let broker = broker_with(shards);
    let subs: Vec<LinkEnd> = (0..fanout)
        .map(|i| {
            let link = connect(&broker, &format!("lat-sub-{i}"), None);
            subscribe(&link, "lat/all", QoS::AtMostOnce);
            link
        })
        .collect();
    let publ = connect(&broker, "lat-pub", None);
    let frame = codec::encode(&Packet::Publish(Publish {
        dup: false,
        qos: QoS::AtMostOnce,
        retain: false,
        topic: TopicName::new("lat/all").unwrap(),
        packet_id: None,
        payload: Bytes::from_static(b"latency-probe"),
    }))
    .unwrap();

    let mut samples = Vec::with_capacity(rounds);
    // Three warmup rounds prime snapshots and allocators before sampling.
    for round in 0..rounds + 3 {
        let t = Instant::now();
        publ.send_frame(frame.clone()).unwrap();
        for s in &subs {
            match s.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                Packet::Publish(_) => {}
                other => panic!("expected publish, got {other:?}"),
            }
        }
        if round >= 3 {
            samples.push(t.elapsed().as_secs_f64() * 1_000_000.0);
        }
    }
    drop(broker);
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

/// Flow-controlled fan-out: one throttled, window-bounded subscriber per
/// partition. A full window blocks the delivering shard; with one shard
/// that stall holds every partition hostage (head-of-line blocking),
/// with N shards it is contained. Returns aggregate delivered msgs/s.
fn bench_hol(shards: usize, msgs_per_pub: usize) -> f64 {
    const WINDOW: usize = 64;
    let broker = broker_with(shards);
    let delivered = Arc::new(AtomicU64::new(0));

    let mut drains = Vec::new();
    for p in 0..PARTITIONS {
        let link = connect(&broker, &format!("hol-sub-{p}"), Some(WINDOW));
        subscribe(&link, &format!("part/{p}"), QoS::AtMostOnce);
        let delivered = Arc::clone(&delivered);
        drains.push(std::thread::spawn(move || {
            let mut n = 0usize;
            while link.recv_frame().is_ok() {
                n += 1;
                delivered.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(WINDOW) {
                    // Per-batch processing cost: the consumer-side work
                    // (decode, apply) that makes real windows fill up.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }));
    }

    let expected = (PARTITIONS * msgs_per_pub) as u64;
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("hol-pub", p as u64), None);
            std::thread::spawn(move || {
                let topic = TopicName::new(format!("part/{p}")).unwrap();
                let frame = codec::encode(&Packet::Publish(Publish {
                    dup: false,
                    qos: QoS::AtMostOnce,
                    retain: false,
                    topic,
                    packet_id: None,
                    payload: Bytes::from_static(b"flow-controlled-payload-64b-x"),
                }))
                .unwrap();
                for _ in 0..msgs_per_pub {
                    link.send_frame(frame.clone()).unwrap();
                }
                link
            })
        })
        .collect();
    let _links: Vec<LinkEnd> = pubs.into_iter().map(|t| t.join().unwrap()).collect();
    while delivered.load(Ordering::Relaxed) < expected {
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = start.elapsed().as_secs_f64();
    drop(broker);
    for d in drains {
        let _ = d.join();
    }
    expected as f64 / wall
}

/// Retained set/clear churn at QoS 1 (round-trip per op): exercises the
/// snapshot index's single writer. Returns ops/s.
fn bench_retained(shards: usize, ops_per_pub: usize) -> f64 {
    let broker = broker_with(shards);
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("ret-pub", p as u64), None);
            std::thread::spawn(move || {
                for i in 0..ops_per_pub {
                    let clearing = i % 2 == 1;
                    let payload: &[u8] = if clearing { b"" } else { b"state" };
                    link.send_packet(&Packet::Publish(Publish {
                        dup: false,
                        qos: QoS::AtLeastOnce,
                        retain: true,
                        topic: TopicName::new(format!("ret/{p}/{}", i % 100)).unwrap(),
                        packet_id: Some((i % 60_000 + 1) as u16),
                        payload: Bytes::from_static(payload),
                    }))
                    .unwrap();
                    match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                        Packet::Puback(_) => {}
                        other => panic!("expected puback, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in pubs {
        t.join().unwrap();
    }
    let wall = start.elapsed().as_secs_f64();
    drop(broker);
    (PARTITIONS * ops_per_pub) as f64 / wall
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Raises the open-fd limit toward `want` (each TCP client in this
/// single-process bench costs two descriptors: the client socket and the
/// broker's accepted end). With `CAP_SYS_RESOURCE` the hard limit itself
/// is raised; otherwise the soft limit is pushed to the hard ceiling.
/// Returns the resulting soft limit.
fn raise_nofile(want: u64) -> u64 {
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        let raised = RLimit {
            cur: want,
            max: want.max(lim.max),
        };
        if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
            return want;
        }
        let clamped = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if setrlimit(RLIMIT_NOFILE, &clamped) == 0 {
            lim.max
        } else {
            lim.cur
        }
    }
}

/// Counts live threads of this process whose name starts with `prefix`
/// (via `/proc/self/task`; comm truncates at 15 bytes, so broker names in
/// the connection bench are kept short).
fn broker_threads(prefix: &str) -> usize {
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| std::fs::read_to_string(e.path().join("comm")).ok())
        .filter(|comm| comm.trim_end().starts_with(prefix))
        .count()
}

struct DurableCell {
    mode: &'static str,
    throughput: f64,
    wal_records: u64,
    wal_batches: u64,
    fsyncs: u64,
    wal_queue_hwm: u64,
    wal_stalls: u64,
}

/// Durability axis: `PARTITIONS` publishers blast QoS 1 publishes at
/// `subs` *persistent* (clean-session = false) QoS 1 subscribers, so
/// every delivery drives an inflight insert/remove record pair through
/// the write-behind WAL pipeline. The same traffic runs with
/// persistence disabled (the in-memory baseline the durable floor is
/// gated against), `OsCache`, and `GroupCommit`.
fn bench_durable(
    shards: usize,
    subs: usize,
    msgs_per_pub: usize,
    persistence: Persistence,
    mode: &'static str,
) -> DurableCell {
    let broker = Broker::start(BrokerConfig {
        name: format!("dur-{mode}"),
        shards,
        persistence,
        ..BrokerConfig::default()
    });
    let delivered = Arc::new(AtomicU64::new(0));
    let mut drains = Vec::new();
    for i in 0..subs {
        let link = connect_session(&broker, &format!("dsub-{i}"), false, None);
        subscribe(&link, "dur/all", QoS::AtLeastOnce);
        let delivered = Arc::clone(&delivered);
        drains.push(std::thread::spawn(move || {
            while let Ok(packet) = link.recv_packet() {
                if let Packet::Publish(p) = packet {
                    if let Some(id) = p.packet_id {
                        if link.send_packet(&Packet::Puback(id)).is_err() {
                            break;
                        }
                    }
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    let expected = (PARTITIONS * msgs_per_pub * subs) as u64;
    let topic = TopicName::new("dur/all").unwrap();
    let start = Instant::now();
    let pubs: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let link = connect(&broker, &pinned_id("dpub", p as u64), None);
            let topic = topic.clone();
            std::thread::spawn(move || {
                for i in 0..msgs_per_pub {
                    let frame = codec::encode(&Packet::Publish(Publish {
                        dup: false,
                        qos: QoS::AtLeastOnce,
                        retain: false,
                        topic: topic.clone(),
                        packet_id: Some((i % 60_000 + 1) as u16),
                        payload: Bytes::from_static(b"durable-round-update"),
                    }))
                    .unwrap();
                    link.send_frame(frame).unwrap();
                }
                link // pubacks from the broker drain into the link buffer
            })
        })
        .collect();
    let _links: Vec<LinkEnd> = pubs.into_iter().map(|t| t.join().unwrap()).collect();
    while delivered.load(Ordering::Relaxed) < expected {
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = broker.stats();
    drop(broker); // closes links, joins shards + persistence thread
    for d in drains {
        let _ = d.join();
    }
    DurableCell {
        mode,
        throughput: expected as f64 / wall,
        wal_records: stats.wal_records,
        wal_batches: stats.wal_batches,
        fsyncs: stats.fsyncs,
        wal_queue_hwm: stats.wal_queue_hwm,
        wal_stalls: stats.wal_stalls,
    }
}

/// Steady-state WAL writer allocation probe (the PR 8 data-plane probe
/// extended to the durable path): appends pre-built records through the
/// reused encode scratch, per-record and group-committed, and counts
/// allocations per round. After warmup the writer must be
/// allocation-free — every round's count is zero.
fn bench_wal_allocs_per_round(rounds: usize) -> (Vec<u64>, bool) {
    let dir = std::env::temp_dir().join(format!("sdflmq-bench-walalloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.log");
    let mut writer = wal::WalWriter::create(&path).unwrap();
    let records: Vec<WalRecord> = (0..64)
        .map(|i| WalRecord::InflightInsert {
            client: format!("probe-client-{}", i % 4),
            id: (i % 60_000 + 1) as u16,
            topic: TopicName::new("dur/all").unwrap(),
            qos: QoS::AtLeastOnce,
            retain: false,
            released: false,
            payload: Bytes::from_static(b"durable-round-update"),
        })
        .collect();
    let mut seq = 0u64;
    let round = |writer: &mut wal::WalWriter, seq: &mut u64| {
        for rec in &records[..32] {
            *seq += 1;
            writer.append(*seq, rec).unwrap();
        }
        *seq = writer.append_batch(*seq, &records[32..]).unwrap();
    };
    // Warmup: encode scratch and write buffer reach steady capacity.
    for _ in 0..2 {
        round(&mut writer, &mut seq);
    }
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let before = ALLOCS.load(Ordering::Relaxed);
        round(&mut writer, &mut seq);
        per_round.push(ALLOCS.load(Ordering::Relaxed) - before);
    }
    let flat = per_round.iter().all(|n| *n == 0);
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
    (per_round, flat)
}

struct ConnCell {
    shards: usize,
    connections: usize,
    broker_threads: usize,
    connect_ms: f64,
    round_ms: f64,
    round_msgs_per_s: f64,
}

/// Reads one complete MQTT packet from a blocking socket, buffering
/// partial frames in `buf`.
fn read_tcp_packet(stream: &mut std::net::TcpStream, buf: &mut Vec<u8>) -> Packet {
    use std::io::Read;
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Some(len)) = codec::frame_length(buf) {
            if buf.len() >= len {
                let frame: Vec<u8> = buf.drain(..len).collect();
                let (packet, _) = codec::decode(&Bytes::from(frame)).expect("valid frame");
                return packet;
            }
        }
        let n = stream.read(&mut chunk).expect("read from broker");
        assert!(n > 0, "broker closed connection mid-handshake");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Client-side driver for the connection bench, run as a **child
/// process** so the broker process carries only its own accepted sockets
/// (one process cannot hold both ends of 10k connections under a 20k fd
/// ceiling). Protocol on stdio: connect + subscribe everything, print
/// `READY <connect_ms>`, wait for `GO`, then read the round broadcast on
/// every socket (decoding frames, not counting bytes) and print `DONE`.
fn conn_driver(addr: std::net::SocketAddr, conns: usize, persistent: bool) -> ! {
    use std::io::{BufRead, Read, Write};
    raise_nofile(65_536);

    let hello = |id: &str| {
        let mut wire = codec::encode(&Packet::Connect(Connect {
            client_id: id.to_owned(),
            clean_session: !persistent,
            keep_alive: 0,
            will: None,
        }))
        .unwrap()
        .to_vec();
        wire.extend_from_slice(
            &codec::encode(&Packet::Subscribe(Subscribe {
                packet_id: 1,
                filters: vec![(TopicFilter::new("round/model").unwrap(), QoS::AtMostOnce)],
            }))
            .unwrap(),
        );
        wire
    };

    // CONNECT + SUBSCRIBE pipelined into a single round trip per client.
    let t0 = Instant::now();
    let mut socks: Vec<(std::net::TcpStream, Vec<u8>)> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        s.write_all(&hello(&format!("conn-{i}"))).unwrap();
        let mut buf = Vec::new();
        match read_tcp_packet(&mut s, &mut buf) {
            Packet::Connack(Connack { code, .. }) => assert_eq!(code as u8, 0),
            other => panic!("expected connack, got {other:?}"),
        }
        match read_tcp_packet(&mut s, &mut buf) {
            Packet::Suback(_) => {}
            other => panic!("expected suback, got {other:?}"),
        }
        socks.push((s, buf));
    }
    let connect_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    println!("READY {connect_ms}");
    std::io::stdout().flush().unwrap();

    let mut line = String::new();
    std::io::stdin().lock().read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "GO", "unexpected driver command");

    for (s, _) in &socks {
        s.set_nonblocking(true).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut got = vec![false; conns];
    let mut remaining = conns;
    let mut chunk = [0u8; 16384];
    while remaining > 0 {
        assert!(
            Instant::now() < deadline,
            "round broadcast incomplete: {remaining}/{conns} still waiting"
        );
        let mut progressed = false;
        for (i, (s, buf)) in socks.iter_mut().enumerate() {
            if got[i] {
                continue;
            }
            match s.read(&mut chunk) {
                Ok(0) => panic!("broker closed connection {i} mid-round"),
                Ok(n) => {
                    progressed = true;
                    buf.extend_from_slice(&chunk[..n]);
                    while let Ok(Some(len)) = codec::frame_length(buf) {
                        if buf.len() < len {
                            break;
                        }
                        let frame: Vec<u8> = buf.drain(..len).collect();
                        let (packet, _) = codec::decode(&Bytes::from(frame)).expect("valid frame");
                        if let Packet::Publish(p) = packet {
                            assert_eq!(p.payload.len(), 1024);
                            got[i] = true;
                            remaining -= 1;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => panic!("read error on connection {i}: {e}"),
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    println!("DONE");
    std::io::stdout().flush().unwrap();
    std::process::exit(0);
}

/// Connection-count axis over **real TCP**: `conns` clients (held by a
/// child process, see [`conn_driver`]) connect and subscribe to the round
/// topic, sit idle while the broker-side thread count is sampled, then a
/// publisher broadcasts one 1 KiB model update that every client must
/// receive and decode. The thread count is the headline: it must not grow
/// with `conns`.
fn bench_connections(shards: usize, conns: usize, persistence: Persistence) -> ConnCell {
    use std::io::{BufRead, BufReader, Write};
    let durable = persistence.enabled();
    // Short + unique: /proc comm truncates thread names at 15 bytes.
    let name = format!(
        "cx{shards}n{}{}",
        conns / 1000,
        if durable { "d" } else { "" }
    );
    let broker = Broker::start(BrokerConfig {
        name: name.clone(),
        shards,
        persistence,
        ..BrokerConfig::default()
    });
    let addr = broker.listen("127.0.0.1:0").unwrap();

    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .arg("--conn-driver")
        .arg(addr.to_string())
        .arg(conns.to_string())
        .args(durable.then_some("--persistent"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn connection driver");
    let mut child_in = child.stdin.take().unwrap();
    let mut child_out = BufReader::new(child.stdout.take().unwrap());

    let mut ready = String::new();
    child_out.read_line(&mut ready).unwrap();
    let connect_ms: f64 = ready
        .trim()
        .strip_prefix("READY ")
        .expect("driver READY line")
        .parse()
        .unwrap();

    // Idle phase: every client connected and subscribed, nothing moving.
    std::thread::sleep(Duration::from_millis(300));
    let threads = broker_threads(&name);
    assert_eq!(broker.stats().connections_current, conns as u64);

    // Round broadcast: one publisher, one 1 KiB update, `conns` receivers.
    let mut publisher = std::net::TcpStream::connect(addr).unwrap();
    publisher.set_nodelay(true).unwrap();
    publisher
        .write_all(
            &codec::encode(&Packet::Connect(Connect {
                client_id: "round-pub".to_owned(),
                clean_session: true,
                keep_alive: 0,
                will: None,
            }))
            .unwrap(),
        )
        .unwrap();
    let mut pub_buf = Vec::new();
    match read_tcp_packet(&mut publisher, &mut pub_buf) {
        Packet::Connack(_) => {}
        other => panic!("expected connack, got {other:?}"),
    }

    let t1 = Instant::now();
    child_in.write_all(b"GO\n").unwrap();
    child_in.flush().unwrap();
    publisher
        .write_all(
            &codec::encode(&Packet::Publish(Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain: false,
                topic: TopicName::new("round/model").unwrap(),
                packet_id: None,
                payload: Bytes::from(vec![0x5au8; 1024]),
            }))
            .unwrap(),
        )
        .unwrap();
    let mut done = String::new();
    child_out.read_line(&mut done).unwrap();
    assert_eq!(done.trim(), "DONE", "driver failed mid-round");
    let round_s = t1.elapsed().as_secs_f64();

    child.wait().unwrap();
    drop(publisher);
    broker.shutdown();
    ConnCell {
        shards,
        connections: conns,
        broker_threads: threads,
        connect_ms,
        round_ms: round_s * 1_000.0,
        round_msgs_per_s: conns as f64 / round_s,
    }
}

struct RecoveryCell {
    topics: usize,
    wal_bytes: u64,
    wal_replay_ms: f64,
    snapshot_bytes: u64,
    snapshot_replay_ms: f64,
}

/// Total size of the persistence files directly under `dir`.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Durable-broker recovery: seed `topics` retained topics through the WAL
/// (compaction disabled), time a replay from the raw log, then compact
/// into a snapshot and time the replay again. Reports both on-disk sizes.
fn bench_recovery(topics: usize) -> RecoveryCell {
    let dir = std::env::temp_dir().join(format!(
        "sdflmq-bench-recovery-{topics}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let durable = || {
        Broker::start(BrokerConfig {
            name: format!("bench-recovery-{topics}"),
            // Effectively disable threshold compaction so phase one
            // leaves a pure append log.
            persistence: Persistence::at(dir.clone()).snapshot_every(u64::MAX / 2),
            ..BrokerConfig::default()
        })
    };

    // Phase 1: four retained updates per topic, so the append log carries
    // the churn a snapshot folds away.
    {
        let broker = durable();
        let link = connect(&broker, "rec-pub", None);
        for i in 0..topics * 4 {
            let t = i % topics;
            link.send_packet(&Packet::Publish(Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: true,
                topic: TopicName::new(format!("rec/{}/{}", t / 100, t % 100)).unwrap(),
                packet_id: Some((i % 60_000 + 1) as u16),
                payload: Bytes::from(vec![(i / topics) as u8; 32]),
            }))
            .unwrap();
            match link.recv_packet_timeout(Duration::from_secs(30)).unwrap() {
                Packet::Puback(_) => {}
                other => panic!("expected puback, got {other:?}"),
            }
        }
    }

    let wal_bytes = dir_bytes(&dir);
    let start = Instant::now();
    let state = store::recover_dir(&dir, 1024);
    let wal_replay_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(state.retained.len(), topics, "WAL replay must be lossless");

    // Phase 2: recover, fold into a snapshot, measure the compacted form.
    {
        let broker = durable();
        broker.snapshot_now();
    }
    let snapshot_bytes = dir_bytes(&dir);
    let start = Instant::now();
    let state = store::recover_dir(&dir, 1024);
    let snapshot_replay_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(
        state.retained.len(),
        topics,
        "snapshot replay must be lossless"
    );

    let _ = std::fs::remove_dir_all(&dir);
    RecoveryCell {
        topics,
        wal_bytes,
        wal_replay_ms,
        snapshot_bytes,
        snapshot_replay_ms,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--conn-driver") {
        let addr = argv[i + 1].parse().expect("driver addr");
        let conns = argv[i + 2].parse().expect("driver conn count");
        let persistent = argv.iter().any(|a| a == "--persistent");
        conn_driver(addr, conns, persistent);
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let fanouts: &[usize] = if smoke {
        &[1, 100]
    } else {
        &[1, 10, 100, 1000]
    };
    let scale = if smoke { 10 } else { 1 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Broker core — {PARTITIONS} publishers, shards {shard_counts:?}, {cpus} CPUs\n");

    // --- CPU-bound fan-out matrix ---------------------------------------
    println!("fanout matrix (unbounded links, QoS 0):");
    println!("shards  fanout  msgs/s      p50-us   p99-us");
    let mut fanout_cells = Vec::new();
    for &shards in shard_counts {
        for &fanout in fanouts {
            let msgs_per_pub = (match fanout {
                1 => 12_000,
                10 => 2_000,
                100 => 250,
                _ => 25,
            }) / scale;
            let cell = bench_fanout(shards, fanout, msgs_per_pub.max(5));
            println!(
                "{:>6}  {:>6}  {:>10.0}  {:>7.0}  {:>7.0}",
                cell.shards, cell.fanout, cell.throughput, cell.p50_us, cell.p99_us
            );
            fanout_cells.push(cell);
        }
    }

    // --- Flow-controlled fan-out (head-of-line isolation) ---------------
    println!("\nflow-controlled fan-out (bounded windows, throttled consumers):");
    println!("shards  msgs/s");
    let hol_msgs = 3_000 / scale;
    let mut hol: Vec<(usize, f64)> = Vec::new();
    for &shards in shard_counts {
        let rate = bench_hol(shards, hol_msgs);
        println!("{shards:>6}  {rate:>10.0}");
        hol.push((shards, rate));
    }

    // --- Retained churn --------------------------------------------------
    println!("\nretained churn (QoS 1 set/clear):");
    println!("shards  ops/s");
    let ret_ops = 1_500 / scale;
    let mut retained: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 4] {
        let rate = bench_retained(shards, ret_ops);
        println!("{shards:>6}  {rate:>10.0}");
        retained.push((shards, rate));
    }

    // --- Durability axis (write-behind WAL) ------------------------------
    // Same QoS 1 round traffic against an in-memory broker and durable
    // brokers under each fsync policy. FL round traffic is bursty: a
    // round of model-update publishes, then client-side training think
    // time during which the write-behind queue drains. The durable
    // brokers are therefore configured with a WAL queue sized to absorb
    // one full round (the deployment-tuning knob `queue_capacity`), so
    // the cell measures the shard-side enqueue cost — the thing the
    // write-behind pipeline is supposed to make cheap — rather than
    // sustained-saturation backpressure. Gated: durable OsCache round
    // throughput >= 0.85x the in-memory baseline (0.60x single-core).
    println!("\ndurability axis (QoS 1 persistent subscribers, 4 shards):");
    println!("mode              msgs/s  wal-recs  batches  fsyncs  q-hwm  stalls");
    let dur_subs = 16;
    let dur_msgs = (2_400 / scale).max(40);
    // Two WAL records (inflight insert + remove) per QoS 1 delivery,
    // spread over 4 shard streams; headroom of 2x on top.
    let dur_queue = PARTITIONS * dur_msgs * dur_subs;
    let dur_dir = |mode: &str| {
        let dir = std::env::temp_dir().join(format!(
            "sdflmq-bench-durability-{mode}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    // Best-of-3 per mode: the cells are sub-second, so a single run is
    // at the mercy of scheduler noise (especially on one core, where
    // the persistence thread time-slices against the shards).
    let best_of = |persistence: &dyn Fn() -> Persistence, mode: &'static str| {
        (0..3)
            .map(|_| bench_durable(4, dur_subs, dur_msgs, persistence(), mode))
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
            .unwrap()
    };
    let durability_cells = [
        best_of(&Persistence::disabled, "disabled"),
        best_of(
            &|| Persistence::at(dur_dir("oscache")).queue_capacity(dur_queue),
            "oscache",
        ),
        best_of(
            &|| {
                Persistence::at(dur_dir("groupcommit"))
                    .queue_capacity(dur_queue)
                    .durability(Durability::GroupCommit {
                        interval: Duration::from_millis(2),
                    })
            },
            "group_commit",
        ),
    ];
    for c in &durability_cells {
        println!(
            "{:<12}  {:>10.0}  {:>8}  {:>7}  {:>6}  {:>5}  {:>6}",
            c.mode,
            c.throughput,
            c.wal_records,
            c.wal_batches,
            c.fsyncs,
            c.wal_queue_hwm,
            c.wal_stalls
        );
    }
    for mode in ["oscache", "groupcommit"] {
        let _ = std::fs::remove_dir_all(dur_dir(mode));
    }
    let durable_floor = durability_cells[1].throughput / durability_cells[0].throughput;
    // The pipeline's claim is that WAL work runs *off* the shard
    // threads: with a spare core the persistence thread overlaps the
    // round and durable throughput tracks the in-memory baseline
    // (floor 0.85x). On a single-core host there is nothing to overlap
    // with — every WAL byte encoded and written is CPU taken from the
    // shards — so the gate instead bounds the strictly-additive cost
    // at 0.60x.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let durable_floor_required = if host_cores > 1 { 0.85 } else { 0.60 };
    println!(
        "durable OsCache floor: {durable_floor:.2}x in-memory (required {durable_floor_required:.2}x on {host_cores} core(s))"
    );
    assert!(
        durability_cells[1].wal_records > 0 && durability_cells[1].wal_batches > 0,
        "durable cells must drive records through the write-behind pipeline"
    );
    assert!(
        durability_cells[2].fsyncs >= 1,
        "GroupCommit must issue at least one coalesced fsync"
    );
    assert!(
        durable_floor >= durable_floor_required,
        "write-behind WAL must keep durable (OsCache) round throughput >= \
         {durable_floor_required:.2}x the in-memory baseline (got {durable_floor:.2}x)"
    );

    // Steady-state WAL writer allocation probe (PR 8 probe, durable path).
    let (wal_allocs, wal_allocs_flat) = bench_wal_allocs_per_round(if smoke { 4 } else { 8 });
    println!(
        "WAL writer allocations/round (reused encode scratch): {wal_allocs:?} \
         flat-zero={wal_allocs_flat}"
    );
    assert!(
        wal_allocs_flat,
        "steady-state WAL appends must be allocation-free: {wal_allocs:?}"
    );

    // --- Durable recovery -------------------------------------------------
    println!("\nrecovery (WAL replay vs compacted snapshot):");
    println!("topics  wal-KiB  wal-ms   snap-KiB  snap-ms");
    let recovery_sizes: &[usize] = if smoke {
        &[100, 1_000]
    } else {
        &[1_000, 10_000]
    };
    let mut recovery = Vec::new();
    for &topics in recovery_sizes {
        let cell = bench_recovery(topics);
        println!(
            "{:>6}  {:>7.1}  {:>6.2}  {:>8.1}  {:>7.2}",
            cell.topics,
            cell.wal_bytes as f64 / 1024.0,
            cell.wal_replay_ms,
            cell.snapshot_bytes as f64 / 1024.0,
            cell.snapshot_replay_ms
        );
        recovery.push(cell);
    }

    // --- Connection scaling (real TCP reactor) ---------------------------
    let nofile = raise_nofile(65_536);
    // Clients live in a child process, so each side holds one fd per
    // connection; leave headroom for everything else in the process.
    let fd_budget = nofile.saturating_sub(512) as usize;
    let conn_counts: &[usize] = if smoke {
        &[200, 1_000]
    } else {
        &[1_000, 10_000]
    };
    const CONN_SHARDS: usize = 4;
    println!("\nconnection scaling (real TCP, {CONN_SHARDS} shards, fd limit {nofile}):");
    println!(" conns  threads  connect-ms  round-ms  deliveries/s");
    let mut conn_cells = Vec::new();
    for &want in conn_counts {
        let conns = want.min(fd_budget);
        if conns < want {
            println!("(fd budget clamps {want} -> {conns})");
        }
        let cell = bench_connections(CONN_SHARDS, conns, Persistence::disabled());
        println!(
            "{:>6}  {:>7}  {:>10.0}  {:>8.1}  {:>12.0}",
            cell.connections,
            cell.broker_threads,
            cell.connect_ms,
            cell.round_ms,
            cell.round_msgs_per_s
        );
        assert!(
            cell.broker_threads <= CONN_SHARDS + 4,
            "broker-side threads must stay O(shards): {} threads at {} \
             connections exceeds shards + 4 = {}",
            cell.broker_threads,
            cell.connections,
            CONN_SHARDS + 4
        );
        conn_cells.push(cell);
    }

    // Durability on the connection axis: persistent sessions push a
    // SessionCreate + Subscribe record pair per client through the
    // write-behind pipeline during the connect storm; the round
    // broadcast itself is QoS 0 and WAL-free.
    let durable_conns = conn_counts[0].min(fd_budget);
    let durable_conn_dir =
        std::env::temp_dir().join(format!("sdflmq-bench-durconn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_conn_dir);
    let durable_conn_cell = bench_connections(
        CONN_SHARDS,
        durable_conns,
        Persistence::at(durable_conn_dir.clone()),
    );
    let _ = std::fs::remove_dir_all(&durable_conn_dir);
    println!(
        "{:>6}  {:>7}  {:>10.0}  {:>8.1}  {:>12.0}  (durable OsCache)",
        durable_conn_cell.connections,
        durable_conn_cell.broker_threads,
        durable_conn_cell.connect_ms,
        durable_conn_cell.round_ms,
        durable_conn_cell.round_msgs_per_s
    );
    assert!(
        durable_conn_cell.broker_threads <= CONN_SHARDS + 4,
        "the persistence thread must not count against the shard-thread \
         bound (it is not a broker event loop): {} threads at {} durable \
         connections exceeds shards + 4 = {}",
        durable_conn_cell.broker_threads,
        durable_conn_cell.connections,
        CONN_SHARDS + 4
    );

    // --- Aggregate + acceptance gates ------------------------------------
    let rate_at =
        |v: &[(usize, f64)], s: usize| v.iter().find(|(n, _)| *n == s).map(|(_, r)| *r).unwrap();
    let hol_speedup = rate_at(&hol, 4) / rate_at(&hol, 1);
    let cpu_cell = |shards: usize| {
        fanout_cells
            .iter()
            .find(|c| c.shards == shards && c.fanout == 100)
            .map(|c| c.throughput)
            .unwrap_or(0.0)
    };
    let cpu_speedup = cpu_cell(4) / cpu_cell(1).max(1.0);
    println!(
        "\naggregate publish-fanout throughput (flow-controlled): \
         4 shards = {:.2}x 1 shard (cpu-bound fanout-100: {:.2}x, {} CPUs)",
        hol_speedup, cpu_speedup, cpus
    );
    assert!(
        hol_speedup >= 2.0,
        "sharded stall isolation must deliver >= 2x aggregate fan-out \
         throughput at 4 shards vs 1 (got {hol_speedup:.2}x)"
    );

    // Batched cross-shard delivery gate: one coalesced Deliver batch per
    // target shard per mailbox burst must keep wide-fanout completion
    // latency at the max shard count within 1.5x of the single-shard
    // reference (per-message hops would pay ~fanout channel sends and
    // wakes per publish and blow far past this on one core).
    let probe_fanout = if smoke { 200 } else { 1_000 };
    let probe_rounds = if smoke { 20 } else { 50 };
    let max_shards = *shard_counts.last().unwrap();
    let probe_p1 = bench_fanout_latency(1, probe_fanout, probe_rounds);
    let probe_pn = bench_fanout_latency(max_shards, probe_fanout, probe_rounds);
    println!(
        "cross-shard batching probe: fanout-{probe_fanout} completion p50 \
         {probe_p1:.0}us at 1 shard, {probe_pn:.0}us at {max_shards} shards \
         ({:.2}x)",
        probe_pn / probe_p1
    );
    assert!(
        probe_pn <= probe_p1 * 1.5,
        "batched cross-shard delivery must keep {max_shards}-shard \
         fanout-{probe_fanout} completion p50 within 1.5x of 1 shard \
         (got {probe_pn:.0}us vs {probe_p1:.0}us)"
    );

    let fanout_json: Vec<Json> = fanout_cells
        .iter()
        .map(|c| {
            Json::object([
                ("shards", Json::num(c.shards as f64)),
                ("fanout", Json::num(c.fanout as f64)),
                ("throughput_msgs_per_s", Json::num(c.throughput)),
                ("p50_us", Json::num(c.p50_us)),
                ("p99_us", Json::num(c.p99_us)),
            ])
        })
        .collect();
    let doc = Json::object([
        ("smoke", Json::Bool(smoke)),
        ("host_cpus", Json::num(cpus as f64)),
        ("publishers", Json::num(PARTITIONS as f64)),
        ("fanout_matrix", Json::Array(fanout_json)),
        (
            "flow_controlled",
            Json::object(hol.iter().map(|(s, r)| (format!("{s}"), Json::num(*r)))),
        ),
        (
            "retained_churn_ops_per_s",
            Json::object(
                retained
                    .iter()
                    .map(|(s, r)| (format!("{s}"), Json::num(*r))),
            ),
        ),
        (
            "recovery",
            Json::Array(
                recovery
                    .iter()
                    .map(|c| {
                        Json::object([
                            ("retained_topics", Json::num(c.topics as f64)),
                            ("wal_bytes", Json::num(c.wal_bytes as f64)),
                            ("wal_replay_ms", Json::num(c.wal_replay_ms)),
                            ("snapshot_bytes", Json::num(c.snapshot_bytes as f64)),
                            ("snapshot_replay_ms", Json::num(c.snapshot_replay_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fanout_latency_probe",
            Json::object([
                ("fanout".to_owned(), Json::num(probe_fanout as f64)),
                ("p50_us_1_shard".to_owned(), Json::num(probe_p1)),
                (format!("p50_us_{max_shards}_shards"), Json::num(probe_pn)),
                ("ratio".to_owned(), Json::num(probe_pn / probe_p1)),
            ]),
        ),
        ("open_fd_limit", Json::num(nofile as f64)),
        (
            "connection_scaling",
            Json::Array(
                conn_cells
                    .iter()
                    .map(|c| {
                        Json::object([
                            ("connections", Json::num(c.connections as f64)),
                            ("shards", Json::num(c.shards as f64)),
                            ("broker_threads", Json::num(c.broker_threads as f64)),
                            ("connect_ms", Json::num(c.connect_ms)),
                            ("round_broadcast_ms", Json::num(c.round_ms)),
                            ("round_deliveries_per_s", Json::num(c.round_msgs_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "durability",
            Json::object([
                (
                    "round_cells",
                    Json::Array(
                        durability_cells
                            .iter()
                            .map(|c| {
                                Json::object([
                                    ("mode", Json::str(c.mode)),
                                    ("throughput_msgs_per_s", Json::num(c.throughput)),
                                    ("wal_records", Json::num(c.wal_records as f64)),
                                    ("wal_batches", Json::num(c.wal_batches as f64)),
                                    ("fsyncs", Json::num(c.fsyncs as f64)),
                                    ("wal_queue_hwm", Json::num(c.wal_queue_hwm as f64)),
                                    ("wal_stalls", Json::num(c.wal_stalls as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("oscache_floor_vs_memory", Json::num(durable_floor)),
                ("floor_required", Json::num(durable_floor_required)),
                ("host_cores", Json::num(host_cores as f64)),
                (
                    "connection_cell_oscache",
                    Json::object([
                        (
                            "connections",
                            Json::num(durable_conn_cell.connections as f64),
                        ),
                        (
                            "broker_threads",
                            Json::num(durable_conn_cell.broker_threads as f64),
                        ),
                        ("connect_ms", Json::num(durable_conn_cell.connect_ms)),
                        ("round_broadcast_ms", Json::num(durable_conn_cell.round_ms)),
                    ]),
                ),
                (
                    "wal_writer_allocs_per_round",
                    Json::Array(wal_allocs.iter().map(|n| Json::num(*n as f64)).collect()),
                ),
            ]),
        ),
        (
            "aggregate",
            Json::object([
                (
                    "publish_fanout_throughput_msgs_per_s",
                    Json::object(hol.iter().map(|(s, r)| (format!("{s}"), Json::num(*r)))),
                ),
                ("speedup_4_shards_vs_1", Json::num(hol_speedup)),
                ("cpu_bound_fanout100_speedup_4_vs_1", Json::num(cpu_speedup)),
                ("durable_oscache_floor_vs_memory", Json::num(durable_floor)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_broker.json", doc.to_string_compact()).expect("write BENCH_broker.json");
    println!("wrote BENCH_broker.json (flow-controlled 4v1 speedup {hol_speedup:.2}x)");
}
