//! Figure 8 reproduction: total processing delay of 10 FL rounds vs number
//! of contributing clients, for 2-layer hierarchical aggregation (30%
//! aggregators) against central aggregation.
//!
//! The paper measured wall-clock delay on a real testbed; this harness
//! reproduces the experiment in deterministic virtual time (DESIGN.md
//! substitution 3) with the same mechanism under test: a single aggregator
//! must serialize the ingest of N parameter uploads on its access link and
//! hold an N-deep parameter stack in memory, while hierarchical
//! aggregation spreads both across cluster heads.
//!
//! Expected shape (paper §VI): both curves grow with client count, the two
//! stay close, and the gap moves in hierarchical aggregation's favour as N
//! grows.
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin fig8
//! ```

use sdflmq_core::{simulate, MemoryAware, SimConfig, Topology};

const CLIENT_COUNTS: [usize; 4] = [5, 10, 15, 20];

fn run(num_clients: usize, topology: Topology) -> (f64, f64, f64) {
    let report = simulate(
        SimConfig::builder(num_clients, topology)
            .optimizer(Box::new(MemoryAware))
            .build(),
    );
    let train: f64 = report
        .rounds
        .iter()
        .map(|r| r.train_span.as_secs_f64())
        .sum();
    let agg: f64 = report
        .rounds
        .iter()
        .map(|r| r.agg_span.as_secs_f64() - r.train_span.as_secs_f64())
        .sum();
    (report.total.as_secs_f64(), train, agg)
}

fn fmt_mmss(secs: f64) -> String {
    let m = (secs / 60.0).floor() as u64;
    let s = secs - m as f64 * 60.0;
    format!("{m}:{s:05.2}")
}

fn main() {
    println!("# Fig. 8 — total processing delay of 10 FL rounds (virtual time)");
    println!("# hier: 2-layer hierarchical SDFL, 30% aggregators, memory-aware placement");
    println!("# cent: central aggregation (single aggregator)");
    println!(
        "{:>8} | {:>12} {:>12} | {:>12} {:>12} | {:>9}",
        "clients", "hier total", "(mm:ss)", "cent total", "(mm:ss)", "cent/hier"
    );
    let mut prev_ratio = f64::NEG_INFINITY;
    let mut ratios = Vec::new();
    for &n in &CLIENT_COUNTS {
        let (hier, _, _) = run(
            n,
            Topology::Hierarchical {
                aggregator_ratio: 0.3,
            },
        );
        let (cent, _, _) = run(n, Topology::Central);
        let ratio = cent / hier;
        println!(
            "{n:>8} | {hier:>12.2} {:>12} | {cent:>12.2} {:>12} | {ratio:>9.3}",
            fmt_mmss(hier),
            fmt_mmss(cent)
        );
        ratios.push(ratio);
        prev_ratio = prev_ratio.max(ratio);
    }
    println!(
        "\nshape check: delay grows with N for both topologies; central/hierarchical \
         ratio at N=20 ({:.3}) >= ratio at N=5 ({:.3}): {}",
        ratios[ratios.len() - 1],
        ratios[0],
        ratios[ratios.len() - 1] >= ratios[0]
    );

    // Per-phase breakdown at the largest scale, for the discussion section.
    println!("\n# phase breakdown at N=20 (sums over 10 rounds, seconds)");
    println!("{:>6} | {:>10} {:>14}", "topo", "training", "agg+transfer");
    for (name, topo) in [
        (
            "hier",
            Topology::Hierarchical {
                aggregator_ratio: 0.3,
            },
        ),
        ("cent", Topology::Central),
    ] {
        let (total, train, agg) = run(20, topo);
        println!(
            "{name:>6} | {train:>10.2} {:>14.2}   (total {total:.2})",
            agg
        );
    }
}
