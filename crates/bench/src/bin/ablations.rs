//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Subcommands (run all with no argument):
//!
//! * `ratio`     — aggregator-ratio sweep at 20 clients (ABL-1)
//! * `optimizer` — load-balancer policies under memory drift (ABL-2)
//! * `payload`   — LZSS compression and chunk-size sweep (ABL-3)
//! * `bridge`    — single broker vs bridged regions (ABL-4)
//! * `robust`    — FedAvg vs median vs trimmed mean under label-flip
//!   poisoning (ABL-5)
//!
//! ```text
//! cargo run --release -p sdflmq-bench --bin ablations -- [subcommand]
//! ```

use sdflmq_core::{
    simulate, AggregationMethod, CoordinateMedian, FedAvg, GeneticConfig, GeneticPlacement,
    MemoryAware, RandomPlacement, RoundRobin, SimConfig, StaticOrder, Topology, TrimmedMean,
};
use sdflmq_dataset::{Split, SynthDigits};
use sdflmq_mqttfc::batching::{split, BatchConfig};
use sdflmq_nn::{evaluate, train, Matrix, Mlp, MlpSpec, Sgd, TrainConfig};
use sdflmq_sim::SystemSpec;
use std::time::Duration as StdDuration;

fn ratio_sweep() {
    println!("\n## ABL-1: aggregator ratio sweep (20 clients, 10 rounds, virtual time)");
    println!(
        "{:>7} | {:>10} | {:>12}",
        "ratio", "total (s)", "aggregators"
    );
    for ratio in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let topo = Topology::Hierarchical {
            aggregator_ratio: ratio,
        };
        let aggs = topo.aggregator_count(20);
        let report = simulate(
            SimConfig::builder(20, topo)
                .optimizer(Box::new(MemoryAware))
                .build(),
        );
        println!(
            "{ratio:>7.1} | {:>10.2} | {aggs:>12}",
            report.total.as_secs_f64()
        );
    }
}

fn optimizer_sweep() {
    println!("\n## ABL-2: role-optimizer policies (15 clients, 10 rounds, drifting memory)");
    println!(
        "{:>12} | {:>10} | {:>16}",
        "policy", "total (s)", "role changes/rnd"
    );
    let policies: Vec<(&str, Box<dyn sdflmq_core::RoleOptimizer>)> = vec![
        ("static", Box::new(StaticOrder)),
        ("round_robin", Box::new(RoundRobin)),
        ("memory", Box::new(MemoryAware)),
        ("random", Box::new(RandomPlacement::new(3))),
    ];
    for (name, optimizer) in policies {
        let report = simulate(
            SimConfig::builder(
                15,
                Topology::Hierarchical {
                    aggregator_ratio: 0.3,
                },
            )
            .optimizer(optimizer)
            .build(),
        );
        let changes: usize = report.rounds.iter().skip(1).map(|r| r.rearranged).sum();
        println!(
            "{name:>12} | {:>10.2} | {:>16.1}",
            report.total.as_secs_f64(),
            changes as f64 / (report.rounds.len() - 1).max(1) as f64
        );
    }
}

fn payload_sweep() {
    println!("\n## ABL-3: batching + compression on an MLP parameter payload");
    // A realistically-shaped payload: trained-ish parameter bytes.
    let spec = MlpSpec::mnist_mlp();
    let model = Mlp::new(spec, 9);
    let payload = sdflmq_nn::serialize_params(model.params());
    println!(
        "raw payload: {} bytes ({} params)",
        payload.len(),
        model.param_count()
    );
    println!(
        "{:>10} {:>12} | {:>8} | {:>12} | {:>14}",
        "chunk", "compress", "chunks", "wire bytes", "vs raw"
    );
    for chunk_size in [16 * 1024usize, 64 * 1024, 256 * 1024] {
        for compress in [false, true] {
            let cfg = BatchConfig {
                chunk_size,
                compress,
                stale_after: StdDuration::from_secs(60),
            };
            let frames = split(&payload, 1, &cfg);
            let wire: usize = frames.iter().map(|f| f.len()).sum();
            println!(
                "{:>10} {:>12} | {:>8} | {:>12} | {:>13.1}%",
                chunk_size,
                compress,
                frames.len(),
                wire,
                100.0 * wire as f64 / payload.len() as f64
            );
        }
    }
    println!("(raw f32 parameters have near-random mantissas: LZSS stores them verbatim)");

    // The classic FL remedy: 8-bit uniform quantization before transport.
    // Quantized tensors have long runs and small alphabets — they compress.
    let params = model.params();
    let (lo, hi) = params
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let scale = (hi - lo).max(1e-12) / 255.0;
    let quantized: Vec<u8> = params.iter().map(|&v| ((v - lo) / scale) as u8).collect();
    let cfg = BatchConfig {
        chunk_size: 64 * 1024,
        compress: true,
        stale_after: StdDuration::from_secs(60),
    };
    let frames = split(&quantized, 2, &cfg);
    let wire: usize = frames.iter().map(|f| f.len()).sum();
    println!(
        "8-bit quantized + LZSS: {} bytes on the wire ({:.1}% of the raw f32 payload)",
        wire,
        100.0 * wire as f64 / payload.len() as f64
    );
}

fn bridge_sweep() {
    println!("\n## ABL-4: broker bridging (20 clients, 10 rounds, virtual time)");
    println!("{:>8} | {:>10}", "regions", "total (s)");
    for regions in [1u32, 2, 4] {
        let report = simulate(
            SimConfig::builder(
                20,
                Topology::Hierarchical {
                    aggregator_ratio: 0.3,
                },
            )
            .optimizer(Box::new(MemoryAware))
            .regions(regions)
            .build(),
        );
        println!("{regions:>8} | {:>10.2}", report.total.as_secs_f64());
    }
    println!("(bridged regions pay a per-hop latency but keep per-broker load lower;");
    println!(" the virtual-time model charges only the hop here — broker CPU contention");
    println!(" is visible in the threaded stack's broker stats instead)");
}

fn robust_sweep() {
    println!("\n## ABL-5: aggregation robustness under label-flip poisoning");
    let clients = 10usize;
    let samples = 200usize;
    let gen = SynthDigits::new(11);
    let train_ds = gen.generate(Split::Train, clients * samples);
    let test = gen.generate(Split::Test, 1000);
    let test_x = Matrix::from_vec(test.len(), 784, test.images.clone());
    let spec = MlpSpec {
        input: 784,
        hidden: vec![64],
        output: 10,
    };

    // Train each client once on its slice; poisoned clients rotate labels.
    let train_client = |ci: usize, poisoned: bool| -> Vec<f32> {
        let idx: Vec<usize> = (ci * samples..(ci + 1) * samples).collect();
        let subset = train_ds.subset(&idx);
        let labels: Vec<usize> = if poisoned {
            subset.labels.iter().map(|&l| (l + 1) % 10).collect()
        } else {
            subset.labels.clone()
        };
        let x = Matrix::from_vec(subset.len(), 784, subset.images.clone());
        let mut model = Mlp::new(spec.clone(), 5);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        train(
            &mut model,
            &mut opt,
            &x,
            &labels,
            &TrainConfig {
                batch_size: 32,
                epochs: 4,
                shuffle_seed: ci as u64,
            },
        );
        model.params().to_vec()
    };

    println!(
        "{:>9} | {:>8} {:>8} {:>13}",
        "poisoned", "fedavg", "median", "trimmed(0.2)"
    );
    for poisoned in [0usize, 1, 2, 3, 4] {
        let locals: Vec<Vec<f32>> = (0..clients)
            .map(|ci| train_client(ci, ci < poisoned))
            .collect();
        let contributions: Vec<(&[f32], u64)> = locals
            .iter()
            .map(|p| (p.as_slice(), samples as u64))
            .collect();
        let mut row = format!("{poisoned:>9} |");
        for method in [
            Box::new(FedAvg) as Box<dyn AggregationMethod>,
            Box::new(CoordinateMedian),
            Box::new(TrimmedMean::new(0.2)),
        ] {
            let agg = method.aggregate(&contributions).unwrap();
            let mut model = Mlp::new(spec.clone(), 5);
            model.set_params(&agg);
            let acc = evaluate(&model, &test_x, &test.labels) * 100.0;
            row.push_str(&format!(" {acc:>8.2}"));
        }
        println!("{row}");
    }
}

fn genetic_sweep() {
    println!("\n## ABL-6: black-box genetic placement (paper future work) - heterogeneous fleet");
    println!("16 clients (1 large / 1 medium / 2 small, cycled), 120 rounds, stationary loads");
    let run = |optimizer: Box<dyn sdflmq_core::RoleOptimizer>| -> Vec<f64> {
        let report = simulate(
            SimConfig::builder(
                16,
                Topology::Hierarchical {
                    aggregator_ratio: 0.3,
                },
            )
            .optimizer(optimizer)
            .rounds(120)
            .drift(false) // stationary fleet: GA fitness stays comparable
            // Light local training plus a large model: the round is
            // dominated by aggregation, and an aggregator whose parameter
            // stack spills its free memory pays the thrash penalty (paper
            // s-III.E.6) - placement is the lever under test.
            .samples_per_client(50)
            .local_epochs(1)
            .model_params(2_000_000)
            .scale_bandwidth_with_cpu(true)
            .system_mix(vec![
                SystemSpec::edge_large(),
                SystemSpec::edge_medium(),
                SystemSpec::edge_small(),
                SystemSpec::edge_small(),
            ])
            .build(),
        );
        report
            .rounds
            .iter()
            .map(|r| r.round_span.as_secs_f64())
            .collect()
    };
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    println!(
        "{:>12} | {:>15} | {:>15} | {:>10}",
        "policy", "rounds 1-20 (s)", "rounds 101-120", "learned?"
    );
    for (name, optimizer) in [
        (
            "genetic",
            Box::new(GeneticPlacement::new(GeneticConfig::default()))
                as Box<dyn sdflmq_core::RoleOptimizer>,
        ),
        ("memory", Box::new(MemoryAware)),
        ("random", Box::new(RandomPlacement::new(9))),
    ] {
        let spans = run(optimizer);
        let early = mean(&spans[..20]);
        let late = mean(&spans[spans.len() - 20..]);
        println!(
            "{name:>12} | {early:>15.2} | {late:>15.2} | {:>10}",
            if late < early * 0.98 { "improved" } else { "-" }
        );
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("ratio") => ratio_sweep(),
        Some("optimizer") => optimizer_sweep(),
        Some("payload") => payload_sweep(),
        Some("bridge") => bridge_sweep(),
        Some("robust") => robust_sweep(),
        Some("genetic") => genetic_sweep(),
        Some(other) => {
            eprintln!("unknown ablation {other:?}; running all");
            run_all();
        }
        None => run_all(),
    }
}

fn run_all() {
    ratio_sweep();
    optimizer_sweep();
    payload_sweep();
    bridge_sweep();
    robust_sweep();
    genetic_sweep();
}
