//! Shared helpers for the SDFLMQ benchmark harness live in the bin/ and benches/ targets.
