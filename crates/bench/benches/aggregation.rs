//! Aggregation-method scaling: cost per round at the aggregator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdflmq_core::{AggregationMethod, CoordinateMedian, FedAvg, TrimmedMean};
use std::hint::black_box;

const PARAMS: usize = 109_386; // the paper's MLP

fn contributions(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..PARAMS)
                .map(|j| ((i * 31 + j) % 97) as f32 * 0.01 - 0.5)
                .collect()
        })
        .collect()
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    for n in [2usize, 5, 10, 20] {
        let inputs = contributions(n);
        let refs: Vec<(&[f32], u64)> = inputs.iter().map(|v| (v.as_slice(), 100)).collect();
        group.throughput(Throughput::Elements((n * PARAMS) as u64));
        group.bench_with_input(BenchmarkId::new("fedavg", n), &n, |b, _| {
            b.iter(|| black_box(FedAvg.aggregate(black_box(&refs)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("median", n), &n, |b, _| {
            b.iter(|| black_box(CoordinateMedian.aggregate(black_box(&refs)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("trimmed", n), &n, |b, _| {
            let method = TrimmedMean::new(0.2);
            b.iter(|| black_box(method.aggregate(black_box(&refs)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
