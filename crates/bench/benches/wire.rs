//! Wire-path micro-benchmarks: MQTT codec, LZSS compression, batching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdflmq_mqtt::codec;
use sdflmq_mqtt::packet::{Packet, Publish};
use sdflmq_mqtt::topic::TopicName;
use sdflmq_mqttfc::batching::{split, BatchConfig};
use sdflmq_mqttfc::compress::{compress_auto, decompress_auto};
use sdflmq_nn::{Mlp, MlpSpec};
use std::hint::black_box;

fn param_payload() -> Vec<u8> {
    let model = Mlp::new(MlpSpec::mnist_mlp(), 3);
    sdflmq_nn::serialize_params(model.params())
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqtt_codec");
    for size in [128usize, 4_096, 65_536] {
        let packet = Packet::Publish(Publish::simple(
            TopicName::new("sdflmq/session/s1/role/agg0").unwrap(),
            vec![0xA5u8; size],
        ));
        let encoded = codec::encode(&packet).unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, _| {
            b.iter(|| black_box(codec::encode(black_box(&packet)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &size, |b, _| {
            b.iter(|| black_box(codec::decode(black_box(&encoded)).unwrap()));
        });
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let payload = param_payload();
    let compressed = compress_auto(&payload);
    let mut group = c.benchmark_group("lzss");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("compress_mlp_params", |b| {
        b.iter(|| black_box(compress_auto(black_box(&payload))));
    });
    group.bench_function("decompress_mlp_params", |b| {
        b.iter(|| black_box(decompress_auto(black_box(&compressed)).unwrap()));
    });
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    let payload = param_payload();
    let mut group = c.benchmark_group("batching");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for compress in [false, true] {
        let cfg = BatchConfig {
            chunk_size: 64 * 1024,
            compress,
            ..BatchConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("split_64k", compress),
            &compress,
            |b, _| {
                b.iter(|| black_box(split(black_box(&payload), 1, &cfg).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_compress, bench_batching);
criterion_main!(benches);
