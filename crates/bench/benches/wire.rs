//! Wire-path micro-benchmarks: MQTT codec, LZSS compression, batching,
//! and the JSON-vs-binary control-plane codecs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdflmq_core::messages::{CtrlMsg, JoinRequest, RoundDone, StatsMsg};
use sdflmq_core::{
    ClientId, ControlMsg, Envelope, ModelId, MsgKind, Position, PreferredRole, Role, RoleSpec,
    SessionId, WireVersion,
};
use sdflmq_mqtt::codec;
use sdflmq_mqtt::packet::{Packet, Publish};
use sdflmq_mqtt::topic::TopicName;
use sdflmq_mqttfc::batching::{split, BatchConfig};
use sdflmq_mqttfc::compress::{compress_auto, decompress_auto};
use sdflmq_nn::{Mlp, MlpSpec};
use std::hint::black_box;

fn param_payload() -> Vec<u8> {
    let model = Mlp::new(MlpSpec::mnist_mlp(), 3);
    sdflmq_nn::serialize_params(model.params())
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqtt_codec");
    for size in [128usize, 4_096, 65_536] {
        let packet = Packet::Publish(Publish::simple(
            TopicName::new("sdflmq/session/s1/role/agg0").unwrap(),
            vec![0xA5u8; size],
        ));
        let encoded = codec::encode(&packet).unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, _| {
            b.iter(|| black_box(codec::encode(black_box(&packet)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &size, |b, _| {
            b.iter(|| black_box(codec::decode(black_box(&encoded)).unwrap()));
        });
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let payload = param_payload();
    let compressed = compress_auto(&payload);
    let mut group = c.benchmark_group("lzss");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("compress_mlp_params", |b| {
        b.iter(|| black_box(compress_auto(black_box(&payload))));
    });
    group.bench_function("decompress_mlp_params", |b| {
        b.iter(|| black_box(decompress_auto(black_box(&compressed)).unwrap()));
    });
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    let payload = param_payload();
    let mut group = c.benchmark_group("batching");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for compress in [false, true] {
        let cfg = BatchConfig {
            chunk_size: 64 * 1024,
            compress,
            ..BatchConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("split_64k", compress),
            &compress,
            |b, _| {
                b.iter(|| black_box(split(black_box(&payload), 1, &cfg).len()));
            },
        );
    }
    group.finish();
}

/// Representative control-plane messages: the three frames exchanged per
/// client per round, plus the largest session-setup message.
fn control_messages() -> Vec<(&'static str, MsgKind, ControlMsg)> {
    let session = SessionId::new("fig8-session").unwrap();
    let stats = StatsMsg {
        free_memory: 3_221_225_472,
        available_flops: 3.7e9,
        memory_utilization: 0.4375,
    };
    vec![
        (
            "join",
            MsgKind::Join,
            ControlMsg::Join(JoinRequest {
                session_id: session.clone(),
                client_id: ClientId::new("client_017").unwrap(),
                model_name: ModelId::new("mnist-mlp").unwrap(),
                preferred_role: PreferredRole::Any,
                num_samples: 600,
                stats,
                proto: WireVersion::LATEST.as_u8(),
                codec: 2,
            }),
        ),
        (
            "set_role",
            MsgKind::Ctrl,
            ControlMsg::Ctrl {
                session: session.clone(),
                msg: CtrlMsg::SetRole(RoleSpec {
                    role: Role::TrainerAggregator,
                    position: Some(Position::Agg(3)),
                    parent: Position::Root,
                    expected_inputs: 6,
                    round: 4,
                    data_wire: 2,
                    data_codec: 2,
                }),
            },
        ),
        (
            "round_done",
            MsgKind::RoundDone,
            ControlMsg::RoundDone(RoundDone {
                session_id: session,
                client_id: ClientId::new("client_017").unwrap(),
                round: 4,
                stats,
            }),
        ),
    ]
}

fn bench_wirecodec(c: &mut Criterion) {
    let messages = control_messages();

    // Bytes-on-wire comparison (the tentpole acceptance number).
    println!("\nwirecodec bytes-on-wire (json v1 vs binary v2):");
    for (name, _kind, msg) in &messages {
        let json = Envelope::new(WireVersion::V1Json, msg.clone()).encode();
        let binary = Envelope::new(WireVersion::V2Binary, msg.clone()).encode();
        println!(
            "  {name:<12} json {:>4} B  binary {:>4} B  ({:.1}% smaller)",
            json.len(),
            binary.len(),
            100.0 * (1.0 - binary.len() as f64 / json.len() as f64),
        );
    }
    println!();

    let mut group = c.benchmark_group("wirecodec");
    for (name, kind, msg) in &messages {
        for version in [WireVersion::V1Json, WireVersion::V2Binary] {
            let tag = match version {
                WireVersion::V1Json => "json",
                WireVersion::V2Binary => "binary",
            };
            let frame = Envelope::new(version, msg.clone()).encode();
            group.throughput(Throughput::Bytes(frame.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("encode_{name}"), tag),
                msg,
                |b, msg| {
                    b.iter(|| black_box(Envelope::new(version, black_box(msg).clone()).encode()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("decode_{name}"), tag),
                &frame,
                |b, frame| {
                    b.iter(|| black_box(Envelope::decode(*kind, black_box(frame)).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_compress,
    bench_batching,
    bench_wirecodec
);
criterion_main!(benches);
