//! Coordinator planning costs: cluster construction, rearrangement diffs,
//! and optimizer ranking at fleet scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdflmq_core::{
    build_plan, diff_plans, ClientId, ClientInfo, MemoryAware, RoleOptimizer, Topology,
};
use sdflmq_core::{CompositeScore, PreferredRole};
use sdflmq_sim::SystemStats;
use std::hint::black_box;

fn fleet(n: usize) -> Vec<ClientInfo> {
    (0..n)
        .map(|i| ClientInfo {
            id: ClientId::new(format!("c{i}")).unwrap(),
            stats: SystemStats {
                free_memory: (64 + (i * 37) % 4096) as u64 * 1024 * 1024,
                available_flops: 1e9 + (i % 17) as f64 * 3e8,
                memory_utilization: (i % 10) as f64 / 10.0,
            },
            preferred: PreferredRole::Any,
            num_samples: 100 + (i % 5) as u64 * 50,
        })
        .collect()
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_plan");
    for n in [10usize, 100, 1_000] {
        let clients = fleet(n);
        let ranking: Vec<ClientId> = MemoryAware.rank(&clients, 1);
        let topo = Topology::Hierarchical {
            aggregator_ratio: 0.3,
        };
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(build_plan(&clients, &topo, &ranking, 1)));
        });

        let plan1 = build_plan(&clients, &topo, &ranking, 1);
        let mut shuffled = ranking.clone();
        shuffled.rotate_left(3);
        let plan2 = build_plan(&clients, &topo, &shuffled, 2);
        group.bench_with_input(BenchmarkId::new("diff", n), &n, |b, _| {
            b.iter(|| black_box(diff_plans(&plan1, &plan2).len()));
        });
    }
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let clients = fleet(1_000);
    let mut group = c.benchmark_group("optimizer_rank_1000");
    group.bench_function("memory_aware", |b| {
        b.iter(|| black_box(MemoryAware.rank(black_box(&clients), 1).len()));
    });
    group.bench_function("composite", |b| {
        let mut opt = CompositeScore::default();
        b.iter(|| black_box(opt.rank(black_box(&clients), 1).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_planning, bench_optimizers);
criterion_main!(benches);
