//! End-to-end broker benchmarks: publish fan-out and RFC round-trip over
//! the real threaded stack.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdflmq_mqtt::{Broker, Client, ClientOptions, QoS, TopicName};
use sdflmq_mqttfc::{FleetController, RfcConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_fanout");
    group.sample_size(20);
    for subs in [1usize, 8, 32] {
        let broker = Broker::start_default();
        let counters: Vec<_> = (0..subs)
            .map(|i| {
                let client =
                    Client::connect(&broker, ClientOptions::new(format!("sub{i}"))).unwrap();
                let (tx, rx) = crossbeam::channel::unbounded::<()>();
                client
                    .subscribe_with(
                        &"fan/#".parse().unwrap(),
                        QoS::AtMostOnce,
                        Arc::new(move |_p| {
                            let _ = tx.send(());
                        }),
                    )
                    .unwrap();
                (client, rx)
            })
            .collect();
        let publisher = Client::connect(&broker, ClientOptions::new("pub")).unwrap();
        let topic = TopicName::new("fan/x").unwrap();
        let payload = Bytes::from(vec![0u8; 512]);

        group.throughput(Throughput::Elements(subs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, _| {
            b.iter(|| {
                publisher
                    .publish(&topic, payload.clone(), QoS::AtMostOnce, false)
                    .unwrap();
                for (_, rx) in &counters {
                    rx.recv_timeout(Duration::from_secs(5)).unwrap();
                }
            });
        });
        drop(counters);
    }
    group.finish();
}

fn bench_rfc_roundtrip(c: &mut Criterion) {
    let broker = Broker::start_default();
    let svc = FleetController::new(
        Client::connect(&broker, ClientOptions::new("svc")).unwrap(),
        "svc",
        RfcConfig::default(),
    )
    .unwrap();
    svc.expose("echo", Arc::new(|msg| Ok(msg.payload.clone())))
        .unwrap();
    let cli = FleetController::new(
        Client::connect(&broker, ClientOptions::new("cli")).unwrap(),
        "cli",
        RfcConfig::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("rfc_roundtrip");
    group.sample_size(20);
    for size in [64usize, 16 * 1024] {
        let payload = Bytes::from(vec![0x3Cu8; size]);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                black_box(
                    cli.call_with_reply("echo", payload.clone())
                        .expect("echo reply"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout, bench_rfc_roundtrip);
criterion_main!(benches);
