//! Matrix-multiply kernels: the training-loop hot path, including the
//! threshold where the scoped-thread parallel path engages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdflmq_nn::Matrix;
use std::hint::black_box;

fn matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| (((i as u32).wrapping_mul(seed) >> 7) % 255) as f32 * 0.01 - 1.27)
            .collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    // batch x in @ in x out — shapes from the paper's MLP forward pass.
    for (batch, input, output) in [
        (32usize, 784usize, 128usize),
        (256, 784, 128),
        (32, 128, 64),
    ] {
        let a = matrix(batch, input, 17);
        let w = matrix(input, output, 23);
        let mut out = Matrix::zeros(batch, output);
        let flops = 2 * batch * input * output;
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{batch}x{input}x{output}")),
            &batch,
            |b, _| {
                b.iter(|| {
                    a.matmul_into(black_box(&w), &mut out);
                    black_box(out.get(0, 0))
                });
            },
        );
    }
    group.finish();
}

fn bench_backward_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward");
    group.sample_size(20);
    let dz = matrix(64, 128, 29);
    let w = matrix(784, 128, 31);
    let x = matrix(64, 784, 37);
    group.bench_function("dx_matmul_transpose_b", |b| {
        b.iter(|| black_box(dz.matmul_transpose_b(black_box(&w))));
    });
    group.bench_function("dw_transpose_a_matmul", |b| {
        b.iter(|| black_box(x.transpose_a_matmul(black_box(&dz))));
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_backward_kernels);
criterion_main!(benches);
