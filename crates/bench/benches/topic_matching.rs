//! Subscription-trie matching throughput: the broker's routing hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdflmq_mqtt::topic::{TopicFilter, TopicName};
use sdflmq_mqtt::trie::SubscriptionTrie;
use std::hint::black_box;

fn build_trie(subs: usize) -> SubscriptionTrie<u32, u8> {
    let mut trie = SubscriptionTrie::new();
    for i in 0..subs {
        // A realistic mixture: exact, one-level wildcard, tail wildcard.
        let filter = match i % 3 {
            0 => format!("sdflmq/session/s{}/role/agg{}", i % 50, i % 7),
            1 => format!("sdflmq/session/s{}/+/agg{}", i % 50, i % 7),
            _ => format!("mqttfc/fn/f{}/#", i % 100),
        };
        trie.subscribe(&TopicFilter::new(filter).unwrap(), i as u32, 0u8);
    }
    trie
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_match");
    for subs in [100usize, 1_000, 10_000] {
        let trie = build_trie(subs);
        let topics: Vec<TopicName> = (0..64)
            .map(|i| {
                TopicName::new(format!("sdflmq/session/s{}/role/agg{}", i % 50, i % 7)).unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let topic = &topics[i % topics.len()];
                i += 1;
                black_box(trie.matches(black_box(topic)).len())
            });
        });
    }
    group.finish();
}

fn bench_subscribe_unsubscribe(c: &mut Criterion) {
    c.bench_function("trie_subscribe_unsubscribe", |b| {
        let mut trie: SubscriptionTrie<u32, u8> = SubscriptionTrie::new();
        let filter = TopicFilter::new("a/b/c/d/e").unwrap();
        b.iter(|| {
            trie.subscribe(black_box(&filter), 1, 0);
            trie.unsubscribe(black_box(&filter), &1);
        });
    });
}

criterion_group!(benches, bench_matching, bench_subscribe_unsubscribe);
criterion_main!(benches);
