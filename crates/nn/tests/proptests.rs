//! Property-based tests: tensor algebra laws and parameter serialization.

use proptest::prelude::*;
use sdflmq_nn::{deserialize_params, serialize_params, Matrix};

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_close(a: &Matrix, b: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows());
    prop_assert_eq!(a.cols(), b.cols());
    for (x, y) in a.data().iter().zip(b.data().iter()) {
        prop_assert!(
            (x - y).abs() <= 1e-3 + 1e-4 * x.abs().max(y.abs()),
            "{x} vs {y}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized matmul agrees with the naive triple loop.
    #[test]
    fn matmul_matches_naive(
        a in matrix(1..20, 1..20),
        cols in 1usize..20,
    ) {
        let b_data: Vec<f32> = (0..a.cols() * cols)
            .map(|i| ((i % 13) as f32) * 0.31 - 1.8)
            .collect();
        let b = Matrix::from_vec(a.cols(), cols, b_data);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b))?;
    }

    /// `a @ bᵀ` equals `a @ (explicit transpose of b)`.
    #[test]
    fn matmul_transpose_b_agrees(
        a in matrix(1..12, 1..12),
        rows_b in 1usize..12,
    ) {
        let b_data: Vec<f32> = (0..rows_b * a.cols())
            .map(|i| ((i % 7) as f32) * 0.5 - 1.5)
            .collect();
        let b = Matrix::from_vec(rows_b, a.cols(), b_data);
        let mut bt = Matrix::zeros(a.cols(), rows_b);
        for i in 0..rows_b {
            for j in 0..a.cols() {
                bt.set(j, i, b.get(i, j));
            }
        }
        assert_close(&a.matmul_transpose_b(&b), &naive_matmul(&a, &bt))?;
    }

    /// `aᵀ @ b` equals the explicit construction too.
    #[test]
    fn transpose_a_matmul_agrees(
        a in matrix(1..12, 1..12),
        cols_b in 1usize..12,
    ) {
        let b_data: Vec<f32> = (0..a.rows() * cols_b)
            .map(|i| ((i % 11) as f32) * 0.25 - 1.0)
            .collect();
        let b = Matrix::from_vec(a.rows(), cols_b, b_data);
        let mut at = Matrix::zeros(a.cols(), a.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_close(&a.transpose_a_matmul(&b), &naive_matmul(&at, &b))?;
    }

    /// Column sums equal the row-bias inverse: sum(add_row_bias(zeros, b))
    /// distributes b to every row.
    #[test]
    fn bias_column_sum_law(
        rows in 1usize..16,
        bias in prop::collection::vec(-5.0f32..5.0, 1..16),
    ) {
        let mut m = Matrix::zeros(rows, bias.len());
        m.add_row_bias(&bias);
        let sums = m.column_sums();
        for (s, b) in sums.iter().zip(&bias) {
            prop_assert!((s - b * rows as f32).abs() < 1e-3);
        }
    }

    /// Parameter blobs round-trip bit-exactly.
    #[test]
    fn params_roundtrip(params in prop::collection::vec(any::<f32>(), 0..2048)) {
        let bytes = serialize_params(&params);
        let back = deserialize_params(&bytes).unwrap();
        prop_assert_eq!(back.len(), params.len());
        for (a, b) in back.iter().zip(&params) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Deserialization never panics on arbitrary bytes.
    #[test]
    fn deserialize_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = deserialize_params(&bytes);
    }
}
