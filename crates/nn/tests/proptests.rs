//! Property-based tests: tensor algebra laws and parameter serialization.

use proptest::prelude::*;
use sdflmq_nn::{deserialize_params, serialize_params, Matrix};

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_close(a: &Matrix, b: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows());
    prop_assert_eq!(a.cols(), b.cols());
    for (x, y) in a.data().iter().zip(b.data().iter()) {
        prop_assert!(
            (x - y).abs() <= 1e-3 + 1e-4 * x.abs().max(y.abs()),
            "{x} vs {y}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized matmul agrees with the naive triple loop.
    #[test]
    fn matmul_matches_naive(
        a in matrix(1..20, 1..20),
        cols in 1usize..20,
    ) {
        let b_data: Vec<f32> = (0..a.cols() * cols)
            .map(|i| ((i % 13) as f32) * 0.31 - 1.8)
            .collect();
        let b = Matrix::from_vec(a.cols(), cols, b_data);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b))?;
    }

    /// `a @ bᵀ` equals `a @ (explicit transpose of b)`.
    #[test]
    fn matmul_transpose_b_agrees(
        a in matrix(1..12, 1..12),
        rows_b in 1usize..12,
    ) {
        let b_data: Vec<f32> = (0..rows_b * a.cols())
            .map(|i| ((i % 7) as f32) * 0.5 - 1.5)
            .collect();
        let b = Matrix::from_vec(rows_b, a.cols(), b_data);
        let mut bt = Matrix::zeros(a.cols(), rows_b);
        for i in 0..rows_b {
            for j in 0..a.cols() {
                bt.set(j, i, b.get(i, j));
            }
        }
        assert_close(&a.matmul_transpose_b(&b), &naive_matmul(&a, &bt))?;
    }

    /// `aᵀ @ b` equals the explicit construction too.
    #[test]
    fn transpose_a_matmul_agrees(
        a in matrix(1..12, 1..12),
        cols_b in 1usize..12,
    ) {
        let b_data: Vec<f32> = (0..a.rows() * cols_b)
            .map(|i| ((i % 11) as f32) * 0.25 - 1.0)
            .collect();
        let b = Matrix::from_vec(a.rows(), cols_b, b_data);
        let mut at = Matrix::zeros(a.cols(), a.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_close(&a.transpose_a_matmul(&b), &naive_matmul(&at, &b))?;
    }

    /// Column sums equal the row-bias inverse: sum(add_row_bias(zeros, b))
    /// distributes b to every row.
    #[test]
    fn bias_column_sum_law(
        rows in 1usize..16,
        bias in prop::collection::vec(-5.0f32..5.0, 1..16),
    ) {
        let mut m = Matrix::zeros(rows, bias.len());
        m.add_row_bias(&bias);
        let sums = m.column_sums();
        for (s, b) in sums.iter().zip(&bias) {
            prop_assert!((s - b * rows as f32).abs() < 1e-3);
        }
    }

    /// Parameter blobs round-trip bit-exactly.
    #[test]
    fn params_roundtrip(params in prop::collection::vec(any::<f32>(), 0..2048)) {
        let bytes = serialize_params(&params);
        let back = deserialize_params(&bytes).unwrap();
        prop_assert_eq!(back.len(), params.len());
        for (a, b) in back.iter().zip(&params) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Deserialization never panics on arbitrary bytes.
    #[test]
    fn deserialize_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = deserialize_params(&bytes);
    }
}

// ---------------------------------------------------------------------
// Update-codec laws: every codec round-trips within its error bound,
// error feedback conserves what lossy encodings drop, and decoders
// never panic on arbitrary bytes.
// ---------------------------------------------------------------------

use sdflmq_nn::codec::{f16_to_f32, f32_to_f16, top_k_count, UpdateCodec};

fn finite_params(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Dense is bit-exact and byte-identical to the legacy serializer.
    #[test]
    fn dense_roundtrip_is_exact(params in finite_params(512)) {
        let enc = UpdateCodec::Dense.encode_stateless(&params, None);
        prop_assert_eq!(&enc, &serialize_params(&params));
        let dec = UpdateCodec::Dense.decode(&enc, None).unwrap();
        for (a, b) in dec.iter().zip(&params) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// fp16 error is bounded by half-precision ULP: |x|/1024 + a small
    /// absolute floor for the subnormal range.
    #[test]
    fn fp16_error_bounded(params in finite_params(512)) {
        let enc = UpdateCodec::Fp16.encode_stateless(&params, None);
        prop_assert_eq!(enc.len(), 8 + params.len() * 2);
        let dec = UpdateCodec::Fp16.decode(&enc, None).unwrap();
        for (a, b) in params.iter().zip(&dec) {
            prop_assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-4, "{} vs {}", a, b);
        }
    }

    /// f16 conversion round-trips its own output exactly (idempotence).
    #[test]
    fn f16_conversion_is_idempotent(x in -65504.0f32..65504.0) {
        let once = f16_to_f32(f32_to_f16(x));
        let twice = f16_to_f32(f32_to_f16(once));
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// int8 affine error is bounded by half a quantization step.
    #[test]
    fn int8_error_bounded_by_half_step(params in finite_params(512)) {
        let enc = UpdateCodec::Int8.encode_stateless(&params, None);
        prop_assert_eq!(enc.len(), 16 + params.len());
        let dec = UpdateCodec::Int8.decode(&enc, None).unwrap();
        let (lo, hi) = params
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |a, v| (a.0.min(*v), a.1.max(*v)));
        let half_step = (hi - lo) / 255.0 * 0.5;
        for (a, b) in params.iter().zip(&dec) {
            prop_assert!((a - b).abs() <= half_step + 1e-5, "{} vs {}", a, b);
        }
    }

    /// Top-k delta + residual reconstruction: what ships decodes exactly
    /// against the base, and (decoded - base) + residual equals the full
    /// compensated delta — error feedback conserves every coordinate.
    #[test]
    fn topk_residual_conserves_the_delta(
        base in finite_params(256),
        noise in prop::collection::vec(-1.0f32..1.0, 256),
        prior in prop::collection::vec(-0.5f32..0.5, 256),
        per_mille in 1u16..1000,
    ) {
        let n = base.len();
        let params: Vec<f32> = base.iter().zip(&noise).map(|(b, d)| b + d).collect();
        let mut residual: Vec<f32> = prior[..n].to_vec();
        let expected: Vec<f32> = params
            .iter()
            .zip(&base)
            .zip(&residual)
            .map(|((x, b), r)| x - b + r)
            .collect();
        let codec = UpdateCodec::TopK { per_mille };
        let enc = codec.encode(&params, Some(&base), &mut residual);
        // Decoding against the zero base exposes the shipped delta values
        // bit-exactly (decoding against `base` would re-round through a
        // base + delta f32 addition).
        let sent = codec.decode(&enc, None).unwrap();
        prop_assert_eq!(sent.len(), n);
        let k = top_k_count(n, per_mille);
        let mut shipped = 0usize;
        for i in 0..n {
            // Conservation: shipped + owed == compensated delta, exactly
            // (the split moves f32 values, it never recomputes them).
            prop_assert!(
                sent[i] + residual[i] == expected[i],
                "coord {}: {} + {} != {}", i, sent[i], residual[i], expected[i]
            );
            // Each coordinate is either shipped exactly or fully owed.
            if sent[i] != 0.0 {
                prop_assert_eq!(residual[i], 0.0);
                shipped += 1;
            }
        }
        prop_assert!(shipped <= k, "{} coords shipped, k = {}", shipped, k);
    }

    /// The k largest-magnitude compensated deltas are the ones shipped.
    #[test]
    fn topk_ships_the_largest_magnitudes(
        params in finite_params(128),
        per_mille in 1u16..1000,
    ) {
        let n = params.len();
        let codec = UpdateCodec::TopK { per_mille };
        let mut residual = Vec::new();
        let enc = codec.encode(&params, None, &mut residual);
        let k = top_k_count(n, per_mille);
        let mut magnitudes: Vec<f32> = params.iter().map(|v| v.abs()).collect();
        magnitudes.sort_by(|a, b| b.total_cmp(a));
        let threshold = magnitudes[k - 1];
        let dec = codec.decode(&enc, None).unwrap();
        for i in 0..n {
            if params[i].abs() > threshold {
                prop_assert_eq!(dec[i].to_bits(), params[i].to_bits(), "coord {}", i);
            }
        }
    }

    /// Lossy codecs never grow the payload beyond their nominal ratio.
    #[test]
    fn encoded_sizes_match_the_format(params in finite_params(600)) {
        let n = params.len();
        prop_assert_eq!(
            UpdateCodec::Fp16.encode_stateless(&params, None).len(),
            8 + n * 2
        );
        prop_assert_eq!(
            UpdateCodec::Int8.encode_stateless(&params, None).len(),
            16 + n
        );
        let k = top_k_count(n, 30);
        prop_assert_eq!(
            UpdateCodec::TOP_K_DEFAULT.encode_stateless(&params, None).len(),
            12 + k * 8
        );
    }

    /// No codec's decoder panics on arbitrary bytes, with or without a
    /// base vector.
    #[test]
    fn codec_decode_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        base in prop::collection::vec(-1.0f32..1.0, 0..64),
    ) {
        for codec in [
            UpdateCodec::Dense,
            UpdateCodec::Fp16,
            UpdateCodec::Int8,
            UpdateCodec::TOP_K_DEFAULT,
        ] {
            let _ = codec.decode(&bytes, None);
            let _ = codec.decode(&bytes, Some(&base));
        }
    }
}

// ---------------------------------------------------------------------
// Parallel-vs-serial differential laws: the chunked multi-threaded
// codec paths must be *bit-identical* to the retained serial reference
// at every thread count — payload bytes, error-feedback residual, and
// decoded values alike. Chaos trace hashes pin bit-exact globals, so
// "close enough" is not an option here.
// ---------------------------------------------------------------------

use sdflmq_nn::codec::{reference, PAR_CHUNK};
use sdflmq_nn::parallel::WorkerPool;

/// Lengths that straddle the parallel chunk boundary (the adversarial
/// set: empty, single element, chunk−1 / chunk / chunk+1), plus a band
/// of small random lengths for chunk-interior coverage.
fn adversarial_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(PAR_CHUNK - 1),
        Just(PAR_CHUNK),
        Just(PAR_CHUNK + 1),
        2usize..600,
    ]
}

/// Deterministic xorshift-derived vector — cheap at chunk-sized lengths
/// where a `vec()` strategy would dominate the test's runtime.
fn seeded_vec(seed: u64, len: usize, scale: f32) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0 * scale
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every codec's parallel encode and decode agree bit-for-bit with
    /// the serial reference at 1, 2, and 4 worker threads — including
    /// the updated error-feedback residual — at lengths that hit the
    /// empty, single-chunk, exact-boundary, and multi-chunk layouts.
    #[test]
    fn parallel_codecs_match_reference_at_every_thread_count(
        len in adversarial_len(),
        seed in any::<u64>(),
        with_base in any::<bool>(),
    ) {
        let x = seeded_vec(seed, len, 80.0);
        let base_vec = seeded_vec(seed.wrapping_add(1), len, 40.0);
        let prior = seeded_vec(seed.wrapping_add(2), len, 0.5);
        let base = with_base.then_some(base_vec.as_slice());
        let pools: Vec<WorkerPool> = [1, 2, 4].into_iter().map(WorkerPool::new).collect();
        for codec in [
            UpdateCodec::Dense,
            UpdateCodec::Fp16,
            UpdateCodec::Int8,
            UpdateCodec::TOP_K_DEFAULT,
        ] {
            let mut ref_res = prior.clone();
            let ref_enc = reference::encode(codec, &x, base, &mut ref_res);
            let ref_dec = reference::decode(codec, &ref_enc, base).unwrap();
            for pool in &pools {
                let mut res = prior.clone();
                let mut enc = Vec::new();
                codec.encode_into(&x, base, &mut res, pool, &mut enc);
                prop_assert_eq!(&enc, &ref_enc, "{} encode bytes", codec.name());
                prop_assert_eq!(res.len(), ref_res.len());
                for (a, b) in res.iter().zip(&ref_res) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "{} residual", codec.name());
                }
                let mut dec = Vec::new();
                codec.decode_into(&ref_enc, base, pool, &mut dec).unwrap();
                prop_assert_eq!(dec.len(), ref_dec.len());
                for (a, b) in dec.iter().zip(&ref_dec) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "{} decode", codec.name());
                }
            }
        }
    }
}
