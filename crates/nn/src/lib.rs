//! # sdflmq-nn — minimal dense neural-network library
//!
//! The ML substrate for SDFLMQ (the paper uses PyTorch; this repo builds the
//! needed subset from scratch): row-major `f32` tensors with multi-threaded
//! matmul, a flat-parameter [`mlp::Mlp`], softmax cross-entropy, SGD/Adam,
//! and a mini-batch training loop.
//!
//! The *flat parameter vector* design is the FL-specific choice: a model's
//! entire state is one `&[f32]`, so shipping it over MQTT, aggregating it
//! with FedAvg, or swapping it for a global update are all slice operations
//! (see [`params`]).
//!
//! ```
//! use sdflmq_nn::{Mlp, MlpSpec, Sgd, TrainConfig, Matrix};
//! use sdflmq_nn::train::{train, evaluate};
//!
//! // XOR-ish toy problem.
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = vec![0usize, 1, 1, 0];
//! let mut model = Mlp::new(MlpSpec { input: 2, hidden: vec![8], output: 2 }, 42);
//! let mut opt = Sgd::new(0.5);
//! train(&mut model, &mut opt, &x, &y,
//!       &TrainConfig { batch_size: 4, epochs: 500, shuffle_seed: 1 });
//! assert!(evaluate(&model, &x, &y) > 0.9);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod init;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod optim;
pub mod parallel;
pub mod params;
mod simd;
pub mod tensor;
pub mod train;

pub use codec::{CodecError, UpdateCodec};
pub use init::Init;
pub use loss::{mse, softmax_cross_entropy};
pub use metrics::{accuracy, argmax, confusion_matrix};
pub use mlp::{ForwardCache, Mlp, MlpSpec};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{deserialize as deserialize_params, serialize as serialize_params, ParamError};
pub use tensor::Matrix;
pub use train::{evaluate, train, train_batch, TrainConfig, TrainReport};
