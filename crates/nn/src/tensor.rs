//! Dense row-major matrices with cache-friendly, optionally multi-threaded
//! kernels.
//!
//! This is deliberately a *small* tensor library: 2-D `f32` matrices with
//! exactly the operations an MLP training loop needs. The matmul uses the
//! i-k-j loop order (streaming the B rows through cache) and splits the
//! output rows across scoped threads above a size threshold — the
//! rayon-style data-parallel pattern implemented directly on
//! `std::thread::scope`.

use crate::parallel::{for_each_chunk_mut, recommended_threads};

/// Row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a matrix from a subset of rows (used for mini-batching).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// `self @ other`, allocating the output.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self @ other` without allocating. `out` must be pre-shaped.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        assert_eq!(out.rows, self.rows, "output rows");
        assert_eq!(out.cols, other.cols, "output cols");
        out.data.fill(0.0);

        let n = other.cols;
        let k_dim = self.cols;
        // Parallel across output-row chunks when the work is large enough
        // to amortize thread spawn (~0.5 MFLOP per thread minimum).
        let flops = self.rows * n * k_dim;
        let threads = if flops >= 1 << 20 {
            recommended_threads().min(self.rows.max(1))
        } else {
            1
        };

        let a = &self.data;
        let b = &other.data;
        let rows_per_chunk = chunkwise_rows(self.rows, threads);
        for_each_chunk_mut(&mut out.data, rows_per_chunk * n, |chunk_idx, chunk| {
            // i-k-j: for each output row, stream B rows through cache.
            let start_row = chunk_idx * rows_per_chunk;
            for (local_i, out_row) in chunk.chunks_mut(n).enumerate() {
                let i = start_row + local_i;
                let a_row = &a[i * k_dim..(i + 1) * k_dim];
                for (k, &a_ik) in a_row.iter().enumerate() {
                    if a_ik == 0.0 {
                        continue;
                    }
                    let b_row = &b[k * n..(k + 1) * n];
                    for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_ik * b_kj;
                    }
                }
            }
        });
    }

    /// `self @ otherᵀ` (without materializing the transpose) — used for the
    /// backward pass `dX = dY @ Wᵀ`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        let k_dim = self.cols;
        let a = &self.data;
        let b = &other.data;
        let flops = self.rows * n * k_dim;
        let threads = if flops >= 1 << 20 {
            recommended_threads().min(self.rows.max(1))
        } else {
            1
        };
        let rows_per_chunk = chunkwise_rows(self.rows, threads);
        for_each_chunk_mut(&mut out.data, rows_per_chunk * n, |chunk_idx, chunk| {
            let start_row = chunk_idx * rows_per_chunk;
            for (local_i, out_row) in chunk.chunks_mut(n).enumerate() {
                let i = start_row + local_i;
                let a_row = &a[i * k_dim..(i + 1) * k_dim];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k_dim..(j + 1) * k_dim];
                    let mut acc = 0.0f32;
                    for (x, y) in a_row.iter().zip(b_row.iter()) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// `selfᵀ @ other` — used for the weight gradient `dW = Xᵀ @ dY`.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "batch dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        // Accumulate rank-1 updates row by row; single-threaded because the
        // output (in×out) is small relative to the batch work and writes
        // would contend.
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (k, &a_rk) in a_row.iter().enumerate() {
                if a_rk == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * n..(k + 1) * n];
                for (o, &b_rj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_rk * b_rj;
                }
            }
        }
        out
    }

    /// Adds `bias` (length = cols) to every row.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Sums each column into a vector of length `cols` (bias gradient).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Rows handled per chunk when splitting `rows` across `threads`.
fn chunkwise_rows(rows: usize, threads: usize) -> usize {
    rows.div_ceil(threads.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    fn seq_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i % 17) as f32 - 8.0) * scale)
                .collect(),
        )
    }

    #[test]
    fn small_matmul_matches_naive() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        approx_eq(&c, &naive_matmul(&a, &b), 1e-6);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn large_matmul_takes_parallel_path() {
        // 128x256 @ 256x128 exceeds the 1 MFLOP threshold.
        let a = seq_matrix(128, 256, 0.01);
        let b = seq_matrix(256, 128, 0.02);
        approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn ragged_row_split_is_correct() {
        // Rows not divisible by thread count exercise the tail chunk.
        let a = seq_matrix(67, 130, 0.013);
        let b = seq_matrix(130, 131, 0.007);
        approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit() {
        let a = seq_matrix(5, 7, 0.1);
        let b = seq_matrix(4, 7, 0.2); // will be used as bᵀ: 7x4
        let mut bt = Matrix::zeros(7, 4);
        for i in 0..4 {
            for j in 0..7 {
                bt.set(j, i, b.get(i, j));
            }
        }
        approx_eq(&a.matmul_transpose_b(&b), &naive_matmul(&a, &bt), 1e-4);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit() {
        let a = seq_matrix(6, 3, 0.3); // aᵀ: 3x6
        let b = seq_matrix(6, 4, 0.1);
        let mut at = Matrix::zeros(3, 6);
        for i in 0..6 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        approx_eq(&a.transpose_a_matmul(&b), &naive_matmul(&at, &b), 1e-4);
    }

    #[test]
    fn bias_and_column_sums() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        m.add_row_bias(&[10., 20., 30.]);
        assert_eq!(m.data(), &[11., 22., 33., 14., 25., 36.]);
        assert_eq!(m.column_sums(), vec![25., 47., 69.]);
    }

    #[test]
    fn gather_rows_builds_batches() {
        let m = Matrix::from_vec(4, 2, vec![0., 1., 10., 11., 20., 21., 30., 31.]);
        let batch = m.gather_rows(&[3, 0]);
        assert_eq!(batch.data(), &[30., 31., 0., 1.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn map_and_norm() {
        let mut m = Matrix::from_vec(1, 3, vec![3., 0., 4.]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        m.map_inplace(|v| v.max(1.0));
        assert_eq!(m.data(), &[3., 1., 4.]);
    }
}
