//! Scoped-thread data-parallel helpers.
//!
//! The guides' recommended pattern (rayon's `par_chunks_mut`) implemented
//! directly on `std::thread::scope`: split a mutable slice into disjoint
//! chunks and hand each to its own thread. Disjointness makes this safe
//! without any locking, and `scope` guarantees the borrows end before the
//! function returns.

use std::sync::OnceLock;

/// Number of worker threads to use for data-parallel kernels.
///
/// Defaults to the machine's available parallelism, clamped to 8 — beyond
/// that, the memory-bound kernels in this crate stop scaling. Can be
/// overridden (for experiments and tests) via the `SDFLMQ_NN_THREADS`
/// environment variable, read once.
pub fn recommended_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("SDFLMQ_NN_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    })
}

/// Runs `f(chunk_index, chunk)` over disjoint chunks of `data`, each up to
/// `chunk_len` elements, in parallel. Falls back to an inline call when
/// there is only one chunk (or chunks are degenerate), so small inputs pay
/// no threading cost.
pub fn for_each_chunk_mut<T: Send, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx, chunk));
        }
    });
}

/// Maps `f` over index ranges `[0, len)` split into `parts` contiguous
/// ranges, collecting each part's result in order. Used for parallel
/// reductions where each worker owns a private accumulator.
pub fn map_ranges<R: Send, F>(len: usize, parts: usize, f: F) -> Vec<R>
where
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let parts = parts.clamp(1, len.max(1));
    let per = len.div_ceil(parts);
    if parts == 1 {
        return vec![f(0..len)];
    }
    let mut out: Vec<Option<R>> = (0..parts).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (idx, slot) in out.iter_mut().enumerate() {
            let f = &f;
            let start = idx * per;
            let end = ((idx + 1) * per).min(len);
            scope.spawn(move || {
                *slot = Some(f(start..end));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 1000];
        for_each_chunk_mut(&mut data, 173, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn chunk_indices_are_positional() {
        let mut data = vec![0usize; 100];
        for_each_chunk_mut(&mut data, 30, |idx, chunk| {
            for v in chunk {
                *v = idx;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[29], 0);
        assert_eq!(data[30], 1);
        assert_eq!(data[99], 3);
    }

    #[test]
    fn small_input_runs_inline() {
        let mut data = vec![1u8; 4];
        for_each_chunk_mut(&mut data, 100, |idx, chunk| {
            assert_eq!(idx, 0);
            assert_eq!(chunk.len(), 4);
        });
    }

    #[test]
    fn empty_input_is_noop() {
        let mut data: Vec<u8> = vec![];
        for_each_chunk_mut(&mut data, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn map_ranges_partitions_exactly() {
        let sums = map_ranges(1000, 7, |range| range.sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, (0..1000).sum::<usize>());
        assert_eq!(sums.len(), 7);
    }

    #[test]
    fn map_ranges_single_part() {
        let sums = map_ranges(10, 1, |range| range.len());
        assert_eq!(sums, vec![10]);
    }

    #[test]
    fn threads_env_is_clamped() {
        // Only checks the static accessor works; the env var is read once
        // per process so we cannot vary it here.
        let n = recommended_threads();
        assert!((1..=64).contains(&n));
    }
}
