//! Scoped-thread data-parallel helpers.
//!
//! The guides' recommended pattern (rayon's `par_chunks_mut`) implemented
//! directly on `std::thread::scope`: split a mutable slice into disjoint
//! chunks and hand each to its own thread. Disjointness makes this safe
//! without any locking, and `scope` guarantees the borrows end before the
//! function returns.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of worker threads to use for data-parallel kernels.
///
/// Defaults to the machine's available parallelism, clamped to 8 — beyond
/// that, the memory-bound kernels in this crate stop scaling. Can be
/// overridden (for experiments and tests) via the `SDFLMQ_NN_THREADS`
/// environment variable, read once.
pub fn recommended_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("SDFLMQ_NN_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    })
}

/// A small reusable worker pool for data-parallel kernels.
///
/// Unlike [`for_each_chunk_mut`], which spawns a scoped thread per chunk,
/// the pool keeps its workers parked between jobs, so per-call overhead is
/// one lock + wakeup instead of N thread spawns — the difference matters
/// when the same model-sized encode runs every round. Tasks are pulled
/// from a shared atomic counter, so uneven chunks self-balance.
///
/// The pool runs *closures borrowed from the caller's stack* on persistent
/// threads. Safety rests on one invariant, enforced in [`WorkerPool::run`]:
/// the submitting call does not return (or unwind) until every task has
/// finished executing, and once the finished count reaches `tasks` no
/// worker can begin another task of that job (the task counter is already
/// exhausted). Workers therefore never touch the closure after `run`
/// returns.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

struct PoolInner {
    /// Monotonic job epoch + the current job, if any.
    job: Mutex<(u64, Option<Arc<JobCtl>>)>,
    work_cv: Condvar,
    /// Completion signal: submitters wait here for straggler workers.
    done: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

struct JobCtl {
    /// Lifetime-erased borrow of the submitter's closure; only dereferenced
    /// while `finished < tasks` (see the safety note on [`WorkerPool`]).
    f: &'static (dyn Fn(usize) + Sync),
    tasks: usize,
    next: AtomicUsize,
    finished: AtomicUsize,
    panicked: AtomicBool,
}

impl JobCtl {
    /// Claims and runs tasks until the counter is exhausted.
    fn drain(&self, inner: &PoolInner) {
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.tasks {
                return;
            }
            if catch_unwind(AssertUnwindSafe(|| (self.f)(i))).is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            if self.finished.fetch_add(1, Ordering::SeqCst) + 1 == self.tasks {
                let _guard = inner.done.lock().unwrap();
                inner.done_cv.notify_all();
            }
        }
    }
}

impl WorkerPool {
    /// Creates a pool that runs jobs on `threads` executors: `threads - 1`
    /// parked worker threads plus the submitting thread itself. `threads`
    /// is clamped to `1..=64`; a 1-thread pool runs everything inline.
    ///
    /// Executors beyond the machine's available parallelism (floored at 2
    /// so the cross-thread protocol always runs when requested) are not
    /// spawned: on an oversubscribed host the extra workers only add
    /// wakeup contention, and chunk layout — hence every output bit —
    /// never depends on the executor count.
    pub fn new(threads: usize) -> WorkerPool {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = threads.clamp(1, 64).min(cpus.max(2));
        let inner = Arc::new(PoolInner {
            job: Mutex::new((0, None)),
            work_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sdflmq-nn-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { inner, workers }
    }

    /// The shared process-wide pool, sized by [`recommended_threads`].
    pub fn global() -> Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(recommended_threads()))))
    }

    /// Number of executors (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(0)`, `f(1)`, … `f(tasks - 1)`, distributing tasks over the
    /// pool, and returns once every task has finished. Tasks must be
    /// disjoint in whatever they mutate; the pool adds no locking of its
    /// own. Single-task jobs (and 1-thread pools) run inline with zero
    /// synchronization.
    pub fn run(&self, tasks: usize, f: impl Fn(usize) + Sync) {
        self.run_dyn(tasks, &f)
    }

    fn run_dyn(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers.is_empty() || tasks == 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        // Erase the closure borrow's lifetime so it can sit in the shared
        // job slot. Sound because this function only returns (or panics)
        // after `finished == tasks`, at which point the task counter is
        // exhausted and no worker will dereference `f` again.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let ctl = Arc::new(JobCtl {
            f,
            tasks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        {
            let mut slot = self.inner.job.lock().unwrap();
            slot.0 += 1;
            slot.1 = Some(Arc::clone(&ctl));
        }
        self.inner.work_cv.notify_all();
        // The submitter is an executor too (it would otherwise just block).
        ctl.drain(&self.inner);
        if ctl.finished.load(Ordering::SeqCst) < tasks {
            let mut guard = self.inner.done.lock().unwrap();
            while ctl.finished.load(Ordering::SeqCst) < tasks {
                guard = self.inner.done_cv.wait(guard).unwrap();
            }
        }
        if ctl.panicked.load(Ordering::SeqCst) {
            panic!("worker pool task panicked");
        }
    }

    /// Pool-based counterpart of [`for_each_chunk_mut`]: runs
    /// `f(chunk_index, chunk)` over disjoint `chunk_len`-sized chunks of
    /// `data` on the pool's executors.
    pub fn for_each_chunk_mut<T: Send, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        if data.len() <= chunk_len {
            if !data.is_empty() {
                f(0, data);
            }
            return;
        }
        let chunks: Vec<Mutex<&mut [T]>> = data.chunks_mut(chunk_len).map(Mutex::new).collect();
        self.run(chunks.len(), |i| {
            let mut chunk = chunks[i].lock().unwrap();
            f(i, &mut chunk);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.inner.job.lock().unwrap();
        }
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    let mut seen = 0u64;
    loop {
        let ctl = {
            let mut slot = inner.job.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if slot.0 > seen {
                    seen = slot.0;
                    break Arc::clone(slot.1.as_ref().expect("epoch implies job"));
                }
                slot = inner.work_cv.wait(slot).unwrap();
            }
        };
        ctl.drain(inner);
    }
}

/// Splits `len` elements into fixed `chunk_len` chunks and returns the
/// element range of chunk `i`. The layout is a pure function of `len` and
/// `chunk_len` — never of the worker count — which is what makes chunked
/// kernels bit-identical at any thread count.
pub fn chunk_range(len: usize, chunk_len: usize, i: usize) -> std::ops::Range<usize> {
    let start = i * chunk_len;
    start..((start + chunk_len).min(len))
}

/// Number of `chunk_len` chunks covering `len` elements.
pub fn chunk_count(len: usize, chunk_len: usize) -> usize {
    len.div_ceil(chunk_len.max(1))
}

/// Runs `f(chunk_index, chunk)` over disjoint chunks of `data`, each up to
/// `chunk_len` elements, in parallel. Falls back to an inline call when
/// there is only one chunk (or chunks are degenerate), so small inputs pay
/// no threading cost.
pub fn for_each_chunk_mut<T: Send, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx, chunk));
        }
    });
}

/// Maps `f` over index ranges `[0, len)` split into `parts` contiguous
/// ranges, collecting each part's result in order. Used for parallel
/// reductions where each worker owns a private accumulator.
pub fn map_ranges<R: Send, F>(len: usize, parts: usize, f: F) -> Vec<R>
where
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let parts = parts.clamp(1, len.max(1));
    let per = len.div_ceil(parts);
    if parts == 1 {
        return vec![f(0..len)];
    }
    let mut out: Vec<Option<R>> = (0..parts).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (idx, slot) in out.iter_mut().enumerate() {
            let f = &f;
            let start = idx * per;
            let end = ((idx + 1) * per).min(len);
            scope.spawn(move || {
                *slot = Some(f(start..end));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 1000];
        for_each_chunk_mut(&mut data, 173, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn chunk_indices_are_positional() {
        let mut data = vec![0usize; 100];
        for_each_chunk_mut(&mut data, 30, |idx, chunk| {
            for v in chunk {
                *v = idx;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[29], 0);
        assert_eq!(data[30], 1);
        assert_eq!(data[99], 3);
    }

    #[test]
    fn small_input_runs_inline() {
        let mut data = vec![1u8; 4];
        for_each_chunk_mut(&mut data, 100, |idx, chunk| {
            assert_eq!(idx, 0);
            assert_eq!(chunk.len(), 4);
        });
    }

    #[test]
    fn empty_input_is_noop() {
        let mut data: Vec<u8> = vec![];
        for_each_chunk_mut(&mut data, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn map_ranges_partitions_exactly() {
        let sums = map_ranges(1000, 7, |range| range.sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, (0..1000).sum::<usize>());
        assert_eq!(sums.len(), 7);
    }

    #[test]
    fn map_ranges_single_part() {
        let sums = map_ranges(10, 1, |range| range.len());
        assert_eq!(sums, vec![10]);
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(16, |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50 * 16);
    }

    #[test]
    fn pool_single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        pool.run(5, |_| assert_eq!(std::thread::current().id(), tid));
    }

    #[test]
    fn pool_zero_tasks_is_noop() {
        let pool = WorkerPool::new(2);
        pool.run(0, |_| panic!("must not be called"));
    }

    #[test]
    fn pool_chunk_helper_matches_scoped_version() {
        let pool = WorkerPool::new(4);
        let mut a = vec![0u32; 1000];
        let mut b = vec![0u32; 1000];
        pool.for_each_chunk_mut(&mut a, 173, |idx, chunk| {
            for v in chunk {
                *v = idx as u32 + 1;
            }
        });
        for_each_chunk_mut(&mut b, 173, |idx, chunk| {
            for v in chunk {
                *v = idx as u32 + 1;
            }
        });
        assert_eq!(a, b);
    }

    #[test]
    fn pool_task_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must remain usable after a panicked job.
        let counter = AtomicUsize::new(0);
        pool.run(8, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn chunk_range_covers_exactly() {
        for (len, cl) in [(0usize, 8usize), (1, 8), (7, 8), (8, 8), (9, 8), (100, 7)] {
            let n = chunk_count(len, cl);
            let mut covered = 0;
            for i in 0..n {
                let r = chunk_range(len, cl, i);
                assert_eq!(r.start, covered);
                assert!(r.len() <= cl);
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn threads_env_is_clamped() {
        // Only checks the static accessor works; the env var is read once
        // per process so we cannot vary it here.
        let n = recommended_threads();
        assert!((1..=64).contains(&n));
    }
}
