//! Classification metrics.

use crate::tensor::Matrix;

/// Index of the maximum value in a row (ties resolve to the first).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Fraction of rows whose argmax equals the label, in `[0, 1]`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = (0..logits.rows())
        .filter(|&r| argmax(logits.row(r)) == labels[r])
        .count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix: `counts[true][predicted]`.
pub fn confusion_matrix(logits: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<u32>> {
    let mut counts = vec![vec![0u32; classes]; classes];
    for (r, &label) in labels.iter().enumerate() {
        let pred = argmax(logits.row(r));
        if label < classes && pred < classes {
            counts[label][pred] += 1;
        }
    }
    counts
}

/// Per-class recall (diagonal over row sums), `f64::NAN` for absent classes.
pub fn per_class_recall(confusion: &[Vec<u32>]) -> Vec<f64> {
    confusion
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let total: u32 = row.iter().sum();
            if total == 0 {
                f64::NAN
            } else {
                row[i] as f64 / total as f64
            }
        })
        .collect()
}

/// Online mean tracker used for loss curves.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Current mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn confusion_and_recall() {
        let logits = Matrix::from_vec(
            4,
            2,
            vec![
                0.9, 0.1, // pred 0, true 0
                0.2, 0.8, // pred 1, true 0
                0.3, 0.7, // pred 1, true 1
                0.6, 0.4, // pred 0, true 1
            ],
        );
        let cm = confusion_matrix(&logits, &[0, 0, 1, 1], 2);
        assert_eq!(cm, vec![vec![1, 1], vec![1, 1]]);
        let recall = per_class_recall(&cm);
        assert!((recall[0] - 0.5).abs() < 1e-9);
        assert!((recall[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(2.0);
        m.push(4.0);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.count(), 2);
    }
}
