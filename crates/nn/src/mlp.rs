//! Multi-layer perceptron with *flat* parameter storage.
//!
//! All weights and biases live in one contiguous `Vec<f32>`; layers address
//! slices of it via offsets. This layout is chosen for federated learning:
//! "send the model" is a single slice serialization, aggregation is
//! element-wise arithmetic over equal-length vectors, and optimizers step
//! over one flat buffer with no per-layer bookkeeping.

use crate::init::{seeded_rng, Init};
use crate::tensor::Matrix;

/// Architecture description for an MLP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Input feature count.
    pub input: usize,
    /// Hidden layer widths (each followed by ReLU).
    pub hidden: Vec<usize>,
    /// Output class count (linear logits; pair with softmax cross-entropy).
    pub output: usize,
}

impl MlpSpec {
    /// The paper's evaluation model: 784-→128→64→10 MLP for 28×28 digits.
    pub fn mnist_mlp() -> MlpSpec {
        MlpSpec {
            input: 28 * 28,
            hidden: vec![128, 64],
            output: 10,
        }
    }

    /// Layer (fan_in, fan_out) pairs, input to output.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 1);
        let mut prev = self.input;
        for &h in &self.hidden {
            dims.push((prev, h));
            prev = h;
        }
        dims.push((prev, self.output));
        dims
    }

    /// Total parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layer_dims().iter().map(|(fi, fo)| fi * fo + fo).sum()
    }
}

#[derive(Debug, Clone)]
struct LayerLayout {
    w_off: usize,
    b_off: usize,
    fan_in: usize,
    fan_out: usize,
}

/// The MLP model.
#[derive(Debug, Clone)]
pub struct Mlp {
    spec: MlpSpec,
    layout: Vec<LayerLayout>,
    params: Vec<f32>,
}

/// Forward-pass caches needed by [`Mlp::backward`].
pub struct ForwardCache {
    /// Layer inputs: `activations[0]` is the batch, `activations[i]` the
    /// post-ReLU output of layer `i-1`.
    activations: Vec<Matrix>,
    /// Pre-activation values per layer.
    pre_activations: Vec<Matrix>,
}

impl ForwardCache {
    /// The network output (logits) for the cached batch.
    pub fn logits(&self) -> &Matrix {
        self.pre_activations.last().expect("at least one layer")
    }
}

impl Mlp {
    /// Builds an MLP with He-uniform weights and zero biases,
    /// deterministically from `seed`.
    pub fn new(spec: MlpSpec, seed: u64) -> Mlp {
        let mut layout = Vec::with_capacity(spec.hidden.len() + 1);
        let mut off = 0usize;
        for (fan_in, fan_out) in spec.layer_dims() {
            layout.push(LayerLayout {
                w_off: off,
                b_off: off + fan_in * fan_out,
                fan_in,
                fan_out,
            });
            off += fan_in * fan_out + fan_out;
        }
        let mut params = vec![0.0f32; off];
        let mut rng = seeded_rng(seed);
        for l in &layout {
            Init::HeUniform.fill(&mut params[l.w_off..l.b_off], l.fan_in, l.fan_out, &mut rng);
            // Biases stay zero.
        }
        Mlp {
            spec,
            layout,
            params,
        }
    }

    /// The architecture.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable flat parameter vector (optimizers step over this).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Replaces all parameters; the length must match.
    pub fn set_params(&mut self, new: &[f32]) {
        assert_eq!(new.len(), self.params.len(), "parameter count mismatch");
        self.params.copy_from_slice(new);
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layout.len()
    }

    fn weights_of(&self, l: &LayerLayout) -> Matrix {
        Matrix::from_vec(l.fan_in, l.fan_out, self.params[l.w_off..l.b_off].to_vec())
    }

    fn bias_of(&self, l: &LayerLayout) -> &[f32] {
        &self.params[l.b_off..l.b_off + l.fan_out]
    }

    /// Computes logits for a batch (rows = samples, cols = features).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.spec.input, "input width mismatch");
        let mut a = x.clone();
        for (i, l) in self.layout.iter().enumerate() {
            let w = self.weights_of(l);
            let mut z = a.matmul(&w);
            z.add_row_bias(self.bias_of(l));
            if i + 1 < self.layout.len() {
                z.map_inplace(|v| v.max(0.0));
            }
            a = z;
        }
        a
    }

    /// Forward pass retaining every intermediate needed for backprop.
    pub fn forward_cached(&self, x: &Matrix) -> ForwardCache {
        assert_eq!(x.cols(), self.spec.input, "input width mismatch");
        let mut activations = Vec::with_capacity(self.layout.len());
        let mut pre_activations = Vec::with_capacity(self.layout.len());
        let mut a = x.clone();
        for (i, l) in self.layout.iter().enumerate() {
            let w = self.weights_of(l);
            let mut z = a.matmul(&w);
            z.add_row_bias(self.bias_of(l));
            activations.push(a);
            if i + 1 < self.layout.len() {
                let mut relu = z.clone();
                relu.map_inplace(|v| v.max(0.0));
                pre_activations.push(z);
                a = relu;
            } else {
                pre_activations.push(z.clone());
                a = z;
            }
        }
        ForwardCache {
            activations,
            pre_activations,
        }
    }

    /// Backpropagates `dlogits` (∂loss/∂logits, already averaged over the
    /// batch) through the cached forward pass, returning the flat gradient
    /// vector aligned with [`Mlp::params`].
    pub fn backward(&self, cache: &ForwardCache, dlogits: &Matrix) -> Vec<f32> {
        let mut grads = vec![0.0f32; self.params.len()];
        let mut dz = dlogits.clone();
        for (i, l) in self.layout.iter().enumerate().rev() {
            let a_in = &cache.activations[i];
            // dW = a_inᵀ @ dz ; db = column sums of dz.
            let dw = a_in.transpose_a_matmul(&dz);
            grads[l.w_off..l.b_off].copy_from_slice(dw.data());
            let db = dz.column_sums();
            grads[l.b_off..l.b_off + l.fan_out].copy_from_slice(&db);
            if i > 0 {
                // dA_prev = dz @ Wᵀ, then gate by ReLU'(z_prev).
                let w = self.weights_of(l);
                let mut da = dz.matmul_transpose_b(&w);
                let z_prev = &cache.pre_activations[i - 1];
                for (d, z) in da.data_mut().iter_mut().zip(z_prev.data().iter()) {
                    if *z <= 0.0 {
                        *d = 0.0;
                    }
                }
                dz = da;
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    fn tiny_spec() -> MlpSpec {
        MlpSpec {
            input: 4,
            hidden: vec![5],
            output: 3,
        }
    }

    #[test]
    fn param_count_matches_layout() {
        let spec = tiny_spec();
        assert_eq!(spec.param_count(), 4 * 5 + 5 + 5 * 3 + 3);
        let mlp = Mlp::new(spec.clone(), 0);
        assert_eq!(mlp.param_count(), spec.param_count());
        assert_eq!(
            MlpSpec::mnist_mlp().param_count(),
            784 * 128 + 128 + 128 * 64 + 64 + 64 * 10 + 10
        );
    }

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(tiny_spec(), 1);
        let x = Matrix::zeros(7, 4);
        let logits = mlp.forward(&x);
        assert_eq!(logits.rows(), 7);
        assert_eq!(logits.cols(), 3);
    }

    #[test]
    fn deterministic_construction() {
        let a = Mlp::new(tiny_spec(), 99);
        let b = Mlp::new(tiny_spec(), 99);
        assert_eq!(a.params(), b.params());
        let c = Mlp::new(tiny_spec(), 100);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn set_params_roundtrip() {
        let mut mlp = Mlp::new(tiny_spec(), 2);
        let saved: Vec<f32> = mlp.params().to_vec();
        mlp.params_mut().iter_mut().for_each(|p| *p += 1.0);
        assert_ne!(mlp.params(), &saved[..]);
        mlp.set_params(&saved);
        assert_eq!(mlp.params(), &saved[..]);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn set_params_checks_length() {
        let mut mlp = Mlp::new(tiny_spec(), 2);
        mlp.set_params(&[0.0; 3]);
    }

    #[test]
    fn forward_cached_matches_forward() {
        let mlp = Mlp::new(tiny_spec(), 5);
        let x = Matrix::from_vec(2, 4, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8]);
        let direct = mlp.forward(&x);
        let cached = mlp.forward_cached(&x);
        assert_eq!(cached.logits().data(), direct.data());
    }

    /// Numerical gradient check: the analytic backward pass must agree with
    /// central finite differences on every parameter of a tiny network.
    #[test]
    fn gradients_match_finite_differences() {
        let spec = MlpSpec {
            input: 3,
            hidden: vec![4],
            output: 2,
        };
        let mut mlp = Mlp::new(spec, 7);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.3, 0.8, -0.1, 0.9, 0.2]);
        let labels = [1usize, 0];

        let cache = mlp.forward_cached(&x);
        let (_, dlogits) = softmax_cross_entropy(cache.logits(), &labels);
        let analytic = mlp.backward(&cache, &dlogits);

        let eps = 1e-3f32;
        // Indexing is the point here: each parameter is perturbed in place.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..mlp.param_count() {
            let orig = mlp.params()[idx];
            mlp.params_mut()[idx] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&mlp.forward(&x), &labels);
            mlp.params_mut()[idx] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&mlp.forward(&x), &labels);
            mlp.params_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 2e-2,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn relu_gates_backward_flow() {
        // With all-negative pre-activations in the hidden layer, hidden
        // weight gradients must be zero.
        let spec = MlpSpec {
            input: 2,
            hidden: vec![2],
            output: 2,
        };
        let mut mlp = Mlp::new(spec, 3);
        // Force hidden layer pre-activations negative via biases.
        let w_end = 2 * 2;
        for b in &mut mlp.params_mut()[w_end..w_end + 2] {
            *b = -100.0;
        }
        let x = Matrix::from_vec(1, 2, vec![0.1, 0.1]);
        let cache = mlp.forward_cached(&x);
        let (_, dlogits) = softmax_cross_entropy(cache.logits(), &[0]);
        let grads = mlp.backward(&cache, &dlogits);
        // First-layer weight grads (offsets 0..4) are zero: ReLU is closed.
        assert!(grads[..4].iter().all(|&g| g == 0.0), "{:?}", &grads[..4]);
    }
}
