//! Loss functions with fused gradients.

use crate::tensor::Matrix;

/// Softmax cross-entropy over a batch of logits.
///
/// Returns `(mean_loss, dlogits)` where `dlogits` is ∂loss/∂logits already
/// divided by the batch size (i.e. ready to feed [`crate::mlp::Mlp::backward`]).
/// The softmax uses the max-subtraction trick for numerical stability.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let batch = logits.rows().max(1) as f32;
    let classes = logits.cols();
    let mut dlogits = Matrix::zeros(logits.rows(), classes);
    let mut total_loss = 0.0f64;

    #[allow(clippy::needless_range_loop)] // r indexes three parallel views
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let label = labels[r];
        assert!(label < classes, "label {label} out of range {classes}");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let out = dlogits.row_mut(r);
        for (o, &z) in out.iter_mut().zip(row.iter()) {
            let e = (z - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in out.iter_mut() {
            *o *= inv;
        }
        // loss = -log p[label]; clamp avoids -inf on exact zeros.
        let p = out[label].max(1e-12);
        total_loss += -(p.ln() as f64);
        // d/dz = (softmax - onehot) / batch
        out[label] -= 1.0;
        for o in out.iter_mut() {
            *o /= batch;
        }
    }
    ((total_loss / batch as f64) as f32, dlogits)
}

/// Mean squared error over a batch; returns `(mean_loss, dpred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.rows(), target.rows());
    assert_eq!(pred.cols(), target.cols());
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    let mut dpred = Matrix::zeros(pred.rows(), pred.cols());
    let mut total = 0.0f64;
    for ((d, &p), &t) in dpred
        .data_mut()
        .iter_mut()
        .zip(pred.data().iter())
        .zip(target.data().iter())
    {
        let diff = p - t;
        total += (diff * diff) as f64;
        *d = 2.0 * diff / n;
    }
    ((total / n as f64) as f32, dpred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Matrix::zeros(4, 10);
        let labels = [0usize, 3, 7, 9];
        let (loss, dlogits) = softmax_cross_entropy(&logits, &labels);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero (softmax minus one-hot).
        for r in 0..4 {
            let s: f32 = dlogits.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 1, 10.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-3, "loss {loss}");
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(bad_loss > 5.0, "loss {bad_loss}");
    }

    #[test]
    fn extreme_logits_are_stable() {
        let logits = Matrix::from_vec(1, 3, vec![1000.0, -1000.0, 999.0]);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(dlogits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 0.3, 0.9, -0.7]);
        let labels = [2usize, 0];
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let orig = logits.get(r, c);
                logits.set(r, c, orig + eps);
                let (lp, _) = softmax_cross_entropy(&logits, &labels);
                logits.set(r, c, orig - eps);
                let (lm, _) = softmax_cross_entropy(&logits, &labels);
                logits.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - dlogits.get(r, c)).abs() < 1e-3,
                    "({r},{c}): {numeric} vs {}",
                    dlogits.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = Matrix::zeros(1, 3);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    fn mse_basic() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (loss, dpred) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((dpred.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(dpred.get(0, 1), 0.0);
    }
}
