//! Optimizers stepping over flat parameter vectors.

/// An optimizer updates parameters in place from a gradient of equal length.
pub trait Optimizer: Send {
    /// Applies one update step.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);
    /// Clears accumulated state (momentum buffers etc.).
    fn reset(&mut self);
    /// Human-readable name for logs.
    fn name(&self) -> &'static str;
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor in `[0, 1)`; 0 disables momentum.
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        assert!((0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
        } else {
            if self.velocity.len() != params.len() {
                self.velocity = vec![0.0; params.len()];
            }
            for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
                *v = self.momentum * *v + g;
                *p -= self.lr * *v;
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam (Kingma & Ba, 2015) — the paper's use-case snippet optimizes with
/// Adam at lr 0.001.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, &g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0 and checks convergence.
    fn optimize_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = vec![0.0f32];
        for _ in 0..steps {
            let grads = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grads);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = optimize_quadratic(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.01);
        let mut momentum = Sgd::with_momentum(0.01, 0.9);
        let x_plain = optimize_quadratic(&mut plain, 50);
        let x_momentum = optimize_quadratic(&mut momentum, 50);
        assert!(
            (x_momentum - 3.0).abs() < (x_plain - 3.0).abs(),
            "momentum {x_momentum} vs plain {x_plain}"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = optimize_quadratic(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[1.0]);
        assert_eq!(opt.t, 1);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0f32; 2];
        opt.step(&mut p, &[1.0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first Adam step ≈ lr regardless of
        // gradient magnitude.
        let mut opt = Adam::new(0.5);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1e-4]);
        assert!((p[0].abs() - 0.5).abs() < 0.01, "step {}", p[0]);
    }
}
