//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initialization scheme for dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He/Kaiming uniform — suited to ReLU activations.
    HeUniform,
    /// Xavier/Glorot uniform — suited to symmetric activations.
    XavierUniform,
    /// All zeros (used in tests and for bias vectors).
    Zeros,
}

impl Init {
    /// Fills `weights` for a layer with `fan_in` inputs and `fan_out`
    /// outputs using the scheme, deterministically from `rng`.
    pub fn fill(self, weights: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
        match self {
            Init::Zeros => weights.fill(0.0),
            Init::HeUniform => {
                let bound = (6.0f64 / fan_in.max(1) as f64).sqrt() as f32;
                for w in weights {
                    *w = rng.gen_range(-bound..=bound);
                }
            }
            Init::XavierUniform => {
                let bound = (6.0f64 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
                for w in weights {
                    *w = rng.gen_range(-bound..=bound);
                }
            }
        }
    }
}

/// Creates a deterministic RNG for model initialization.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_uniform_respects_bound_and_seed() {
        let mut rng = seeded_rng(42);
        let mut w1 = vec![0.0f32; 1000];
        Init::HeUniform.fill(&mut w1, 100, 50, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w1.iter().all(|v| v.abs() <= bound + 1e-6));
        assert!(w1.iter().any(|v| v.abs() > bound * 0.5), "spread out");

        // Same seed → identical init.
        let mut rng2 = seeded_rng(42);
        let mut w2 = vec![0.0f32; 1000];
        Init::HeUniform.fill(&mut w2, 100, 50, &mut rng2);
        assert_eq!(w1, w2);
    }

    #[test]
    fn xavier_bound_uses_both_fans() {
        let mut rng = seeded_rng(1);
        let mut w = vec![0.0f32; 500];
        Init::XavierUniform.fill(&mut w, 300, 100, &mut rng);
        let bound = (6.0f32 / 400.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = seeded_rng(7);
        let mut w = vec![1.0f32; 8];
        Init::Zeros.fill(&mut w, 4, 2, &mut rng);
        assert!(w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        Init::HeUniform.fill(&mut a, 8, 8, &mut seeded_rng(1));
        Init::HeUniform.fill(&mut b, 8, 8, &mut seeded_rng(2));
        assert_ne!(a, b);
    }
}
