//! Flat-parameter serialization and vector arithmetic helpers.
//!
//! The FL transport format: a 12-byte header (magic, version, count) plus
//! little-endian `f32`s. Deliberately simple — the payload then flows
//! through MQTTFC batching/compression, which handles size.

/// Serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// Input shorter than the header or declared length.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::Truncated => write!(f, "truncated parameter blob"),
            ParamError::BadMagic => write!(f, "bad parameter blob magic"),
            ParamError::BadVersion(v) => write!(f, "unsupported parameter version {v}"),
        }
    }
}

impl std::error::Error for ParamError {}

const MAGIC: [u8; 3] = *b"SFP"; // "Sdflmq Flat Params"
const VERSION: u8 = 1;

/// Serializes a flat parameter vector.
pub fn serialize(params: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + params.len() * 4);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// [`serialize`] into a caller-provided buffer (cleared first), converting
/// chunks on `pool`'s workers. Byte-identical to the serial path — each
/// element's little-endian bytes land at a fixed offset regardless of
/// which worker writes them.
pub fn serialize_into(params: &[f32], pool: &crate::parallel::WorkerPool, out: &mut Vec<u8>) {
    use crate::codec::PAR_CHUNK;
    out.clear();
    out.reserve(8 + params.len() * 4);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    out.resize(8 + params.len() * 4, 0);
    let body = &mut out[8..];
    let tasks: Vec<std::sync::Mutex<(&[f32], &mut [u8])>> = params
        .chunks(PAR_CHUNK)
        .zip(body.chunks_mut(PAR_CHUNK * 4))
        .map(std::sync::Mutex::new)
        .collect();
    pool.run(tasks.len(), |i| {
        let mut t = tasks[i].lock().unwrap();
        let (src, dst) = &mut *t;
        for (p, o) in src.iter().zip(dst.chunks_exact_mut(4)) {
            o.copy_from_slice(&p.to_le_bytes());
        }
    });
}

/// [`deserialize`] into a caller-provided buffer (cleared first),
/// converting chunks on `pool`'s workers. Identical results to the serial
/// path.
pub fn deserialize_into(
    bytes: &[u8],
    pool: &crate::parallel::WorkerPool,
    out: &mut Vec<f32>,
) -> Result<(), ParamError> {
    use crate::codec::PAR_CHUNK;
    if bytes.len() < 8 {
        return Err(ParamError::Truncated);
    }
    if bytes[..3] != MAGIC {
        return Err(ParamError::BadMagic);
    }
    if bytes[3] != VERSION {
        return Err(ParamError::BadVersion(bytes[3]));
    }
    let count = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    if bytes.len() < 8 + count * 4 {
        return Err(ParamError::Truncated);
    }
    out.clear();
    out.resize(count, 0.0);
    let body = &bytes[8..8 + count * 4];
    let tasks: Vec<std::sync::Mutex<(&[u8], &mut [f32])>> = body
        .chunks(PAR_CHUNK * 4)
        .zip(out.chunks_mut(PAR_CHUNK))
        .map(std::sync::Mutex::new)
        .collect();
    pool.run(tasks.len(), |i| {
        let mut t = tasks[i].lock().unwrap();
        let (src, dst) = &mut *t;
        for (o, v) in src.chunks_exact(4).zip(dst.iter_mut()) {
            *v = f32::from_le_bytes(o.try_into().expect("4 bytes"));
        }
    });
    Ok(())
}

/// Deserializes a flat parameter vector.
pub fn deserialize(bytes: &[u8]) -> Result<Vec<f32>, ParamError> {
    if bytes.len() < 8 {
        return Err(ParamError::Truncated);
    }
    if bytes[..3] != MAGIC {
        return Err(ParamError::BadMagic);
    }
    if bytes[3] != VERSION {
        return Err(ParamError::BadVersion(bytes[3]));
    }
    let count = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    if bytes.len() < 8 + count * 4 {
        return Err(ParamError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let off = 8 + i * 4;
        out.push(f32::from_le_bytes([
            bytes[off],
            bytes[off + 1],
            bytes[off + 2],
            bytes[off + 3],
        ]));
    }
    Ok(out)
}

/// Euclidean distance between two parameter vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            (d * d) as f64
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// `dst += src * scale` (axpy).
pub fn axpy(dst: &mut [f32], src: &[f32], scale: f32) {
    assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s * scale;
    }
}

/// Scales a vector in place.
pub fn scale(v: &mut [f32], factor: f32) {
    for x in v {
        *x *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let params: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25 - 100.0).collect();
        let bytes = serialize(&params);
        assert_eq!(deserialize(&bytes).unwrap(), params);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(deserialize(&serialize(&[])).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn special_values_roundtrip() {
        let params = vec![
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
        ];
        let got = deserialize(&serialize(&params)).unwrap();
        assert_eq!(got.len(), params.len());
        for (a, b) in got.iter().zip(&params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_corruption() {
        let bytes = serialize(&[1.0, 2.0]);
        assert_eq!(deserialize(&bytes[..4]), Err(ParamError::Truncated));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(deserialize(&bad_magic), Err(ParamError::BadMagic));
        let mut bad_version = bytes.clone();
        bad_version[3] = 9;
        assert_eq!(deserialize(&bad_version), Err(ParamError::BadVersion(9)));
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 1);
        assert_eq!(deserialize(&short), Err(ParamError::Truncated));
    }

    #[test]
    fn vector_math() {
        assert!((l2_distance(&[0.0, 3.0], &[4.0, 0.0]) - 5.0).abs() < 1e-6);
        let mut dst = vec![1.0f32, 2.0];
        axpy(&mut dst, &[10.0, 20.0], 0.5);
        assert_eq!(dst, vec![6.0, 12.0]);
        scale(&mut dst, 2.0);
        assert_eq!(dst, vec![12.0, 24.0]);
    }
}
