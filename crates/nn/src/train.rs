//! Mini-batch training loop and evaluation.

use crate::loss::softmax_cross_entropy;
use crate::metrics::{accuracy, RunningMean};
use crate::mlp::Mlp;
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the data per call.
    pub epochs: usize,
    /// Seed for per-epoch shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            epochs: 1,
            shuffle_seed: 0,
        }
    }
}

/// Result of a training call.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

/// Runs one forward/backward/update step on a single batch.
/// Returns the batch loss.
pub fn train_batch(
    model: &mut Mlp,
    optimizer: &mut dyn Optimizer,
    x: &Matrix,
    labels: &[usize],
) -> f32 {
    let cache = model.forward_cached(x);
    let (loss, dlogits) = softmax_cross_entropy(cache.logits(), labels);
    let grads = model.backward(&cache, &dlogits);
    optimizer.step(model.params_mut(), &grads);
    loss
}

/// Trains for `config.epochs` passes over `(x, labels)` with shuffled
/// mini-batches.
pub fn train(
    model: &mut Mlp,
    optimizer: &mut dyn Optimizer,
    x: &Matrix,
    labels: &[usize],
    config: &TrainConfig,
) -> TrainReport {
    assert_eq!(x.rows(), labels.len(), "one label per sample");
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut indices: Vec<usize> = (0..x.rows()).collect();
    let mut rng = StdRng::seed_from_u64(config.shuffle_seed);
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut steps = 0usize;

    for _ in 0..config.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = RunningMean::new();
        for batch_idx in indices.chunks(config.batch_size) {
            let bx = x.gather_rows(batch_idx);
            let by: Vec<usize> = batch_idx.iter().map(|&i| labels[i]).collect();
            let loss = train_batch(model, optimizer, &bx, &by);
            epoch_loss.push(loss as f64);
            steps += 1;
        }
        epoch_losses.push(epoch_loss.mean());
    }
    TrainReport {
        epoch_losses,
        steps,
    }
}

/// Evaluates classification accuracy on `(x, labels)`, batching to bound
/// memory.
pub fn evaluate(model: &Mlp, x: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(x.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let batch = 256usize;
    let mut correct_weighted = 0.0f64;
    let mut r = 0usize;
    while r < x.rows() {
        let end = (r + batch).min(x.rows());
        let idx: Vec<usize> = (r..end).collect();
        let bx = x.gather_rows(&idx);
        let logits = model.forward(&bx);
        correct_weighted += accuracy(&logits, &labels[r..end]) * (end - r) as f64;
        r = end;
    }
    correct_weighted / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpSpec;
    use crate::optim::{Adam, Sgd};
    use rand::Rng;

    /// Two Gaussian blobs — linearly separable toy data.
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let center = if label == 0 { -1.0f32 } else { 1.0 };
            data.push(center + rng.gen_range(-0.4..0.4));
            data.push(center + rng.gen_range(-0.4..0.4));
            labels.push(label);
        }
        (Matrix::from_vec(n, 2, data), labels)
    }

    #[test]
    fn training_reduces_loss_and_learns_blobs() {
        let (x, y) = blobs(200, 7);
        let mut model = Mlp::new(
            MlpSpec {
                input: 2,
                hidden: vec![8],
                output: 2,
            },
            1,
        );
        let mut opt = Sgd::new(0.1);
        let report = train(
            &mut model,
            &mut opt,
            &x,
            &y,
            &TrainConfig {
                batch_size: 16,
                epochs: 20,
                shuffle_seed: 3,
            },
        );
        assert_eq!(report.epoch_losses.len(), 20);
        assert!(
            report.epoch_losses[19] < report.epoch_losses[0] * 0.5,
            "loss fell: {:?}",
            (report.epoch_losses[0], report.epoch_losses[19])
        );
        let acc = evaluate(&model, &x, &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn adam_learns_blobs_too() {
        let (x, y) = blobs(200, 8);
        let mut model = Mlp::new(
            MlpSpec {
                input: 2,
                hidden: vec![8],
                output: 2,
            },
            2,
        );
        let mut opt = Adam::new(0.01);
        train(
            &mut model,
            &mut opt,
            &x,
            &y,
            &TrainConfig {
                batch_size: 16,
                epochs: 15,
                shuffle_seed: 4,
            },
        );
        assert!(evaluate(&model, &x, &y) > 0.95);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = blobs(64, 9);
        let run = || {
            let mut model = Mlp::new(
                MlpSpec {
                    input: 2,
                    hidden: vec![4],
                    output: 2,
                },
                5,
            );
            let mut opt = Sgd::new(0.05);
            train(
                &mut model,
                &mut opt,
                &x,
                &y,
                &TrainConfig {
                    batch_size: 8,
                    epochs: 3,
                    shuffle_seed: 11,
                },
            );
            model.params().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluate_handles_partial_batches() {
        let (x, y) = blobs(300, 10); // 300 = 256 + 44 exercises the tail
        let model = Mlp::new(
            MlpSpec {
                input: 2,
                hidden: vec![4],
                output: 2,
            },
            6,
        );
        let acc = evaluate(&model, &x, &y);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let (x, y) = blobs(10, 1);
        let mut model = Mlp::new(
            MlpSpec {
                input: 2,
                hidden: vec![],
                output: 2,
            },
            1,
        );
        let mut opt = Sgd::new(0.1);
        let _ = train(
            &mut model,
            &mut opt,
            &x,
            &y,
            &TrainConfig {
                batch_size: 0,
                epochs: 1,
                shuffle_seed: 0,
            },
        );
    }
}
