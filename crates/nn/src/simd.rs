//! SIMD kernels for the update codecs.
//!
//! Everything here is **bit-identical** to the scalar reference paths in
//! [`crate::codec::reference`]: the vector code performs the same IEEE-754
//! operations at the same width in the same per-element order, so the only
//! reordering is *across* elements — and every cross-element combine is
//! either element-local (quantize, residual) or exactly associative for the
//! values involved (min/max, see [`minmax_finite`]). Chaos trace hashes pin
//! bit-exact globals, so this property is load-bearing, not cosmetic.
//!
//! SSE2 is part of the x86_64 baseline, so no runtime feature detection is
//! needed; other architectures fall back to the scalar bodies.

/// Exact dequantized grid point for int8: `lo + q * scale` in f64.
#[inline]
pub(crate) fn dequant_int8(lo: f32, scale: f32, q: u8) -> f64 {
    lo as f64 + q as f64 * scale as f64
}

/// Scalar int8 quantizer: round-half-up of `(t - lo) / scale` clamped to
/// `[0, 255]`, all in f64. The integer trunc-plus-carry formulation is
/// exactly `z.round().clamp(0.0, 255.0) as u8` for the in-range non-negative
/// `z` produced by a correct `(lo, scale)` pair, and is what the SIMD path
/// mirrors lane-for-lane.
#[inline]
fn quant_scalar(t: f32, lo: f32, scale: f32) -> u8 {
    let z = (t as f64 - lo as f64) / scale as f64;
    if z <= 0.0 {
        return 0;
    }
    let tr = z as u32;
    let q = tr.saturating_add(((z - tr as f64) >= 0.5) as u32);
    q.min(255) as u8
}

/// Fused scalar quantize + residual body: for each element, form the
/// error-compensated value `t = x + r`, emit its quantized byte, and store
/// the new residual `t - dequant(q)`.
pub(crate) fn int8_body_scalar(x: &[f32], r: &mut [f32], out: &mut [u8], lo: f32, scale: f32) {
    for ((v, r), o) in x.iter().zip(r.iter_mut()).zip(out.iter_mut()) {
        let t = v + *r;
        let q = if scale > 0.0 && t.is_finite() {
            quant_scalar(t, lo, scale)
        } else {
            0
        };
        *o = q;
        *r = if t.is_finite() {
            (t as f64 - dequant_int8(lo, scale, q)) as f32
        } else {
            0.0
        };
    }
}

/// Degenerate-scale body (`scale <= 0` or NaN): every byte is 0 and the
/// residual keeps the full distance to the (constant) grid point.
fn int8_body_degenerate(x: &[f32], r: &mut [f32], out: &mut [u8], lo: f32, scale: f32) {
    for ((v, r), o) in x.iter().zip(r.iter_mut()).zip(out.iter_mut()) {
        let t = v + *r;
        *o = 0;
        *r = if t.is_finite() {
            (t as f64 - dequant_int8(lo, scale, 0)) as f32
        } else {
            0.0
        };
    }
}

/// Fused int8 quantize + residual over one chunk. Dispatches to the SSE2
/// kernel on x86_64 and the scalar body elsewhere; both produce identical
/// bytes and identical residual bits.
pub(crate) fn int8_body(x: &[f32], r: &mut [f32], out: &mut [u8], lo: f32, scale: f32) {
    debug_assert_eq!(x.len(), r.len());
    debug_assert_eq!(x.len(), out.len());
    if scale <= 0.0 || scale.is_nan() {
        int8_body_degenerate(x, r, out, lo, scale);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is unconditionally available on x86_64, and the slices
    // were length-checked above.
    unsafe {
        x86::int8_body_sse2(x, r, out, lo, scale)
    }
    #[cfg(not(target_arch = "x86_64"))]
    int8_body_scalar(x, r, out, lo, scale)
}

/// Min/max of the finite error-compensated values `x[i] + r[i]`, identical
/// bit-for-bit to the serial loop
///
/// ```text
/// if t.is_finite() { lo = lo.min(t); hi = hi.max(t); }
/// ```
///
/// f32 min/max over non-NaN values is associative and commutative *except*
/// when the extremum is a zero reached with mixed signs: `min(-0.0, +0.0)`
/// is order-dependent ("second wins on equal"). The SIMD path therefore
/// re-runs the exact serial loop for whichever bound lands on ±0 — a cheap,
/// rare branch that restores order-independence without giving up the
/// vector fast path.
///
/// Returns `(lo, hi)`; `(INFINITY, NEG_INFINITY)` when no value is finite.
pub(crate) fn minmax_finite(x: &[f32], r: &[f32]) -> (f32, f32) {
    debug_assert_eq!(x.len(), r.len());
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 baseline; slices length-checked above.
        let (lo, hi) = unsafe { x86::minmax_finite_sse2(x, r) };
        let lo = if lo == 0.0 { minmax_serial(x, r).0 } else { lo };
        let hi = if hi == 0.0 { minmax_serial(x, r).1 } else { hi };
        (lo, hi)
    }
    #[cfg(not(target_arch = "x86_64"))]
    minmax_serial(x, r)
}

/// The exact serial min/max loop the codecs are specified against.
pub(crate) fn minmax_serial(x: &[f32], r: &[f32]) -> (f32, f32) {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for (v, rr) in x.iter().zip(r.iter()) {
        let t = v + rr;
        if t.is_finite() {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    (lo, hi)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Fused quantize + residual, 8 elements per step.
    ///
    /// Bit-identical to [`super::int8_body_scalar`]: every arithmetic op is
    /// the same IEEE-754 operation at the same width in the same order; the
    /// trunc-plus-carry rounding is reproduced with `cvttpd` + a `cmpge`
    /// mask, and the clamp with a saturating pack. Requires `scale > 0.0`
    /// (callers route degenerate scales to the scalar body first).
    ///
    /// # Safety
    /// SSE2 must be available (always true on x86_64) and the three slices
    /// must have equal lengths.
    pub unsafe fn int8_body_sse2(x: &[f32], r: &mut [f32], out: &mut [u8], lo: f32, scale: f32) {
        let n = x.len();
        let lo64 = _mm_set1_pd(lo as f64);
        let s64 = _mm_set1_pd(scale as f64);
        let half = _mm_set1_pd(0.5);
        let inf = _mm_set1_ps(f32::INFINITY);
        let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
        let max255 = _mm_set1_epi16(255);
        let mut i = 0;
        while i + 8 <= n {
            // Two groups of 4 lanes; q values collected as i32 lanes.
            let mut qgroups = [_mm_setzero_si128(); 2];
            for (g, qg) in qgroups.iter_mut().enumerate() {
                let off = i + g * 4;
                let xv = _mm_loadu_ps(x.as_ptr().add(off));
                let rv = _mm_loadu_ps(r.as_ptr().add(off));
                let t = _mm_add_ps(xv, rv);
                // finite: |t| < inf (NaN compares false).
                let finite = _mm_cmplt_ps(_mm_and_ps(t, absmask), inf);
                // Widen both halves to f64 and divide there, as the scalar
                // path does.
                let t_lo = _mm_cvtps_pd(t);
                let t_hi = _mm_cvtps_pd(_mm_movehl_ps(t, t));
                let z_lo = _mm_div_pd(_mm_sub_pd(t_lo, lo64), s64);
                let z_hi = _mm_div_pd(_mm_sub_pd(t_hi, lo64), s64);
                // Round-half-up via truncate + carry on frac >= 0.5. For
                // finite lanes z is in [~-255, ~510], inside i32 range, so
                // cvttpd is exact truncation.
                let tr_lo = _mm_cvttpd_epi32(z_lo);
                let tr_hi = _mm_cvttpd_epi32(z_hi);
                let frac_lo = _mm_sub_pd(z_lo, _mm_cvtepi32_pd(tr_lo));
                let frac_hi = _mm_sub_pd(z_hi, _mm_cvtepi32_pd(tr_hi));
                // cmpge mask is all-ones == -1; subtracting it adds the carry.
                let ge_lo = _mm_castpd_si128(_mm_cmpge_pd(frac_lo, half));
                let ge_hi = _mm_castpd_si128(_mm_cmpge_pd(frac_hi, half));
                // Compress the two 64-bit lane masks into 32-bit lanes 0,1.
                let ge_lo32 = _mm_shuffle_epi32(ge_lo, 0b1000);
                let ge_hi32 = _mm_shuffle_epi32(ge_hi, 0b1000);
                let q_lo = _mm_sub_epi32(tr_lo, ge_lo32);
                let q_hi = _mm_sub_epi32(tr_hi, ge_hi32);
                // [q0 q1 q2 q3] as i32 lanes.
                let q4 = _mm_unpacklo_epi64(q_lo, q_hi);
                // Zero non-finite lanes, then clamp to [0, 255]. The packs
                // to i16 saturates negatives to i16::MIN and the min against
                // 255 handles the top; unpack against zero restores i32.
                let q4 = _mm_and_si128(q4, _mm_castps_si128(finite));
                let q4 = _mm_packs_epi32(q4, q4);
                let q4 = _mm_min_epi16(_mm_max_epi16(q4, _mm_setzero_si128()), max255);
                let q4 = _mm_unpacklo_epi16(q4, _mm_setzero_si128());
                *qg = q4;
                // Residual: (t - (lo + q*scale)) in f64, narrowed to f32,
                // zeroed for non-finite t — exactly the scalar expression.
                let q_lo64 = _mm_cvtepi32_pd(q4);
                let q_hi64 = _mm_cvtepi32_pd(_mm_shuffle_epi32(q4, 0b1110));
                let deq_lo = _mm_add_pd(_mm_mul_pd(q_lo64, s64), lo64);
                let deq_hi = _mm_add_pd(_mm_mul_pd(q_hi64, s64), lo64);
                let res_lo = _mm_cvtpd_ps(_mm_sub_pd(t_lo, deq_lo));
                let res_hi = _mm_cvtpd_ps(_mm_sub_pd(t_hi, deq_hi));
                let res = _mm_movelh_ps(res_lo, res_hi);
                let res = _mm_and_ps(res, finite);
                _mm_storeu_ps(r.as_mut_ptr().add(off), res);
            }
            // Pack the 8 q lanes down to bytes and store them.
            let q16 = _mm_packs_epi32(qgroups[0], qgroups[1]);
            let q8 = _mm_packus_epi16(q16, q16);
            _mm_storel_epi64(out.as_mut_ptr().add(i) as *mut __m128i, q8);
            i += 8;
        }
        super::int8_body_scalar(&x[i..], &mut r[i..], &mut out[i..], lo, scale);
    }

    /// Vector min/max of finite `x[i] + r[i]`. Non-finite lanes are
    /// replaced by the identity element before the lane-wise min/max, which
    /// matches the serial loop's `if t.is_finite()` guard. The caller fixes
    /// up ±0 extrema (the one non-associative case).
    ///
    /// # Safety
    /// SSE2 must be available (always true on x86_64) and the slices must
    /// have equal lengths.
    pub unsafe fn minmax_finite_sse2(x: &[f32], r: &[f32]) -> (f32, f32) {
        let n = x.len();
        let inf = _mm_set1_ps(f32::INFINITY);
        let ninf = _mm_set1_ps(f32::NEG_INFINITY);
        let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
        let mut lov = inf;
        let mut hiv = ninf;
        let mut i = 0;
        while i + 4 <= n {
            let t = _mm_add_ps(
                _mm_loadu_ps(x.as_ptr().add(i)),
                _mm_loadu_ps(r.as_ptr().add(i)),
            );
            let finite = _mm_cmplt_ps(_mm_and_ps(t, absmask), inf);
            // Non-finite lanes become +inf for min / -inf for max: inert.
            let tl = _mm_or_ps(_mm_and_ps(finite, t), _mm_andnot_ps(finite, inf));
            let th = _mm_or_ps(_mm_and_ps(finite, t), _mm_andnot_ps(finite, ninf));
            lov = _mm_min_ps(lov, tl);
            hiv = _mm_max_ps(hiv, th);
            i += 4;
        }
        let mut lanes_lo = [0f32; 4];
        let mut lanes_hi = [0f32; 4];
        _mm_storeu_ps(lanes_lo.as_mut_ptr(), lov);
        _mm_storeu_ps(lanes_hi.as_mut_ptr(), hiv);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for g in 0..4 {
            lo = lo.min(lanes_lo[g]);
            hi = hi.max(lanes_hi[g]);
        }
        let (tail_lo, tail_hi) = super::minmax_serial(&x[i..], &r[i..]);
        (lo.min(tail_lo), hi.max(tail_hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_int8(x: &[f32], r0: &[f32], lo: f32, scale: f32) {
        let mut r_a = r0.to_vec();
        let mut r_b = r0.to_vec();
        let mut o_a = vec![0u8; x.len()];
        let mut o_b = vec![0u8; x.len()];
        int8_body_scalar(x, &mut r_a, &mut o_a, lo, scale);
        int8_body(x, &mut r_b, &mut o_b, lo, scale);
        assert_eq!(o_a, o_b, "q bytes differ (lo={lo}, scale={scale})");
        let ra: Vec<u32> = r_a.iter().map(|v| v.to_bits()).collect();
        let rb: Vec<u32> = r_b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ra, rb, "residual bits differ (lo={lo}, scale={scale})");
    }

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn int8_matches_scalar_on_smooth_data() {
        let n = 10_007;
        let x: Vec<f32> = (0..n)
            .map(|i| ((i as f32) * 0.37).sin() * (1.0 + (i % 17) as f32 * 0.25))
            .collect();
        let r0 = vec![0.001f32; n];
        let (lo, hi) = minmax_serial(&x, &r0);
        let scale = ((hi as f64 - lo as f64) / 255.0) as f32;
        check_int8(&x, &r0, lo, scale);
    }

    #[test]
    fn int8_matches_scalar_on_adversarial_values() {
        // Grid points, midpoints (the rounding decision boundary), their
        // ulp-neighbours, non-finite values, zeros.
        let lo = -3.25f32;
        let scale = 0.04321f32;
        let mut adv: Vec<f32> = Vec::new();
        for q in 0..=255u32 {
            let mid = (lo as f64 + (q as f64 + 0.5) * scale as f64) as f32;
            let grid = (lo as f64 + q as f64 * scale as f64) as f32;
            adv.push(mid);
            adv.push(grid);
            for ulp in [-2i64, -1, 1, 2] {
                adv.push(f32::from_bits((mid.to_bits() as i64 + ulp) as u32));
            }
        }
        adv.extend([f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 0.0, -0.0, lo]);
        // Values below lo (negative z) cannot arise from a correctly
        // computed (lo, scale) pair but the bodies must still agree.
        adv.extend([
            lo - 0.3 * scale,
            lo - scale,
            (lo as f64 - 100.5 * scale as f64) as f32,
            lo - 1.0,
        ]);
        let r0 = vec![0.0f32; adv.len()];
        check_int8(&adv, &r0, lo, scale);
        check_int8(&adv, &r0, 0.0, 0.0);
        check_int8(&adv, &r0, -3e38, ((3e38f64 - (-3e38f64)) / 255.0) as f32);
        check_int8(&adv, &r0, lo, f32::NAN);
    }

    #[test]
    fn int8_matches_scalar_on_random_bit_patterns() {
        let mut rng = xorshift(0x9e37_79b9_7f4a_7c15);
        for _ in 0..50 {
            let len = 1 + (rng() % 200) as usize;
            let xs: Vec<f32> = (0..len).map(|_| f32::from_bits(rng() as u32)).collect();
            let rs: Vec<f32> = (0..len)
                .map(|_| ((rng() % 2000) as f32 - 1000.0) / 997.0)
                .collect();
            let (mut lo, mut hi) = minmax_serial(&xs, &rs);
            if !lo.is_finite() || !hi.is_finite() {
                lo = 0.0;
                hi = 0.0;
            }
            let scale = ((hi as f64 - lo as f64) / 255.0) as f32;
            check_int8(&xs, &rs, lo, scale);
        }
    }

    #[test]
    fn minmax_matches_serial_including_signed_zero_ties() {
        let cases: Vec<Vec<f32>> = vec![
            vec![],
            vec![1.0],
            vec![f32::NAN, f32::INFINITY],
            vec![0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, -0.0],
            vec![-0.0, 0.0, -0.0, 0.0, 0.0],
            vec![-0.0; 9],
            vec![0.0; 9],
            vec![-1.0, -0.0, 0.0, 2.0, f32::NAN, -0.0],
            (0..1000).map(|i| ((i * 37) % 101) as f32 - 50.0).collect(),
        ];
        for x in &cases {
            let r = vec![0.0f32; x.len()];
            let (lo_s, hi_s) = minmax_serial(x, &r);
            let (lo_p, hi_p) = minmax_finite(x, &r);
            assert_eq!(lo_s.to_bits(), lo_p.to_bits(), "lo for {x:?}");
            assert_eq!(hi_s.to_bits(), hi_p.to_bits(), "hi for {x:?}");
        }
    }

    #[test]
    fn minmax_matches_serial_on_random_data() {
        let mut rng = xorshift(0xdead_beef_cafe_f00d);
        for _ in 0..100 {
            let len = (rng() % 64) as usize;
            // Mix of ordinary values, zeros of both signs and non-finites.
            let x: Vec<f32> = (0..len)
                .map(|_| match rng() % 6 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f32::NAN,
                    3 => f32::INFINITY,
                    _ => ((rng() % 2000) as f32 - 1000.0) / 3.0,
                })
                .collect();
            let r = vec![0.0f32; len];
            let (lo_s, hi_s) = minmax_serial(&x, &r);
            let (lo_p, hi_p) = minmax_finite(&x, &r);
            assert_eq!(lo_s.to_bits(), lo_p.to_bits());
            assert_eq!(hi_s.to_bits(), hi_p.to_bits());
        }
    }
}
