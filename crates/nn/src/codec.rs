//! Pluggable model-update codecs for the FL data plane.
//!
//! The dense little-endian `f32` format ([`crate::params`]) stays the
//! wire-compatible default; the lossy codecs trade fidelity for uplink
//! bytes, the lever the massive-IoT literature identifies as binding fleet
//! size (per-client uplink, not compute):
//!
//! * **fp16** — half-precision truncation, 2x smaller, ~1e-3 relative
//!   error;
//! * **int8** — affine (min/scale) quantization over the whole vector,
//!   ~4x smaller, error ≤ half a quantization step per element;
//! * **top-k** — sparse *delta* against a shared base vector (the last
//!   applied global model): only the `k` largest-magnitude delta
//!   coordinates ship, ~16x smaller at the default density.
//!
//! Lossy codecs compose with **error feedback**: the caller keeps a
//! per-model residual vector, the codec folds it into the value it
//! encodes and writes back what the encoding dropped, so quantization
//! error from round *r* is retried in round *r+1* instead of compounding
//! (the standard EF-SGD construction). The residual lives with the model
//! (`ModelController` in `sdflmq-core`), not in the codec — codecs are
//! stateless values.
//!
//! Every encoding is self-describing (own magic + version + element
//! count), so a receiver can [`UpdateCodec::sniff`] a payload even when
//! transport metadata is missing or wrong.
//!
//! ## Parallel, but bit-identical
//!
//! Encode and decode run chunk-parallel on a [`WorkerPool`]: the vector is
//! split into fixed [`PAR_CHUNK`]-element chunks (a pure function of the
//! length, never of the thread count) and each chunk is processed
//! independently. Every byte of output — and every residual bit — is
//! **identical to the serial reference** at any thread count:
//!
//! * fp16/int8 quantization and residual update are element-local;
//! * the int8 min/max reduction is exactly associative for the values it
//!   sees (non-NaN, with a rare serial re-scan when the extremum is ±0,
//!   the one order-dependent case);
//! * top-k selection uses per-chunk candidates merged under the same
//!   strict total order as the serial sort, so the selected *set* — and
//!   therefore the index-sorted payload — is the same.
//!
//! The serial implementations survive verbatim in [`reference`] as the
//! differential-test oracle. Chaos traces hash bit-exact global models, so
//! this equivalence is load-bearing: `data_plane_threads` must never
//! change a simulation outcome.

use crate::parallel::{self, WorkerPool};
use crate::params;
use crate::simd;
use std::sync::Mutex;

/// Stable one-byte codec identifiers, carried in blob metadata and in the
/// session-negotiation `codec` field. Wire-stable: never renumber.
pub const CODEC_DENSE: u8 = 0;
/// Half-precision codec id.
pub const CODEC_FP16: u8 = 1;
/// Affine int8 codec id.
pub const CODEC_INT8: u8 = 2;
/// Top-k sparse-delta codec id.
pub const CODEC_TOPK: u8 = 3;

const FP16_MAGIC: [u8; 3] = *b"SFH"; // "Sdflmq Flat Half"
const INT8_MAGIC: [u8; 3] = *b"SFQ"; // "Sdflmq Flat Quantized"
const TOPK_MAGIC: [u8; 3] = *b"SFS"; // "Sdflmq Flat Sparse"
const CODEC_VERSION: u8 = 1;

/// Default top-k density: coordinates kept per 1000 (3%).
pub const DEFAULT_TOPK_PER_MILLE: u16 = 30;

/// Fixed chunk size (elements) for parallel codec kernels.
///
/// Determinism-critical: chunk boundaries depend only on the vector
/// length, so any thread count walks the same chunks and produces the
/// same bytes. 8192 elements ≈ 32 KiB of f32 — large enough to amortize
/// dispatch, small enough to load-balance a ~100k-parameter model.
pub const PAR_CHUNK: usize = 8192;

/// Largest finite binary16 value (fp16 targets saturate here).
const F16_MAX: f32 = 65504.0;

/// One chunk of a parallel encode pass: `(input, residual, output bytes)`,
/// wrapped in a `Mutex` so disjoint chunks can be handed to pool workers.
type EncodeChunk<'a> = Mutex<(&'a [f32], &'a mut [f32], &'a mut [u8])>;

/// One chunk of the compensated-delta pass: `((input, base), residual)`.
type DeltaChunk<'a> = Mutex<((&'a [f32], &'a [f32]), &'a mut [f32])>;

/// Largest element count a zero-base sparse frame may declare (64M
/// parameters ≈ 256 MB decoded) — the header is attacker-controlled and,
/// uniquely for the sparse format, not bounded by the payload length.
pub const MAX_SPARSE_ELEMS: usize = 1 << 26;

/// Decoding errors for the update codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than its header or declared contents.
    Truncated,
    /// Payload magic does not match the codec asked to decode it.
    WrongCodec,
    /// Unsupported encoding version.
    BadVersion(u8),
    /// A sparse index is out of range or not strictly increasing.
    BadIndex,
    /// A delta payload was decoded against a base of the wrong length.
    BaseMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated update payload"),
            CodecError::WrongCodec => write!(f, "payload magic does not match codec"),
            CodecError::BadVersion(v) => write!(f, "unsupported update-codec version {v}"),
            CodecError::BadIndex => write!(f, "bad sparse index in update payload"),
            CodecError::BaseMismatch => write!(f, "delta base length mismatch"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<params::ParamError> for CodecError {
    fn from(e: params::ParamError) -> CodecError {
        match e {
            params::ParamError::Truncated => CodecError::Truncated,
            params::ParamError::BadMagic => CodecError::WrongCodec,
            params::ParamError::BadVersion(v) => CodecError::BadVersion(v),
        }
    }
}

/// A model-update encoding. `Copy` by design: a codec is a *value*
/// (negotiated per session and stamped into role specs), all mutable
/// state — the error-feedback residual — stays with the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateCodec {
    /// Raw little-endian `f32`s — the wire-compatible default, byte-
    /// identical to [`crate::params::serialize`].
    #[default]
    Dense,
    /// Half-precision floats (2 bytes/element).
    Fp16,
    /// Affine int8 quantization: one `(min, scale)` pair per vector,
    /// 1 byte/element.
    Int8,
    /// Top-k sparse delta against a shared base vector: only the largest-
    /// magnitude `per_mille`/1000 of delta coordinates ship.
    TopK {
        /// Coordinates kept per 1000 elements (clamped to ≥ 1 element).
        per_mille: u16,
    },
}

impl UpdateCodec {
    /// The top-k codec at its default density.
    pub const TOP_K_DEFAULT: UpdateCodec = UpdateCodec::TopK {
        per_mille: DEFAULT_TOPK_PER_MILLE,
    };

    /// The codec's wire id.
    pub fn id(self) -> u8 {
        match self {
            UpdateCodec::Dense => CODEC_DENSE,
            UpdateCodec::Fp16 => CODEC_FP16,
            UpdateCodec::Int8 => CODEC_INT8,
            UpdateCodec::TopK { .. } => CODEC_TOPK,
        }
    }

    /// Builds a codec from a wire id (top-k at default density).
    pub fn from_id(id: u8) -> Option<UpdateCodec> {
        match id {
            CODEC_DENSE => Some(UpdateCodec::Dense),
            CODEC_FP16 => Some(UpdateCodec::Fp16),
            CODEC_INT8 => Some(UpdateCodec::Int8),
            CODEC_TOPK => Some(UpdateCodec::TOP_K_DEFAULT),
            _ => None,
        }
    }

    /// Stable name for configs and reports.
    pub fn name(self) -> &'static str {
        match self {
            UpdateCodec::Dense => "dense",
            UpdateCodec::Fp16 => "fp16",
            UpdateCodec::Int8 => "int8",
            UpdateCodec::TopK { .. } => "topk",
        }
    }

    /// True if payloads are deltas against a shared base vector.
    pub fn is_delta(self) -> bool {
        matches!(self, UpdateCodec::TopK { .. })
    }

    /// True if decode(encode(x)) may differ from x.
    pub fn is_lossy(self) -> bool {
        !matches!(self, UpdateCodec::Dense)
    }

    /// Sniffs a payload's codec from its magic bytes.
    pub fn sniff(bytes: &[u8]) -> Option<UpdateCodec> {
        let magic = bytes.get(..3)?;
        if magic == b"SFP" {
            Some(UpdateCodec::Dense)
        } else if magic == FP16_MAGIC {
            Some(UpdateCodec::Fp16)
        } else if magic == INT8_MAGIC {
            Some(UpdateCodec::Int8)
        } else if magic == TOPK_MAGIC {
            Some(UpdateCodec::TOP_K_DEFAULT)
        } else {
            None
        }
    }

    /// Encodes `params`, folding in and updating the caller's error-
    /// feedback `residual` (resized to `params.len()`; lossless codecs
    /// leave it untouched). For delta codecs, `base` is the shared base
    /// vector (`None` = all zeros, the round-1 state); non-delta codecs
    /// ignore it.
    ///
    /// Runs on the process-wide worker pool; output is bit-identical to
    /// [`reference::encode`] at any thread count. Use
    /// [`UpdateCodec::encode_into`] to control the pool and reuse buffers.
    pub fn encode(self, x: &[f32], base: Option<&[f32]>, residual: &mut Vec<f32>) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(x, base, residual, &WorkerPool::global(), &mut out);
        out
    }

    /// Encodes without error feedback (aggregates relayed up the
    /// hierarchy are one-shot: there is no next round to retry their
    /// truncation error in).
    pub fn encode_stateless(self, x: &[f32], base: Option<&[f32]>) -> Vec<u8> {
        let mut residual = Vec::new();
        self.encode(x, base, &mut residual)
    }

    /// [`UpdateCodec::encode`] into a caller-provided buffer (cleared
    /// first), running chunk kernels on `pool`.
    pub fn encode_into(
        self,
        x: &[f32],
        base: Option<&[f32]>,
        residual: &mut Vec<f32>,
        pool: &WorkerPool,
        out: &mut Vec<u8>,
    ) {
        match self {
            UpdateCodec::Dense => params::serialize_into(x, pool, out),
            UpdateCodec::Fp16 => {
                residual.resize(x.len(), 0.0);
                out.clear();
                out.reserve(8 + x.len() * 2);
                out.extend_from_slice(&FP16_MAGIC);
                out.push(CODEC_VERSION);
                out.extend_from_slice(&(x.len() as u32).to_le_bytes());
                out.resize(8 + x.len() * 2, 0);
                let body = &mut out[8..];
                let tasks: Vec<EncodeChunk<'_>> = x
                    .chunks(PAR_CHUNK)
                    .zip(residual.chunks_mut(PAR_CHUNK))
                    .zip(body.chunks_mut(PAR_CHUNK * 2))
                    .map(|((x, r), o)| Mutex::new((x, r, o)))
                    .collect();
                pool.run(tasks.len(), |i| {
                    let mut t = tasks[i].lock().unwrap();
                    let (x, r, o) = &mut *t;
                    fp16_encode_chunk(x, r, o);
                });
            }
            UpdateCodec::Int8 => {
                let n = x.len();
                residual.resize(n, 0.0);
                // Pass 1: min/max of the compensated targets v + r. Chunk
                // minima combine in chunk order; min/max is associative
                // for everything this filtered reduction can see except a
                // ±0 extremum, which defers to the serial loop.
                let chunks = parallel::chunk_count(n, PAR_CHUNK);
                let bounds: Vec<Mutex<(f32, f32)>> = (0..chunks)
                    .map(|_| Mutex::new((f32::INFINITY, f32::NEG_INFINITY)))
                    .collect();
                {
                    let res = &residual[..];
                    pool.run(chunks, |i| {
                        let rg = parallel::chunk_range(n, PAR_CHUNK, i);
                        *bounds[i].lock().unwrap() = simd::minmax_finite(&x[rg.clone()], &res[rg]);
                    });
                }
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for b in &bounds {
                    let (l, h) = *b.lock().unwrap();
                    lo = lo.min(l);
                    hi = hi.max(h);
                }
                if lo == 0.0 {
                    lo = simd::minmax_serial(x, residual).0;
                }
                if hi == 0.0 {
                    hi = simd::minmax_serial(x, residual).1;
                }
                if !lo.is_finite() || !hi.is_finite() {
                    (lo, hi) = (0.0, 0.0);
                }
                // The spread is computed in f64: hi − lo can overflow f32
                // (e.g. ±3e38), and an infinite scale would decode every
                // element to NaN and poison the residual.
                let scale = ((hi as f64 - lo as f64) / 255.0) as f32;
                out.clear();
                out.reserve(16 + n);
                out.extend_from_slice(&INT8_MAGIC);
                out.push(CODEC_VERSION);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&scale.to_le_bytes());
                out.resize(16 + n, 0);
                let body = &mut out[16..];
                let tasks: Vec<EncodeChunk<'_>> = x
                    .chunks(PAR_CHUNK)
                    .zip(residual.chunks_mut(PAR_CHUNK))
                    .zip(body.chunks_mut(PAR_CHUNK))
                    .map(|((x, r), o)| Mutex::new((x, r, o)))
                    .collect();
                pool.run(tasks.len(), |i| {
                    let mut t = tasks[i].lock().unwrap();
                    let (x, r, o) = &mut *t;
                    simd::int8_body(x, r, o, lo, scale);
                });
            }
            UpdateCodec::TopK { per_mille } => {
                let n = x.len();
                residual.resize(n, 0.0);
                // Compensated delta, computed in place: after this pass
                // `residual[i]` holds e[i] = x[i] − base[i] + r[i], what we
                // *owe* the receiver. Element-local, so chunking is free.
                match base {
                    Some(b) => {
                        debug_assert_eq!(b.len(), n);
                        let tasks: Vec<DeltaChunk<'_>> = x
                            .chunks(PAR_CHUNK)
                            .zip(b.chunks(PAR_CHUNK))
                            .zip(residual.chunks_mut(PAR_CHUNK))
                            .map(Mutex::new)
                            .collect();
                        pool.run(tasks.len(), |i| {
                            let mut t = tasks[i].lock().unwrap();
                            let ((x, b), r) = &mut *t;
                            for ((v, b), r) in x.iter().zip(b.iter()).zip(r.iter_mut()) {
                                // Evaluation order pinned to the serial
                                // reference — do not fold into `+=`.
                                #[allow(clippy::assign_op_pattern)]
                                {
                                    *r = v - b + *r;
                                }
                            }
                        });
                    }
                    None => {
                        let tasks: Vec<Mutex<(&[f32], &mut [f32])>> = x
                            .chunks(PAR_CHUNK)
                            .zip(residual.chunks_mut(PAR_CHUNK))
                            .map(Mutex::new)
                            .collect();
                        pool.run(tasks.len(), |i| {
                            let mut t = tasks[i].lock().unwrap();
                            let (x, r) = &mut *t;
                            for (v, r) in x.iter().zip(r.iter_mut()) {
                                // Evaluation order pinned to the serial
                                // reference — do not fold into `+=`.
                                #[allow(clippy::assign_op_pattern)]
                                {
                                    *r = v + *r;
                                }
                            }
                        });
                    }
                }
                let k = top_k_count(n, per_mille);
                let mut order: Vec<u32>;
                if k < n {
                    // Serial-equivalent selection: the global top-k set
                    // intersected with any chunk has at most k elements,
                    // each necessarily in that chunk's own top-k under the
                    // same strict total order (|e| desc, index asc). So k
                    // candidates per chunk always cover the true set, and
                    // the global merge re-selects exactly it.
                    let chunks = parallel::chunk_count(n, PAR_CHUNK);
                    let cand: Vec<Mutex<Vec<u32>>> =
                        (0..chunks).map(|_| Mutex::new(Vec::new())).collect();
                    {
                        let e = &residual[..];
                        pool.run(chunks, |i| {
                            let rg = parallel::chunk_range(n, PAR_CHUNK, i);
                            let mut idx: Vec<u32> = (rg.start as u32..rg.end as u32).collect();
                            if k < idx.len() {
                                idx.select_nth_unstable_by(k, |&a, &b| topk_cmp(e, a, b));
                                idx.truncate(k);
                            }
                            *cand[i].lock().unwrap() = idx;
                        });
                    }
                    order = Vec::with_capacity(chunks * k);
                    for c in &cand {
                        order.append(&mut c.lock().unwrap());
                    }
                    let e = &residual[..];
                    if k < order.len() {
                        order.select_nth_unstable_by(k, |&a, &b| topk_cmp(e, a, b));
                        order.truncate(k);
                    }
                } else {
                    order = (0..n as u32).collect();
                }
                order.sort_unstable();
                out.clear();
                out.reserve(12 + order.len() * 8);
                out.extend_from_slice(&TOPK_MAGIC);
                out.push(CODEC_VERSION);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&(order.len() as u32).to_le_bytes());
                for idx in &order {
                    let i = *idx as usize;
                    out.extend_from_slice(&idx.to_le_bytes());
                    out.extend_from_slice(&residual[i].to_le_bytes());
                    residual[i] = 0.0; // shipped exactly: nothing owed
                }
            }
        }
    }

    /// Decodes a payload back to a full-length vector. For delta codecs,
    /// `base` must be the same base the sender encoded against (`None` =
    /// all zeros); non-delta codecs ignore it.
    ///
    /// Runs on the process-wide worker pool; results are identical to
    /// [`reference::decode`] at any thread count. Use
    /// [`UpdateCodec::decode_into`] to control the pool and reuse buffers.
    pub fn decode(self, bytes: &[u8], base: Option<&[f32]>) -> Result<Vec<f32>, CodecError> {
        let mut out = Vec::new();
        self.decode_into(bytes, base, &WorkerPool::global(), &mut out)?;
        Ok(out)
    }

    /// [`UpdateCodec::decode`] into a caller-provided buffer (cleared
    /// first), running chunk kernels on `pool`.
    pub fn decode_into(
        self,
        bytes: &[u8],
        base: Option<&[f32]>,
        pool: &WorkerPool,
        out: &mut Vec<f32>,
    ) -> Result<(), CodecError> {
        match self {
            UpdateCodec::Dense => Ok(params::deserialize_into(bytes, pool, out)?),
            UpdateCodec::Fp16 => {
                let (count, body) = check_header(bytes, &FP16_MAGIC)?;
                if body.len() < count * 2 {
                    return Err(CodecError::Truncated);
                }
                out.clear();
                out.resize(count, 0.0);
                let tasks: Vec<Mutex<(&[u8], &mut [f32])>> = body[..count * 2]
                    .chunks(PAR_CHUNK * 2)
                    .zip(out.chunks_mut(PAR_CHUNK))
                    .map(Mutex::new)
                    .collect();
                pool.run(tasks.len(), |i| {
                    let mut t = tasks[i].lock().unwrap();
                    let (src, dst) = &mut *t;
                    for (o, v) in src.chunks_exact(2).zip(dst.iter_mut()) {
                        *v = f16_to_f32(u16::from_le_bytes([o[0], o[1]]));
                    }
                });
                Ok(())
            }
            UpdateCodec::Int8 => {
                let (count, body) = check_header(bytes, &INT8_MAGIC)?;
                if body.len() < 8 + count {
                    return Err(CodecError::Truncated);
                }
                let lo = f32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
                let scale = f32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
                out.clear();
                out.resize(count, 0.0);
                let tasks: Vec<Mutex<(&[u8], &mut [f32])>> = body[8..8 + count]
                    .chunks(PAR_CHUNK)
                    .zip(out.chunks_mut(PAR_CHUNK))
                    .map(Mutex::new)
                    .collect();
                pool.run(tasks.len(), |i| {
                    let mut t = tasks[i].lock().unwrap();
                    let (src, dst) = &mut *t;
                    for (q, v) in src.iter().zip(dst.iter_mut()) {
                        *v = dequant_int8(lo, scale, *q) as f32;
                    }
                });
                Ok(())
            }
            UpdateCodec::TopK { .. } => {
                // Sparse payloads are small (k ≪ n) and sequential by
                // construction (strictly increasing indices): no parallel
                // pass is worth its dispatch here.
                let (count, body) = check_header(bytes, &TOPK_MAGIC)?;
                if body.len() < 4 {
                    return Err(CodecError::Truncated);
                }
                let nnz = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
                if nnz > count {
                    return Err(CodecError::BadIndex);
                }
                let pairs = &body[4..];
                if pairs.len() < nnz * 8 {
                    return Err(CodecError::Truncated);
                }
                out.clear();
                match base {
                    Some(b) => {
                        if b.len() != count {
                            return Err(CodecError::BaseMismatch);
                        }
                        out.extend_from_slice(b);
                    }
                    None => {
                        // The other codecs tie `count` to the payload
                        // length; a sparse frame has no such tie, so the
                        // zero-base allocation is the one place a
                        // 24-byte frame could demand gigabytes. Cap it.
                        if count > MAX_SPARSE_ELEMS {
                            return Err(CodecError::BadIndex);
                        }
                        out.resize(count, 0.0);
                    }
                }
                let mut prev: Option<u32> = None;
                for p in 0..nnz {
                    let off = p * 8;
                    let idx = u32::from_le_bytes(pairs[off..off + 4].try_into().expect("4 bytes"));
                    let val =
                        f32::from_le_bytes(pairs[off + 4..off + 8].try_into().expect("4 bytes"));
                    if idx as usize >= count || prev.is_some_and(|p| idx <= p) {
                        return Err(CodecError::BadIndex);
                    }
                    prev = Some(idx);
                    out[idx as usize] += val;
                }
                Ok(())
            }
        }
    }
}

/// One fp16 chunk: element-local encode + residual update, shared by the
/// parallel path at every thread count.
fn fp16_encode_chunk(x: &[f32], residual: &mut [f32], out: &mut [u8]) {
    for ((v, r), o) in x
        .iter()
        .zip(residual.iter_mut())
        .zip(out.chunks_exact_mut(2))
    {
        let target = v + *r;
        if target.is_finite() {
            // Saturate instead of converting to ±inf: an overflowing
            // target would otherwise leave an infinite residual
            // (target − inf) that poisons every later round.
            let clamped = target.clamp(-F16_MAX, F16_MAX);
            let h = f32_to_f16(clamped);
            o.copy_from_slice(&h.to_le_bytes());
            *r = target - f16_to_f32(h);
        } else {
            // Non-finite model values ship as-is; feeding them back
            // would turn the residual into NaN.
            o.copy_from_slice(&f32_to_f16(target).to_le_bytes());
            *r = 0.0;
        }
    }
}

/// The top-k selection order: largest |e| first, ties break on index.
/// Strict and total, which is what makes per-chunk candidate selection
/// merge back to exactly the serial selection.
#[inline]
fn topk_cmp(e: &[f32], a: u32, b: u32) -> std::cmp::Ordering {
    let (ma, mb) = (e[a as usize].abs(), e[b as usize].abs());
    mb.total_cmp(&ma).then(a.cmp(&b))
}

/// Reconstructs an int8 grid point in f64 — `q · scale` can overflow f32
/// at extreme spreads even though the grid point itself is a finite f32.
fn dequant_int8(lo: f32, scale: f32, q: u8) -> f64 {
    lo as f64 + q as f64 * scale as f64
}

/// Number of coordinates the top-k codec keeps for an `n`-element vector.
pub fn top_k_count(n: usize, per_mille: u16) -> usize {
    if n == 0 {
        return 0;
    }
    ((n * per_mille as usize) / 1000).max(1).min(n)
}

/// Validates a lossy-codec header (magic, version, element count) and
/// returns `(count, rest)`.
fn check_header<'a>(bytes: &'a [u8], magic: &[u8; 3]) -> Result<(usize, &'a [u8]), CodecError> {
    if bytes.len() < 8 {
        return Err(CodecError::Truncated);
    }
    if &bytes[..3] != magic {
        return Err(CodecError::WrongCodec);
    }
    if bytes[3] != CODEC_VERSION {
        return Err(CodecError::BadVersion(bytes[3]));
    }
    let count = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    Ok((count, &bytes[8..]))
}

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest even.
///
/// Bit-twiddling fast path (integer RTNE with carry through the exponent),
/// bit-identical to [`reference::f32_to_f16`] — the hand-rolled branchy
/// version it replaced — for every input.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Inf / NaN: keep NaN-ness even when the top mantissa bits are 0.
        let man = bits & 0x007f_ffff;
        let payload = (man >> 13) as u16;
        let quiet = u16::from(man != 0 && payload == 0);
        return sign | 0x7c00 | payload | quiet;
    }
    if abs >= 0x4780_0000 {
        return sign | 0x7c00; // unbiased exponent > 15: overflow → ±inf
    }
    if abs >= 0x3880_0000 {
        // Normal half: round-to-nearest-even as one integer add — the
        // +0x0fff (+1 on odd) carries through mantissa and exponent in
        // one go, including the carry to ±inf at the top of the range.
        let rounded = abs + 0x0fff + ((abs >> 13) & 1);
        return sign | ((rounded - (112 << 23)) >> 13) as u16;
    }
    if abs >= 0x3380_0000 {
        // Subnormal half (unbiased exponent in −24..−15).
        let unbiased = ((bits >> 23) & 0xff) as i32 - 127;
        let full = (bits & 0x007f_ffff) | 0x0080_0000;
        let shift = (13 - 14 - unbiased) as u32;
        let mut m = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1; // may carry into the exponent field: still correct
        }
        return sign | m as u16;
    }
    sign // underflows to ±0
}

/// Converts IEEE 754 binary16 bits to an `f32` (exact).
///
/// Branch-light bit-shift construction, bit-identical to
/// [`reference::f16_to_f32`] for all 65536 inputs (tested exhaustively).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let mut o = ((h as u32 & 0x7fff) << 13) + ((127 - 15) << 23);
    let exp = (h >> 10) & 0x1f;
    if exp == 31 {
        o += (128 - 16) << 23; // re-bias inf/NaN exponent to 255
    } else if exp == 0 {
        // Subnormal (or zero): renormalize by floating-point subtraction
        // of the implicit-one magic constant.
        o += 1 << 23;
        o = (f32::from_bits(o) - f32::from_bits(113 << 23)).to_bits();
    }
    f32::from_bits(o | sign)
}

pub mod reference {
    //! The serial codec implementations, kept verbatim as the oracle for
    //! differential tests (and the 1-thread baseline in benches). The
    //! parallel paths in [`UpdateCodec`] must stay bit-identical to these
    //! — chaos trace hashes pin bit-exact global models.

    use super::{
        check_header, dequant_int8, params, top_k_count, CodecError, UpdateCodec, CODEC_VERSION,
        F16_MAX, FP16_MAGIC, INT8_MAGIC, MAX_SPARSE_ELEMS, TOPK_MAGIC,
    };

    /// Serial [`UpdateCodec::encode`].
    pub fn encode(
        codec: UpdateCodec,
        x: &[f32],
        base: Option<&[f32]>,
        residual: &mut Vec<f32>,
    ) -> Vec<u8> {
        match codec {
            UpdateCodec::Dense => params::serialize(x),
            UpdateCodec::Fp16 => {
                residual.resize(x.len(), 0.0);
                let mut out = Vec::with_capacity(8 + x.len() * 2);
                out.extend_from_slice(&FP16_MAGIC);
                out.push(CODEC_VERSION);
                out.extend_from_slice(&(x.len() as u32).to_le_bytes());
                for (v, r) in x.iter().zip(residual.iter_mut()) {
                    let target = v + *r;
                    if target.is_finite() {
                        let clamped = target.clamp(-F16_MAX, F16_MAX);
                        let h = f32_to_f16(clamped);
                        out.extend_from_slice(&h.to_le_bytes());
                        *r = target - f16_to_f32(h);
                    } else {
                        out.extend_from_slice(&f32_to_f16(target).to_le_bytes());
                        *r = 0.0;
                    }
                }
                out
            }
            UpdateCodec::Int8 => {
                residual.resize(x.len(), 0.0);
                let targets: Vec<f32> = x.iter().zip(residual.iter()).map(|(v, r)| v + r).collect();
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for t in &targets {
                    if t.is_finite() {
                        lo = lo.min(*t);
                        hi = hi.max(*t);
                    }
                }
                if !lo.is_finite() || !hi.is_finite() {
                    (lo, hi) = (0.0, 0.0);
                }
                let scale = ((hi as f64 - lo as f64) / 255.0) as f32;
                let mut out = Vec::with_capacity(16 + targets.len());
                out.extend_from_slice(&INT8_MAGIC);
                out.push(CODEC_VERSION);
                out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&scale.to_le_bytes());
                for (t, r) in targets.iter().zip(residual.iter_mut()) {
                    let q = if scale > 0.0 && t.is_finite() {
                        ((*t as f64 - lo as f64) / scale as f64)
                            .round()
                            .clamp(0.0, 255.0) as u8
                    } else {
                        0
                    };
                    out.push(q);
                    *r = if t.is_finite() {
                        (*t as f64 - dequant_int8(lo, scale, q)) as f32
                    } else {
                        0.0
                    };
                }
                out
            }
            UpdateCodec::TopK { per_mille } => {
                residual.resize(x.len(), 0.0);
                let mut e: Vec<f32> = match base {
                    Some(b) => {
                        debug_assert_eq!(b.len(), x.len());
                        x.iter()
                            .zip(b)
                            .zip(residual.iter())
                            .map(|((v, b), r)| v - b + r)
                            .collect()
                    }
                    None => x.iter().zip(residual.iter()).map(|(v, r)| v + r).collect(),
                };
                let k = top_k_count(x.len(), per_mille);
                let mut order: Vec<u32> = (0..e.len() as u32).collect();
                if k < order.len() {
                    order.select_nth_unstable_by(k, |&a, &b| {
                        let (ma, mb) = (e[a as usize].abs(), e[b as usize].abs());
                        mb.total_cmp(&ma).then(a.cmp(&b))
                    });
                    order.truncate(k);
                }
                order.sort_unstable();
                let mut out = Vec::with_capacity(12 + order.len() * 8);
                out.extend_from_slice(&TOPK_MAGIC);
                out.push(CODEC_VERSION);
                out.extend_from_slice(&(x.len() as u32).to_le_bytes());
                out.extend_from_slice(&(order.len() as u32).to_le_bytes());
                for idx in &order {
                    let i = *idx as usize;
                    out.extend_from_slice(&idx.to_le_bytes());
                    out.extend_from_slice(&e[i].to_le_bytes());
                    e[i] = 0.0;
                }
                *residual = e;
                out
            }
        }
    }

    /// Serial [`UpdateCodec::encode_stateless`].
    pub fn encode_stateless(codec: UpdateCodec, x: &[f32], base: Option<&[f32]>) -> Vec<u8> {
        let mut residual = Vec::new();
        encode(codec, x, base, &mut residual)
    }

    /// Serial [`UpdateCodec::decode`].
    pub fn decode(
        codec: UpdateCodec,
        bytes: &[u8],
        base: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        match codec {
            UpdateCodec::Dense => Ok(params::deserialize(bytes)?),
            UpdateCodec::Fp16 => {
                let (count, body) = check_header(bytes, &FP16_MAGIC)?;
                if body.len() < count * 2 {
                    return Err(CodecError::Truncated);
                }
                Ok((0..count)
                    .map(|i| f16_to_f32(u16::from_le_bytes([body[i * 2], body[i * 2 + 1]])))
                    .collect())
            }
            UpdateCodec::Int8 => {
                let (count, body) = check_header(bytes, &INT8_MAGIC)?;
                if body.len() < 8 + count {
                    return Err(CodecError::Truncated);
                }
                let lo = f32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
                let scale = f32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
                Ok(body[8..8 + count]
                    .iter()
                    .map(|q| dequant_int8(lo, scale, *q) as f32)
                    .collect())
            }
            UpdateCodec::TopK { .. } => {
                let (count, body) = check_header(bytes, &TOPK_MAGIC)?;
                if body.len() < 4 {
                    return Err(CodecError::Truncated);
                }
                let nnz = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
                if nnz > count {
                    return Err(CodecError::BadIndex);
                }
                let pairs = &body[4..];
                if pairs.len() < nnz * 8 {
                    return Err(CodecError::Truncated);
                }
                let mut out = match base {
                    Some(b) => {
                        if b.len() != count {
                            return Err(CodecError::BaseMismatch);
                        }
                        b.to_vec()
                    }
                    None => {
                        if count > MAX_SPARSE_ELEMS {
                            return Err(CodecError::BadIndex);
                        }
                        vec![0.0f32; count]
                    }
                };
                let mut prev: Option<u32> = None;
                for p in 0..nnz {
                    let off = p * 8;
                    let idx = u32::from_le_bytes(pairs[off..off + 4].try_into().expect("4 bytes"));
                    let val =
                        f32::from_le_bytes(pairs[off + 4..off + 8].try_into().expect("4 bytes"));
                    if idx as usize >= count || prev.is_some_and(|p| idx <= p) {
                        return Err(CodecError::BadIndex);
                    }
                    prev = Some(idx);
                    out[idx as usize] += val;
                }
                Ok(out)
            }
        }
    }

    /// The original branchy `f32` → binary16 conversion (RTNE).
    pub fn f32_to_f16(value: f32) -> u16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let man = bits & 0x007f_ffff;
        if exp == 255 {
            // Inf / NaN: keep NaN-ness even when the top mantissa bits are 0.
            let payload = (man >> 13) as u16;
            let quiet = u16::from(man != 0 && payload == 0);
            return sign | 0x7c00 | payload | quiet;
        }
        let unbiased = exp - 127;
        if unbiased > 15 {
            return sign | 0x7c00; // overflow → ±inf
        }
        if unbiased >= -14 {
            // Normal half.
            let e = (unbiased + 15) as u32;
            let mut m = man >> 13;
            let rem = man & 0x1fff;
            if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
                m += 1;
                if m == 0x400 {
                    // Mantissa carry bumps the exponent (e == 30 → inf is
                    // exactly the binary16 rounding rule).
                    return sign | (((e + 1) << 10) as u16);
                }
            }
            return sign | ((e << 10) as u16) | m as u16;
        }
        if unbiased >= -24 {
            // Subnormal half.
            let full = man | 0x0080_0000;
            let shift = (13 - 14 - unbiased) as u32;
            let mut m = full >> shift;
            let rem = full & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            if rem > half || (rem == half && (m & 1) == 1) {
                m += 1; // may carry into the exponent field: still correct
            }
            return sign | m as u16;
        }
        sign // underflows to ±0
    }

    /// The original branchy binary16 → `f32` conversion (exact).
    pub fn f16_to_f32(h: u16) -> f32 {
        let sign = ((h & 0x8000) as u32) << 16;
        let exp = ((h >> 10) & 0x1f) as u32;
        let man = (h & 0x3ff) as u32;
        let bits = if exp == 31 {
            sign | 0x7f80_0000 | (man << 13)
        } else if exp == 0 {
            if man == 0 {
                sign
            } else {
                // Subnormal: renormalize into f32's wider exponent range.
                let mut e: i32 = 127 - 15 + 1;
                let mut m = man;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.37).sin() * (1.0 + (i % 17) as f32 * 0.25))
            .collect()
    }

    #[test]
    fn dense_is_byte_identical_to_params_serialize() {
        let x = ramp(257);
        let mut residual = Vec::new();
        let enc = UpdateCodec::Dense.encode(&x, None, &mut residual);
        assert_eq!(enc, params::serialize(&x));
        assert!(residual.is_empty(), "dense never touches the residual");
        assert_eq!(UpdateCodec::Dense.decode(&enc, None).unwrap(), x);
    }

    #[test]
    fn f16_conversion_exact_cases() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "{v}");
        }
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Overflow saturates to infinity; tiny values flush to zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e9)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(1e-30)), 0.0);
        // Subnormal halves round-trip.
        let sub = f16_to_f32(0x0001);
        assert_eq!(f32_to_f16(sub), 0x0001);
    }

    #[test]
    fn f16_decode_fast_path_matches_reference_exhaustively() {
        for h in 0..=u16::MAX {
            let fast = f16_to_f32(h);
            let slow = reference::f16_to_f32(h);
            assert_eq!(fast.to_bits(), slow.to_bits(), "h = {h:#06x}");
        }
    }

    #[test]
    fn f16_encode_fast_path_matches_reference() {
        // Every binary16 value and its f32 neighbours (covers all exact
        // and near-boundary inputs), plus a dense stride over the whole
        // f32 bit space and the format's branch thresholds.
        for h in 0..=u16::MAX {
            let v = reference::f16_to_f32(h);
            for ulp in [-2i64, -1, 0, 1, 2] {
                let w = f32::from_bits((v.to_bits() as i64).wrapping_add(ulp) as u32);
                assert_eq!(f32_to_f16(w), reference::f32_to_f16(w), "{w} bits");
            }
        }
        for (i, &edge) in [0x3380_0000u32, 0x3880_0000, 0x4780_0000, 0x7f80_0000]
            .iter()
            .enumerate()
        {
            for delta in -4i64..=4 {
                for sign in [0u32, 0x8000_0000] {
                    let bits = (edge as i64 + delta) as u32 | sign;
                    let v = f32::from_bits(bits);
                    assert_eq!(
                        f32_to_f16(v),
                        reference::f32_to_f16(v),
                        "edge {i} {bits:#x}"
                    );
                }
            }
        }
        let mut bits = 0u32;
        loop {
            let v = f32::from_bits(bits);
            assert_eq!(f32_to_f16(v), reference::f32_to_f16(v), "{bits:#x}");
            match bits.checked_add(99_991) {
                Some(b) => bits = b,
                None => break,
            }
        }
    }

    /// Differential harness: parallel encode/decode at several thread
    /// counts must be byte- and bit-identical to the serial reference.
    fn assert_parallel_matches_reference(codec: UpdateCodec, x: &[f32], base: Option<&[f32]>) {
        let mut ref_residual = Vec::new();
        let ref_enc = reference::encode(codec, x, base, &mut ref_residual);
        let ref_dec = reference::decode(codec, &ref_enc, base).unwrap();
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut residual = Vec::new();
            let mut enc = Vec::new();
            codec.encode_into(x, base, &mut residual, &pool, &mut enc);
            assert_eq!(enc, ref_enc, "{} bytes @ {threads} threads", codec.name());
            let res_bits: Vec<u32> = residual.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = ref_residual.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                res_bits,
                ref_bits,
                "{} residual @ {threads} threads",
                codec.name()
            );
            let mut dec = Vec::new();
            codec.decode_into(&enc, base, &pool, &mut dec).unwrap();
            let dec_bits: Vec<u32> = dec.iter().map(|v| v.to_bits()).collect();
            let refd_bits: Vec<u32> = ref_dec.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                dec_bits,
                refd_bits,
                "{} decode @ {threads} threads",
                codec.name()
            );
        }
    }

    #[test]
    fn parallel_codecs_match_reference_across_chunk_boundaries() {
        // Adversarial lengths around the fixed chunk size, plus a
        // multi-chunk length, with specials sprinkled in.
        for n in [0usize, 1, PAR_CHUNK - 1, PAR_CHUNK, PAR_CHUNK + 1, 20_000] {
            let mut x = ramp(n);
            if n > 10 {
                x[1] = f32::INFINITY;
                x[3] = f32::NAN;
                x[5] = -0.0;
                x[7] = 0.0;
            }
            let base: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.5 - 3.0).collect();
            for codec in [
                UpdateCodec::Dense,
                UpdateCodec::Fp16,
                UpdateCodec::Int8,
                UpdateCodec::TOP_K_DEFAULT,
                UpdateCodec::TopK { per_mille: 900 },
            ] {
                assert_parallel_matches_reference(codec, &x, None);
                if codec.is_delta() {
                    assert_parallel_matches_reference(codec, &x, Some(&base));
                }
            }
        }
    }

    #[test]
    fn parallel_encode_is_deterministic_round_over_round() {
        // Residual feedback across rounds must evolve identically to the
        // reference, not just within a single call.
        let n = 2 * PAR_CHUNK + 77;
        let x = ramp(n);
        let pool = WorkerPool::new(4);
        for codec in [
            UpdateCodec::Fp16,
            UpdateCodec::Int8,
            UpdateCodec::TOP_K_DEFAULT,
        ] {
            let mut ref_residual = Vec::new();
            let mut par_residual = Vec::new();
            for round in 0..3 {
                let ref_enc = reference::encode(codec, &x, None, &mut ref_residual);
                let mut enc = Vec::new();
                codec.encode_into(&x, None, &mut par_residual, &pool, &mut enc);
                assert_eq!(enc, ref_enc, "{} round {round}", codec.name());
            }
        }
    }

    #[test]
    fn fp16_roundtrip_error_bounded() {
        let x = ramp(500);
        let enc = UpdateCodec::Fp16.encode_stateless(&x, None);
        assert_eq!(enc.len(), 8 + x.len() * 2);
        let dec = UpdateCodec::Fp16.decode(&enc, None).unwrap();
        for (a, b) in x.iter().zip(&dec) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn fp16_overflow_saturates_and_residual_stays_finite() {
        let x = vec![1e9f32, -1e9, 1.0];
        let mut residual = Vec::new();
        let enc = UpdateCodec::Fp16.encode(&x, None, &mut residual);
        let dec = UpdateCodec::Fp16.decode(&enc, None).unwrap();
        // Saturated, not ±inf — and the overflow remainder is owed.
        assert_eq!(dec[0], 65504.0);
        assert_eq!(dec[1], -65504.0);
        assert!(residual.iter().all(|r| r.is_finite()), "{residual:?}");
        assert!((residual[0] - (1e9 - 65504.0)).abs() < 1e3);

        // Non-finite model values pass through without poisoning the
        // residual with inf − inf = NaN.
        let weird = vec![f32::INFINITY, f32::NAN, 2.0];
        let mut residual = Vec::new();
        let enc = UpdateCodec::Fp16.encode(&weird, None, &mut residual);
        let dec = UpdateCodec::Fp16.decode(&enc, None).unwrap();
        assert_eq!(dec[0], f32::INFINITY);
        assert!(dec[1].is_nan());
        assert!(residual.iter().all(|r| r.is_finite()), "{residual:?}");

        let mut residual = Vec::new();
        let _ = UpdateCodec::Int8.encode(&weird, None, &mut residual);
        assert!(residual.iter().all(|r| r.is_finite()), "{residual:?}");
    }

    #[test]
    fn int8_roundtrip_error_bounded_by_half_step() {
        let x = ramp(400);
        let enc = UpdateCodec::Int8.encode_stateless(&x, None);
        assert_eq!(enc.len(), 16 + x.len());
        let dec = UpdateCodec::Int8.decode(&enc, None).unwrap();
        let (lo, hi) = x.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |a, v| {
            (a.0.min(*v), a.1.max(*v))
        });
        let step = (hi - lo) / 255.0;
        for (a, b) in x.iter().zip(&dec) {
            assert!((a - b).abs() <= step * 0.5 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_constant_vector_is_exact() {
        let x = vec![3.25f32; 64];
        let dec = UpdateCodec::Int8
            .decode(&UpdateCodec::Int8.encode_stateless(&x, None), None)
            .unwrap();
        assert_eq!(dec, x);
    }

    #[test]
    fn int8_extreme_spread_stays_finite() {
        // hi − lo overflows f32 here; the f64 scale computation must keep
        // the grid (and therefore residual and decode) finite.
        let x = vec![-3e38f32, 3e38, 0.0];
        let mut residual = Vec::new();
        let enc = UpdateCodec::Int8.encode(&x, None, &mut residual);
        let dec = UpdateCodec::Int8.decode(&enc, None).unwrap();
        assert!(dec.iter().all(|v| v.is_finite()), "{dec:?}");
        assert!(residual.iter().all(|v| v.is_finite()), "{residual:?}");
    }

    #[test]
    fn int8_signed_zero_extremum_matches_reference() {
        // A vector whose min (and max) is ±0 with mixed zero signs is the
        // one case where a reordered min/max could pick the other zero;
        // the parallel path must still reproduce the serial bytes.
        for n in [9usize, PAR_CHUNK + 9] {
            let mut x = vec![0.5f32; n];
            for (i, v) in x.iter_mut().enumerate() {
                *v = match i % 4 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => 1.0,
                    _ => 0.5,
                };
            }
            assert_parallel_matches_reference(UpdateCodec::Int8, &x, None);
            // All-negative-zero lower bound, mixed upper.
            let y: Vec<f32> = (0..n)
                .map(|i| if i % 2 == 0 { -0.0 } else { 0.0 })
                .collect();
            assert_parallel_matches_reference(UpdateCodec::Int8, &y, None);
        }
    }

    #[test]
    fn topk_zero_base_count_is_capped() {
        // A 16-byte frame must not be able to demand a 16 GiB allocation:
        // count is only trusted up to MAX_SPARSE_ELEMS when there is no
        // base vector to check it against.
        let mut frame = Vec::new();
        frame.extend_from_slice(&TOPK_MAGIC);
        frame.push(CODEC_VERSION);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            UpdateCodec::TOP_K_DEFAULT.decode(&frame, None),
            Err(CodecError::BadIndex)
        ));
        // With a base, the length check still governs.
        assert!(matches!(
            UpdateCodec::TOP_K_DEFAULT.decode(&frame, Some(&[0.0; 4])),
            Err(CodecError::BaseMismatch)
        ));
    }

    #[test]
    fn topk_keeps_largest_deltas_and_owes_the_rest() {
        let base = vec![1.0f32; 10];
        let mut x = base.clone();
        x[3] += 5.0;
        x[7] -= 4.0;
        x[1] += 0.01;
        let mut residual = Vec::new();
        // per_mille 200 over 10 elements → k = 2.
        let codec = UpdateCodec::TopK { per_mille: 200 };
        let enc = codec.encode(&x, Some(&base), &mut residual);
        let dec = codec.decode(&enc, Some(&base)).unwrap();
        assert_eq!(dec[3], x[3]);
        assert_eq!(dec[7], x[7]);
        assert_eq!(dec[1], base[1], "small delta not shipped");
        assert!((residual[1] - 0.01).abs() < 1e-7, "owed via residual");
        assert_eq!(residual[3], 0.0);

        // Next round, the residual makes the small delta win.
        let enc2 = codec.encode(&base, Some(&base), &mut residual);
        let dec2 = codec.decode(&enc2, Some(&base)).unwrap();
        assert!((dec2[1] - (base[1] + 0.01)).abs() < 1e-7, "EF retried");
    }

    #[test]
    fn topk_zero_base_reconstructs_against_zeros() {
        let x = vec![0.0f32, 9.0, 0.0, -7.0];
        let codec = UpdateCodec::TopK { per_mille: 500 };
        let enc = codec.encode_stateless(&x, None);
        let dec = codec.decode(&enc, None).unwrap();
        assert_eq!(dec, x);
    }

    #[test]
    fn decode_rejects_corruption() {
        let x = ramp(32);
        for codec in [
            UpdateCodec::Fp16,
            UpdateCodec::Int8,
            UpdateCodec::TopK { per_mille: 100 },
        ] {
            let enc = codec.encode_stateless(&x, None);
            assert!(codec.decode(&enc[..4], None).is_err(), "truncated header");
            assert!(
                codec.decode(&enc[..enc.len() - 1], None).is_err(),
                "truncated body"
            );
            let mut bad = enc.clone();
            bad[0] = b'X';
            assert!(matches!(
                codec.decode(&bad, None),
                Err(CodecError::WrongCodec)
            ));
            let mut ver = enc.clone();
            ver[3] = 9;
            assert!(matches!(
                codec.decode(&ver, None),
                Err(CodecError::BadVersion(9))
            ));
        }
        // Cross-codec magic is rejected, not misparsed.
        let enc = UpdateCodec::Fp16.encode_stateless(&x, None);
        assert!(matches!(
            UpdateCodec::Int8.decode(&enc, None),
            Err(CodecError::WrongCodec)
        ));
    }

    #[test]
    fn topk_rejects_bad_indices_and_base_mismatch() {
        let x = ramp(16);
        let codec = UpdateCodec::TopK { per_mille: 500 };
        let enc = codec.encode_stateless(&x, None);
        // Base of the wrong length.
        assert!(matches!(
            codec.decode(&enc, Some(&[0.0; 4])),
            Err(CodecError::BaseMismatch)
        ));
        // Out-of-range index.
        let mut bad = enc.clone();
        bad[12..16].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            codec.decode(&bad, None),
            Err(CodecError::BadIndex)
        ));
    }

    #[test]
    fn ids_and_sniffing_agree() {
        for codec in [
            UpdateCodec::Dense,
            UpdateCodec::Fp16,
            UpdateCodec::Int8,
            UpdateCodec::TOP_K_DEFAULT,
        ] {
            assert_eq!(UpdateCodec::from_id(codec.id()).unwrap().id(), codec.id());
            let enc = codec.encode_stateless(&ramp(8), None);
            assert_eq!(UpdateCodec::sniff(&enc).unwrap().id(), codec.id());
        }
        assert_eq!(UpdateCodec::from_id(99), None);
        assert_eq!(UpdateCodec::sniff(b"xx"), None);
    }

    #[test]
    fn empty_vector_roundtrips_everywhere() {
        for codec in [
            UpdateCodec::Dense,
            UpdateCodec::Fp16,
            UpdateCodec::Int8,
            UpdateCodec::TOP_K_DEFAULT,
        ] {
            let enc = codec.encode_stateless(&[], None);
            assert_eq!(codec.decode(&enc, None).unwrap(), Vec::<f32>::new());
        }
    }

    #[test]
    fn compression_ratios_hold_at_model_scale() {
        let n = 109_386; // the paper's MNIST MLP
        let x = ramp(n);
        let dense = UpdateCodec::Dense.encode_stateless(&x, None).len() as f64;
        let fp16 = UpdateCodec::Fp16.encode_stateless(&x, None).len() as f64;
        let int8 = UpdateCodec::Int8.encode_stateless(&x, None).len() as f64;
        let topk = UpdateCodec::TOP_K_DEFAULT.encode_stateless(&x, None).len() as f64;
        assert!(dense / fp16 > 1.9, "fp16 ~2x: {}", dense / fp16);
        assert!(dense / int8 > 3.9, "int8 ~4x: {}", dense / int8);
        assert!(dense / topk > 10.0, "topk >10x: {}", dense / topk);
    }
}
