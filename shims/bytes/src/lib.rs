//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes` (cheaply cloneable, sliceable byte string), `BytesMut`
//! (growable buffer), and the `Buf`/`BufMut` cursor traits — the subset the
//! SDFLMQ workspace uses. Layout and semantics follow the real crate:
//! `Bytes` clones and slices share one allocation; `Buf` getters are
//! big-endian and advance the cursor.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Storage {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

/// A cheaply cloneable, immutable byte string.
#[derive(Clone)]
pub struct Bytes {
    storage: Storage,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            storage: Storage::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies a slice into a new allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        match &self.storage {
            Storage::Shared(v) => &v[self.start..self.end],
            Storage::Static(s) => &s[self.start..self.end],
        }
    }

    /// Returns a slice of self for the given range, sharing the allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of range");
        Bytes {
            storage: self.storage.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; self keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            storage: self.storage.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` onward; self keeps the
    /// first `at`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of range");
        let tail = Bytes {
            storage: self.storage.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Recovers the backing `Vec<u8>` without copying, when this handle is
    /// the sole owner of an unsliced shared allocation. Otherwise returns
    /// `self` unchanged. (The real `bytes` crate spells this
    /// `TryFrom<Bytes> for Vec<u8>`; buffer pools use it to reclaim
    /// published payloads once the last clone drops.)
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        match self.storage {
            Storage::Shared(arc) if self.start == 0 && self.end == arc.len() => {
                match Arc::try_unwrap(arc) {
                    Ok(v) => Ok(v),
                    Err(arc) => Err(Bytes {
                        storage: Storage::Shared(arc),
                        start: self.start,
                        end: self.end,
                    }),
                }
            }
            storage => Err(Bytes {
                storage,
                start: self.start,
                end: self.end,
            }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            storage: Storage::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        // An owned copy is required: the iterator outlives `self`.
        #[allow(clippy::unnecessary_to_owned)]
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Empties the buffer, retaining its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<Vec<u8>> for BytesMut {
    /// Wraps an existing vector, reusing its allocation and contents.
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read cursor over a byte source. Getters are big-endian and advance.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current readable slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(buf)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(buf)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(buf)
    }

    /// Copies bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink. Putters are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[4, 5]);
    }

    #[test]
    fn try_into_vec_recovers_sole_unsliced_owner() {
        // Sole owner, full range: recovered without copying.
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.try_into_vec().unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(back.as_ptr(), ptr, "no copy");

        // A live clone blocks recovery; dropping it unblocks.
        let b = Bytes::from(vec![4u8, 5]);
        let c = b.clone();
        let b = b.try_into_vec().unwrap_err();
        drop(c);
        assert_eq!(b.try_into_vec().unwrap(), vec![4, 5]);

        // Sliced handles and static storage are not recoverable.
        let mut b = Bytes::from(vec![6u8, 7, 8]);
        let _head = b.split_to(1);
        assert!(b.try_into_vec().is_err());
        assert!(Bytes::from_static(b"xyz").try_into_vec().is_err());
    }

    #[test]
    fn buf_getters_are_big_endian() {
        let mut b = Bytes::from(vec![0x01, 0x02, 0x03, 0x04]);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 0x03);
    }

    #[test]
    fn bufmut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0xDEADBEEF);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.get_u32(), 0xDEADBEEF);
        assert_eq!(&b[..], b"xy");
    }
}
