//! Minimal offline stand-in for `parking_lot`.
//!
//! Non-poisoning `Mutex`, `RwLock`, and `Condvar` wrapping `std::sync`.
//! Poisoned std locks are recovered transparently (parking_lot has no
//! poisoning), and `Condvar::wait_until` matches the parking_lot signature
//! (deadline as `Instant`, guard by `&mut`).

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Instant;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_until can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            let res = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
            assert!(!res.timed_out(), "should be notified");
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
