//! Minimal offline stand-in for `crossbeam` (the `channel` module only).
//!
//! MPMC channels with cloneable senders *and* receivers, bounded
//! backpressure, and crossbeam's disconnect semantics: `recv` fails once
//! the queue is empty and every `Sender` is gone; `send` fails once every
//! `Receiver` is gone. Built on `std::sync::{Mutex, Condvar}`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`]: every receiver is gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is bounded and full.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`]: empty and every sender gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// Empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel with capacity `cap` (must be > 0; this
    /// shim does not implement zero-capacity rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "shim does not support zero-capacity channels");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// The channel's capacity (`None` if unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.cap
        }

        /// True if a bounded channel is at capacity.
        pub fn is_full(&self) -> bool {
            match self.inner.cap {
                Some(cap) => self.inner.state.lock().unwrap().queue.len() >= cap,
                None => false,
            }
        }

        /// Sends without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, result) = self.inner.not_empty.wait_timeout(state, remaining).unwrap();
                state = s;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// True if no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            let t = std::thread::spawn(move || tx.send(3));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(3));
            t.join().unwrap().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn clone_receivers_share_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(7).unwrap();
            tx.send(8).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = vec![a, b];
            got.sort();
            assert_eq!(got, vec![7, 8]);
        }
    }
}
