//! Minimal offline stand-in for the `rand` crate.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a fast,
//! high-quality generator that is deterministic per seed (the workspace
//! relies on seeded determinism, not on matching the real crate's
//! streams). Supports `gen_range` over integer and float ranges,
//! `gen_bool`, and Fisher-Yates `shuffle`.

use std::ops::{Range, RangeInclusive};

/// Types uniformly samplable between two bounds. Mirrors the real crate's
/// `SampleUniform` so that `gen_range` type inference flows from usage
/// context (e.g. an unsuffixed `-0.4..0.4` added to an `f32` infers `f32`).
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let unit = (rng.next_u64() >> 11) as f64 / denom as f64;
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Types that can sample a value from a range.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// A source of randomness.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::Rng;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Distribution traits (nominal: the workspace implements its own
/// distributions and only needs the trait to exist).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }
}
