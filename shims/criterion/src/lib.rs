//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!` / `criterion_main!` harness shape and the
//! group/bench API, but measures with a simple calibrated wall-clock loop:
//! each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a fixed measurement window, and the mean time per iteration
//! (plus configured throughput) is printed. No statistics engine, no
//! HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);

/// Benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (function name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; runs the timed loop.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording mean wall-clock per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_iters = ((MEASURE.as_secs_f64() / est).ceil() as u64).max(1);

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / target_iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(throughput: &Throughput, ns: f64) -> String {
    let per_sec = |count: u64| count as f64 / (ns / 1e9);
    match throughput {
        Throughput::Bytes(n) => {
            let bps = per_sec(*n);
            if bps >= 1e9 {
                format!("{:.2} GiB/s", bps / (1u64 << 30) as f64)
            } else {
                format!("{:.2} MiB/s", bps / (1u64 << 20) as f64)
            }
        }
        Throughput::Elements(n) => format!("{:.2} Melem/s", per_sec(*n) / 1e6),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        self.report(&id, bencher.mean_ns);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher, input);
        self.report(&id, bencher.mean_ns);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let rate = self
            .throughput
            .as_ref()
            .map(|t| format!("  ({})", human_rate(t, mean_ns)))
            .unwrap_or_default();
        println!(
            "{}/{:<32} {:>12}/iter{}",
            self.name,
            id.label,
            human_time(mean_ns),
            rate
        );
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        println!("{:<40} {:>12}/iter", name, human_time(bencher.mean_ns));
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
