//! Strategy trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree: `generate` draws a single
/// value and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Builds recursive values: `self` generates leaves; `recurse` wraps a
    /// strategy for depth-`d` values into one for depth-`d+1` values. The
    /// `_desired_size` / `_expected_branch_size` tuning knobs of real
    /// proptest are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            recurse: Arc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut strategy = self.leaf.clone();
        // Random depth keeps generated structures varied: a fixed depth
        // would make every value maximally nested.
        let depth = rng.next_u64() % (self.depth as u64 + 1);
        for _ in 0..depth {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// Weighted choice among strategies of one value type (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "empty union");
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "zero total weight");
        Union { options, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strategy) in &self.options {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum to total")
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (*self.start() as f64
                    + unit * (*self.end() as f64 - *self.start() as f64)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// String strategies: the `[class]{m,n}` regex subset
// ---------------------------------------------------------------------------

/// `&'static str` regex-style strategies. Supports exactly the pattern
/// form `[class]{m,n}` (or `[class]{n}`) where `class` lists literal
/// characters and `a-z` style ranges.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let span = (max - min + 1) as u64;
        let len = min + (rng.next_u64() % span) as usize;
        (0..len)
            .map(|_| chars[(rng.next_u64() as usize) % chars.len()])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_owned();
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    Some((chars, min, max))
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (1u16..=u16::MAX).generate(&mut rng);
            assert!(i >= 1);
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..100 {
            let s = "[a-z_]{1,20}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        let s = "[ -~]{0,5}".generate(&mut rng);
        assert!(s.len() <= 5);
    }

    #[test]
    fn union_respects_weights_loosely() {
        let mut rng = TestRng::from_name("union");
        let u = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..1000).filter(|_| u.generate(&mut rng)).count();
        assert!(trues > 700, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn map_and_tuples() {
        let mut rng = TestRng::from_name("map");
        let s = (1usize..5, 1usize..5).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..=8).contains(&v));
        }
    }
}
