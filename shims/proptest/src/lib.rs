//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the generation side of proptest — strategies, combinators,
//! the `proptest!` / `prop_assert*!` / `prop_oneof!` macros — with a
//! deterministic per-test RNG and **no shrinking**: a failing case panics
//! with the assertion message and the case number so it can be replayed by
//! reading the generated inputs out of the test body.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// `bool` strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` or `false` uniformly.
    pub const ANY: AnyBool = AnyBool;
}

/// Numeric strategies (`prop::num::f32::NORMAL`, ...).
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over normal (non-zero, non-subnormal, finite) floats.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                // Exponent 1..=254 guarantees a normal, finite value.
                let bits = rng.next_u64() as u32;
                let sign = bits & 0x8000_0000;
                let exponent = (bits >> 23) % 254 + 1;
                let mantissa = bits & 0x007F_FFFF;
                f32::from_bits(sign | (exponent << 23) | mantissa)
            }
        }

        /// Generates normal floats only.
        pub const NORMAL: NormalF32 = NormalF32;
    }
}

/// Collection strategies (`prop::collection::{vec, btree_map}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Inclusive-exclusive size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.max <= self.min + 1 {
                self.min
            } else {
                self.min + (rng.next_u64() as usize) % (self.max - self.min)
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    /// Map with keys from `keys`, values from `values`, sized by `size`
    /// (duplicate keys collapse, as in real proptest).
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access to strategy families (`prop::bool::ANY`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skips the current case when an assumption fails (counts as passed in
/// this shim).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks among strategies, optionally weighted
/// (`prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...)` runs the
/// body over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
