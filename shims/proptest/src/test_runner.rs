//! Test configuration, RNG, and case errors.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator used by strategies (xoshiro256++ seeded from a
/// hash of the test's fully qualified name, so every run of a given test
/// sees the same case sequence).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Seeds from a 64-bit value.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
