//! # sdflmq — semi-decentralized federated learning over MQTT, in Rust
//!
//! Umbrella crate re-exporting the SDFLMQ workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `sdflmq-core` | coordinator, client, parameter server, clustering, role optimizers, aggregation, virtual-time simulator |
//! | [`mqtt`] | `sdflmq-mqtt` | embedded MQTT broker/client/bridging substrate |
//! | [`mqttfc`] | `sdflmq-mqttfc` | topic-bound RFC layer with batching + compression |
//! | [`nn`] | `sdflmq-nn` | flat-parameter MLP, losses, optimizers, training loop |
//! | [`dataset`] | `sdflmq-dataset` | synthetic digit data + federated partitioning |
//! | [`sim`] | `sdflmq-sim` | virtual clock, event queue, network & system models |
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory and paper-experiment index.

pub use sdflmq_core as core;
pub use sdflmq_dataset as dataset;
pub use sdflmq_mqtt as mqtt;
pub use sdflmq_mqttfc as mqttfc;
pub use sdflmq_nn as nn;
pub use sdflmq_sim as sim;
